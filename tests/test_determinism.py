"""Determinism regression tests: the reproducibility contract.

Same seed, same release → identical everything: the update sequence,
the staleness trace, the final loss, the virtual clock. And the
process-parallel harness must be a pure scheduling detail — serial and
parallel `run_repeated` of the same seeds return identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.harness.config import RunConfig
from repro.harness.runner import repeated_configs, run_once, run_repeated
from repro.sim.cost import CostModel


@pytest.fixture(scope="module")
def problem():
    return QuadraticProblem(48, h=1.0, b=2.0, noise_sigma=0.1)


@pytest.fixture(scope="module")
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


def make_config(algorithm="LSH_ps1", seed=17, m=4):
    return RunConfig(
        algorithm=algorithm,
        m=m,
        eta=0.05,
        seed=seed,
        epsilons=(0.5, 0.1),
        target_epsilon=0.1,
        max_updates=1_500,
        max_virtual_time=20.0,
    )


def same_scalar(x, y):
    """Bitwise-equal scalars, where NaN == NaN (not-applicable metrics
    like a lock-free run's mean_lock_wait must match as NaN)."""
    return x == y or (np.isnan(x) and np.isnan(y))


def assert_identical(a, b, *, check_config=True):
    """Bitwise equality of everything a run measures."""
    if check_config:
        assert a.config == b.config
    assert a.status is b.status
    assert a.virtual_time == b.virtual_time
    assert a.n_updates == b.n_updates
    assert a.n_dropped == b.n_dropped
    assert same_scalar(a.cas_failure_rate, b.cas_failure_rate)
    assert same_scalar(a.mean_lock_wait, b.mean_lock_wait)
    assert a.staleness == b.staleness or (
        np.isnan(a.staleness["mean"]) and np.isnan(b.staleness["mean"])
    )
    np.testing.assert_array_equal(a.staleness_values, b.staleness_values)
    np.testing.assert_array_equal(a.updates_per_thread, b.updates_per_thread)
    assert a.report.final_loss == b.report.final_loss or (
        np.isnan(a.report.final_loss) and np.isnan(b.report.final_loss)
    )
    np.testing.assert_array_equal(a.retry_occupancy[0], b.retry_occupancy[0])
    np.testing.assert_array_equal(a.retry_occupancy[1], b.retry_occupancy[1])


class TestRunOnceDeterminism:
    @pytest.mark.parametrize("algorithm", ["SEQ", "ASYNC", "HOG", "LSH_ps1"])
    def test_same_seed_twice_bitwise_identical(self, problem, cost, algorithm):
        m = 1 if algorithm == "SEQ" else 4
        a = run_once(problem, cost, make_config(algorithm, m=m))
        b = run_once(problem, cost, make_config(algorithm, m=m))
        assert_identical(a, b)

    def test_different_seed_differs(self, problem, cost):
        a = run_once(problem, cost, make_config(seed=17))
        b = run_once(problem, cost, make_config(seed=18))
        assert a.virtual_time != b.virtual_time or a.n_updates != b.n_updates

    def test_update_sequence_reproducible(self, problem, cost):
        """The full per-update trace (publish times, seqs, staleness)
        replays exactly — not just the aggregate summaries."""
        times, seqs = [], []
        for _ in range(2):
            r = run_once(problem, cost, make_config("LSH_ps0"))
            times.append(r.staleness_values.copy())
            seqs.append((r.n_updates, r.virtual_time))
        np.testing.assert_array_equal(times[0], times[1])
        assert seqs[0] == seqs[1]


class TestTelemetryNeutrality:
    """Probes observe, never perturb: a run with the full standard probe
    set is bitwise-identical to the same run with telemetry off — final
    loss, update sequence, virtual clock, everything."""

    @pytest.mark.parametrize("algorithm", ["SEQ", "ASYNC", "HOG", "LSH_ps1"])
    def test_probes_on_equals_probes_off(self, problem, cost, algorithm):
        import dataclasses

        from repro.telemetry import STANDARD_PROBES

        m = 1 if algorithm == "SEQ" else 4
        off = run_once(problem, cost, make_config(algorithm, m=m))
        on = run_once(
            problem,
            cost,
            dataclasses.replace(make_config(algorithm, m=m), probes=STANDARD_PROBES),
        )
        assert_identical(off, on, check_config=False)
        assert same_scalar(off.report.final_loss, on.report.final_loss)
        assert same_scalar(off.final_accuracy, on.final_accuracy)
        # ... and the probed run actually carries the probe results.
        assert set(on.metrics["probes"]) == set(STANDARD_PROBES)
        assert off.metrics["probes"] == {}

    def test_single_probe_subset_is_neutral(self, problem, cost):
        import dataclasses

        base = make_config("LSH_ps1")
        off = run_once(problem, cost, base)
        on = run_once(
            problem, cost, dataclasses.replace(base, probes=("occupancy",))
        )
        assert_identical(off, on, check_config=False)
        assert set(on.metrics["probes"]) == {"occupancy"}


class TestSerialParallelEquivalence:
    def test_repeated_configs_seed_derivation(self):
        configs = repeated_configs(make_config(seed=10), repeats=3, seed_stride=100)
        assert [c.seed for c in configs] == [10, 110, 210]

    def test_parallel_matches_serial(self, problem, cost):
        config = make_config("LSH_ps1", seed=42)
        serial = run_repeated(problem, cost, config, repeats=4, workers=1)
        parallel = run_repeated(problem, cost, config, repeats=4, workers=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert_identical(s, p)

    def test_workers_zero_env_is_serial(self, problem, cost, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        config = make_config(seed=7)
        runs = run_repeated(problem, cost, config, repeats=2)
        assert [r.config.seed for r in runs] == [7, 1007]

    def test_unpicklable_problem_falls_back_to_serial(self, cost, monkeypatch):
        class ClosureProblem(QuadraticProblem):
            """A user problem a process pool cannot ship."""

            def __init__(self):
                super().__init__(16, h=1.0, b=1.0, noise_sigma=0.0)
                self.hook = lambda theta: theta  # unpicklable

        # Pretend we have the cores so the pool path (and its pickle
        # pre-flight) is actually attempted on single-core CI hosts.
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)
        config = make_config("SEQ", m=1)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            runs = run_repeated(ClosureProblem(), cost, config, repeats=2, workers=2)
        assert len(runs) == 2
