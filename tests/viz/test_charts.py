"""Tests for chart types and the figure generators."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz.charts import Chart
from repro.viz.figures import (
    fig_convergence_boxes,
    fig_memory_timeline,
    fig_occupancy_model,
    fig_progress_curves,
    fig_staleness_histogram,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def texts_of(chart: Chart) -> list[str]:
    root = ET.fromstring(chart.render())
    return [el.text for el in root.iter(f"{SVG_NS}text")]


class TestChart:
    def test_plot_before_scales_rejected(self):
        chart = Chart()
        with pytest.raises(ConfigurationError):
            chart.add_line([0, 1], [0, 1])

    def test_line_chart_renders(self):
        chart = Chart(title="T", x_label="X", y_label="Y")
        chart.set_scales((0, 10), (0, 5))
        chart.draw_frame()
        chart.add_line(np.linspace(0, 10, 20), np.linspace(0, 5, 20), label="series")
        chart.draw_legend()
        labels = texts_of(chart)
        assert "T" in labels and "X" in labels and "Y" in labels and "series" in labels

    def test_nan_splits_polyline(self):
        chart = Chart()
        chart.set_scales((0, 3), (0, 3))
        chart.add_line([0, 1, float("nan"), 2, 3], [0, 1, 1, 2, 3])
        root = ET.fromstring(chart.render())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_box_plot_draws_components(self):
        chart = Chart()
        chart.set_scales((-0.5, 0.5), (0, 10))
        chart.add_box(0, [1, 2, 3, 4, 5])
        root = ET.fromstring(chart.render())
        # whisker stems + caps + median line
        assert len(root.findall(f"{SVG_NS}line")) >= 5
        assert len(root.findall(f"{SVG_NS}rect")) >= 2  # background + box

    def test_box_failures_annotation(self):
        chart = Chart()
        chart.set_scales((-0.5, 0.5), (0, 10))
        chart.add_box(0, [], failures=(2, 1))
        labels = texts_of(chart)
        assert any("D:2" in (t or "") and "C:1" in (t or "") for t in labels)

    def test_histogram_renders_bars(self):
        chart = Chart()
        chart.set_scales((0, 10), (0, 1))
        chart.add_histogram(np.random.default_rng(0).uniform(0, 10, 200), bins=10)
        root = ET.fromstring(chart.render())
        assert len(root.findall(f"{SVG_NS}rect")) > 5

    def test_step_chart(self):
        chart = Chart()
        chart.set_scales((0, 4), (0, 10))
        chart.add_step([0, 1, 2, 3], [1, 5, 2, 8], label="mem")
        root = ET.fromstring(chart.render())
        assert root.findall(f"{SVG_NS}polyline")

    def test_hline(self):
        chart = Chart()
        chart.set_scales((0, 1), (0, 10))
        chart.add_hline(5.0, label="n*")
        assert "n*" in texts_of(chart)

    def test_category_axis(self):
        chart = Chart()
        chart.set_scales((-0.5, 2.5), (0, 1))
        chart.draw_category_axis(["A", "B", "C"])
        labels = texts_of(chart)
        assert {"A", "B", "C"} <= set(labels)


class TestFigureGenerators:
    def test_convergence_boxes(self):
        chart = fig_convergence_boxes(
            {"ASYNC": [1.0, 1.2], "LSH_ps0": [0.8, 0.9]},
            title="demo",
            failures={"ASYNC": (1, 0)},
        )
        labels = texts_of(chart)
        assert "ASYNC" in labels and "LSH_ps0" in labels

    def test_convergence_boxes_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fig_convergence_boxes({}, title="x")

    def test_progress_curves(self):
        chart = fig_progress_curves(
            {"A": ([0, 1, 2], [2.0, 1.0, 0.5]), "B": ([0, 1], [2.0, 1.5])},
            title="progress",
        )
        assert "progress" in texts_of(chart)

    def test_progress_curves_all_short_rejected(self):
        with pytest.raises(ConfigurationError):
            fig_progress_curves({"A": ([0], [1.0])}, title="x")

    def test_staleness_histogram(self):
        chart = fig_staleness_histogram(
            {"HOG": np.array([1, 2, 3, 3, 4]), "LSH": np.array([0, 1, 1])},
            title="tau",
        )
        assert "tau" in texts_of(chart)

    def test_memory_timeline(self):
        t = np.linspace(0, 1, 10)
        chart = fig_memory_timeline(
            {"ASYNC": (t, np.full(10, 3.3e6)), "LSH": (t, np.linspace(2e6, 3e6, 10))},
            title="mem",
        )
        assert "mem" in texts_of(chart)

    def test_occupancy_model(self):
        t = np.linspace(0, 1, 50)
        occ = np.clip(np.sin(t * 10) + 3, 0, None)
        chart = fig_occupancy_model((t, occ), m=12, tc=2e-3, loop_body=1.2e-3)
        assert any("n*" in (s or "") for s in texts_of(chart))


class TestRenderAllFigures:
    @pytest.mark.slow
    def test_writes_all_files(self, tmp_path, tiny_workloads):
        from repro.viz.figures import render_all_figures

        written = render_all_figures(tmp_path, workloads=tiny_workloads)
        assert len(written) >= 4
        for path in written:
            assert path.exists()
            ET.fromstring(path.read_text())  # valid XML


class TestScalabilitySweep:
    def test_renders_lines_per_algorithm(self):
        from repro.viz.figures import fig_scalability_sweep

        chart = fig_scalability_sweep(
            {"ASYNC": {1: 1.2, 16: 0.4, 68: float("nan")},
             "LSH_ps0": {1: 1.2, 16: 0.3, 68: 0.25}},
        )
        labels = texts_of(chart)
        assert "ASYNC" in labels and "LSH_ps0" in labels

    def test_nan_cells_break_lines(self):
        import xml.etree.ElementTree as ET
        from repro.viz.figures import fig_scalability_sweep

        chart = fig_scalability_sweep({"A": {1: 1.0, 4: float("nan"), 16: 0.5, 68: 0.4}})
        root = ET.fromstring(chart.render())
        # the NaN splits A's polyline; only the 2-point segment remains drawable
        assert root.findall(f"{SVG_NS}polyline")

    def test_empty_rejected(self):
        from repro.errors import ConfigurationError
        from repro.viz.figures import fig_scalability_sweep

        with pytest.raises(ConfigurationError):
            fig_scalability_sweep({})
        with pytest.raises(ConfigurationError):
            fig_scalability_sweep({"A": {1: float("nan")}})
