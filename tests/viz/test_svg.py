"""Tests for the SVG builder and scales."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigurationError
from repro.viz.scale import LinearScale, nice_ticks
from repro.viz.svg import SvgCanvas

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas: SvgCanvas) -> ET.Element:
    return ET.fromstring(canvas.render())


class TestSvgCanvas:
    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            SvgCanvas(0, 100)

    def test_renders_wellformed_xml(self):
        c = SvgCanvas(100, 50)
        c.line(0, 0, 10, 10)
        c.rect(1, 1, 5, 5, fill="red")
        c.circle(3, 3, 2)
        c.polyline([(0, 0), (1, 1), (2, 0)])
        c.text(5, 5, "hello <world> & more")
        root = parse(c)
        assert root.tag == f"{SVG_NS}svg"
        assert root.attrib["width"] == "100"

    def test_text_is_escaped(self):
        c = SvgCanvas(10, 10)
        c.text(0, 0, "<&>")
        root = parse(c)
        text = root.find(f"{SVG_NS}text")
        assert text.text == "<&>"

    def test_element_count(self):
        c = SvgCanvas(10, 10)  # background rect = 1
        c.line(0, 0, 1, 1)
        c.circle(0, 0, 1)
        assert len(c) == 3

    def test_short_polyline_ignored(self):
        c = SvgCanvas(10, 10)
        before = len(c)
        c.polyline([(1, 1)])
        assert len(c) == before

    def test_save(self, tmp_path):
        c = SvgCanvas(10, 10)
        path = c.save(tmp_path / "sub" / "x.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_rotated_text_has_transform(self):
        c = SvgCanvas(10, 10)
        c.text(5, 5, "x", rotate=-90)
        assert "rotate(-90" in c.render()

    def test_dashed_line(self):
        c = SvgCanvas(10, 10)
        c.line(0, 0, 5, 5, dash="4,3")
        assert 'stroke-dasharray="4,3"' in c.render()


class TestNiceTicks:
    def test_covers_simple_range(self):
        ticks = nice_ticks(0, 10)
        assert ticks[0] >= 0 and ticks[-1] <= 10
        assert len(ticks) >= 3

    def test_degenerate_range(self):
        assert nice_ticks(3.0, 3.0) == [3.0]

    def test_reversed_range(self):
        assert nice_ticks(10, 0) == nice_ticks(0, 10)

    def test_small_range(self):
        ticks = nice_ticks(0.001, 0.009)
        assert all(0.001 <= t <= 0.009 for t in ticks)

    def test_steps_are_uniform(self):
        ticks = nice_ticks(0, 97)
        diffs = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(diffs) == 1

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            nice_ticks(0, float("inf"))


class TestLinearScale:
    def test_maps_endpoints(self):
        s = LinearScale((0, 10), (100, 200))
        assert s(0) == 100 and s(10) == 200

    def test_flipped_range(self):
        s = LinearScale((0, 1), (300, 40))  # SVG y axis
        assert s(0) == 300 and s(1) == 40
        assert s(0.5) == pytest.approx(170)

    def test_degenerate_domain_does_not_divide_by_zero(self):
        s = LinearScale((5, 5), (0, 100))
        assert s(5) == 0.0

    def test_ticks_within_domain(self):
        s = LinearScale((2, 37), (0, 100))
        assert all(2 <= t <= 37 for t in s.ticks())

    def test_nonfinite_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearScale((0, float("nan")), (0, 1))
