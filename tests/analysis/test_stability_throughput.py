"""Tests for the stability-frontier and throughput models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.stability import max_stable_eta, predicted_frontier, stability_margin
from repro.analysis.throughput import (
    predicted_speedup,
    predicted_time_per_update,
    saturation_threads,
)
from repro.errors import ConfigurationError
from repro.sim.cost import CostModel


class TestMaxStableEta:
    def test_zero_delay_recovers_classic_bound(self):
        assert max_stable_eta(1.0, 0) == pytest.approx(2.0)
        assert max_stable_eta(4.0, 0) == pytest.approx(0.5)

    def test_decreasing_in_delay(self):
        values = [max_stable_eta(1.0, tau) for tau in (0, 1, 2, 5, 20)]
        assert values == sorted(values, reverse=True)

    def test_large_delay_asymptotics(self):
        tau = 500.0
        # 2*sin(x) ~ 2x for small x, with x = pi / (2*(2*tau+1))
        assert max_stable_eta(1.0, tau) == pytest.approx(math.pi / (2 * tau + 1), rel=1e-3)

    def test_fractional_delay_interpolates(self):
        assert max_stable_eta(1.0, 0) > max_stable_eta(1.0, 0.5) > max_stable_eta(1.0, 1)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            max_stable_eta(0.0, 1)
        with pytest.raises(ConfigurationError):
            max_stable_eta(1.0, -1)


class TestPredictedFrontier:
    def test_persistence_extends_frontier(self):
        # Tighter persistence -> lower tau -> larger stable eta.
        loose = predicted_frontier(16, 10.0, 2.0, persistence=float("inf"))
        tight = predicted_frontier(16, 10.0, 2.0, persistence=0)
        assert tight > loose

    def test_frontier_shrinks_with_threads(self):
        few = predicted_frontier(4, 10.0, 2.0)
        many = predicted_frontier(64, 10.0, 2.0)
        assert many < few

    def test_single_thread_recovers_sequential_bound(self):
        assert predicted_frontier(1, 10.0, 2.0, persistence=0) == pytest.approx(2.0)

    def test_stability_margin(self):
        assert stability_margin(0.5, 1.0, 0) == pytest.approx(4.0)
        assert stability_margin(4.0, 1.0, 0) < 1.0  # outside the region


class TestThroughputModel:
    @pytest.fixture
    def cost(self):
        return CostModel(tc=10e-3, tu=1e-3, t_copy=0.7e-3)

    def test_seq(self, cost):
        assert predicted_time_per_update("SEQ", 1, cost) == pytest.approx(cost.tc + cost.tu)

    def test_async_scales_then_saturates(self, cost):
        t4 = predicted_time_per_update("ASYNC", 4, cost)
        t64 = predicted_time_per_update("ASYNC", 64, cost)
        t1000 = predicted_time_per_update("ASYNC", 1000, cost)
        assert t4 > t64
        assert t64 == pytest.approx(cost.t_copy + cost.tu)  # saturated
        assert t1000 == t64  # flat once saturated (Fig 3 right)

    def test_saturation_knee(self, cost):
        knee = saturation_threads("ASYNC", cost)
        before = predicted_time_per_update("ASYNC", int(knee) - 1, cost)
        after = predicted_time_per_update("ASYNC", int(knee) + 2, cost)
        assert before > after or before == pytest.approx(after, rel=0.2)
        assert saturation_threads("HOG", cost) == float("inf")

    def test_hog_pays_coherence(self, cost):
        no_penalty = CostModel(tc=cost.tc, tu=cost.tu, t_copy=cost.t_copy,
                               coherence_penalty=0.0)
        assert predicted_time_per_update("HOG", 16, cost) > predicted_time_per_update(
            "HOG", 16, no_penalty
        )

    def test_lsh_close_to_async_shape(self, cost):
        lsh = predicted_time_per_update("LSH_psinf", 16, cost)
        asy = predicted_time_per_update("ASYNC", 16, cost)
        assert lsh == pytest.approx(asy, rel=0.25)

    def test_speedup_monotone_up_to_saturation(self, cost):
        speedups = [predicted_speedup("LSH_ps0", m, cost) for m in (1, 2, 4, 8)]
        assert speedups == sorted(speedups)
        assert speedups[0] <= 1.2  # ~1 at a single thread

    def test_unknown_algorithm_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            predicted_time_per_update("MAGIC", 4, cost)
        with pytest.raises(ConfigurationError):
            saturation_threads("MAGIC", cost)


class TestModelAgainstSimulator:
    """The models must predict the simulator's measurements to first
    order (a factor ~2 band — they are deliberately coarse)."""

    @pytest.mark.parametrize("algorithm,m", [("SEQ", 1), ("ASYNC", 8), ("HOG", 8), ("LSH_psinf", 8)])
    def test_time_per_update_within_band(self, algorithm, m):
        from repro.harness.runner import run_once
        from repro.core.problem import QuadraticProblem
        from tests.conftest import make_run_config

        cost = CostModel(tc=10e-3, tu=1e-3, t_copy=0.7e-3)
        problem = QuadraticProblem(64, h=1.0, b=2.0, noise_sigma=0.05)
        result = run_once(problem, cost, make_run_config(algorithm=algorithm, m=m, eta=0.05))
        predicted = predicted_time_per_update(algorithm, m, cost)
        ratio = result.time_per_update / predicted
        assert 0.5 < ratio < 2.2, (
            f"{algorithm} m={m}: measured {result.time_per_update:.2e} vs "
            f"predicted {predicted:.2e} (ratio {ratio:.2f})"
        )
