"""Tests for the Section IV analytical models — including the
cross-check that the closed form (eq. 5) matches the recurrence (eq. 4)
and that the simulator's measured LAU-SPC occupancy lands near the
predicted fixed point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contention import (
    expected_compute_staleness,
    expected_scheduling_staleness,
    expected_total_staleness,
    persistence_gamma,
)
from repro.analysis.dynamics import (
    fixed_point,
    fixed_point_with_persistence,
    is_stable,
    occupancy_closed_form,
    occupancy_recurrence,
)
from repro.analysis.memory_model import (
    baseline_instances,
    leashed_expected_instances,
    leashed_max_instances,
    predicted_memory_bytes,
)
from repro.errors import ConfigurationError


class TestRecurrenceAndClosedForm:
    def test_closed_form_matches_recurrence(self):
        m, tc, tu = 16, 10.0, 2.0
        rec = occupancy_recurrence(m, tc, tu, n0=3.0, steps=60)
        closed = occupancy_closed_form(m, tc, tu, np.arange(61), n0=3.0)
        np.testing.assert_allclose(rec, closed, rtol=1e-10)

    def test_converges_to_fixed_point(self):
        m, tc, tu = 32, 8.0, 2.0
        n_star = fixed_point(m, tc, tu)
        rec = occupancy_recurrence(m, tc, tu, n0=0.0, steps=500)
        assert rec[-1] == pytest.approx(n_star, rel=1e-6)

    def test_any_initial_condition_converges(self):
        m, tc, tu = 16, 10.0, 2.0
        n_star = fixed_point(m, tc, tu)
        for n0 in (0.0, 5.0, 16.0):
            rec = occupancy_recurrence(m, tc, tu, n0=n0, steps=400)
            assert rec[-1] == pytest.approx(n_star, rel=1e-6)

    def test_fixed_point_is_stationary(self):
        m, tc, tu = 16, 10.0, 2.0
        n_star = fixed_point(m, tc, tu)
        rec = occupancy_recurrence(m, tc, tu, n0=n_star, steps=10)
        np.testing.assert_allclose(rec, n_star, rtol=1e-12)

    def test_scalar_closed_form(self):
        value = occupancy_closed_form(8, 5.0, 2.0, 3)
        assert isinstance(value, float) and value >= 0

    def test_stability_condition(self):
        assert is_stable(10.0, 2.0)
        assert not is_stable(1.0, 1.0)  # decay factor -1: oscillates

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            occupancy_recurrence(0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            fixed_point(4, -1.0, 1.0)


class TestFixedPoints:
    def test_corollary_3_1_formula(self):
        assert fixed_point(16, 10.0, 2.0) == pytest.approx(16 / 6.0)

    def test_balance_depends_only_on_ratio(self):
        # n*/m = Tu / (Tu + Tc): scaling both durations changes nothing.
        a = fixed_point(16, 10.0, 2.0)
        b = fixed_point(16, 100.0, 20.0)
        assert a == pytest.approx(b)

    def test_persistence_shifts_fixed_point_down(self):
        base = fixed_point(16, 10.0, 2.0)
        shifted = fixed_point_with_persistence(16, 10.0, 2.0, gamma=1.0)
        assert shifted < base

    def test_gamma_infinity_vanishes(self):
        assert fixed_point_with_persistence(16, 10.0, 2.0, float("inf")) == 0.0

    def test_gamma_zero_recovers_base(self):
        assert fixed_point_with_persistence(16, 10.0, 2.0, 0.0) == pytest.approx(
            fixed_point(16, 10.0, 2.0)
        )


class TestContention:
    def test_persistence_gamma_mapping(self):
        assert persistence_gamma(float("inf")) == 0.0
        assert persistence_gamma(0) == 1.0
        assert persistence_gamma(1) == 0.5
        # monotone decreasing in the bound
        assert persistence_gamma(0) > persistence_gamma(1) > persistence_gamma(10)

    def test_tau_s_zero_at_ps0(self):
        assert expected_scheduling_staleness(16, 10.0, 2.0, persistence=0) == 0.0

    def test_tau_s_monotone_in_persistence(self):
        values = [
            expected_scheduling_staleness(16, 10.0, 2.0, persistence=p)
            for p in (0, 1, 5, float("inf"))
        ]
        assert values == sorted(values)

    def test_tau_c_grows_with_m(self):
        assert expected_compute_staleness(32, 10.0, 2.0) > expected_compute_staleness(8, 10.0, 2.0)

    def test_tau_c_single_thread_zero(self):
        assert expected_compute_staleness(1, 10.0, 2.0) == 0.0

    def test_total_is_sum(self):
        total = expected_total_staleness(16, 10.0, 2.0, persistence=1)
        parts = expected_compute_staleness(16, 10.0, 2.0) + expected_scheduling_staleness(
            16, 10.0, 2.0, persistence=1
        )
        assert total == pytest.approx(parts)


class TestMemoryModel:
    def test_baseline_formula(self):
        assert baseline_instances(16) == 33

    def test_leashed_bound_formula(self):
        assert leashed_max_instances(16) == 48

    def test_expected_below_bound(self):
        expected = leashed_expected_instances(16, tc=10.0, tu=1.0, t_copy=0.7)
        assert expected < leashed_max_instances(16)

    def test_high_ratio_saves_memory_vs_baseline(self):
        # CNN regime (Tc >> Tu): Leashed's expected live count drops
        # below the baselines' constant 2m+1 — the paper's ~17% saving.
        m = 16
        expected = leashed_expected_instances(m, tc=12.0, tu=0.2, t_copy=0.14)
        assert expected < baseline_instances(m)

    def test_predicted_bytes(self):
        assert predicted_memory_bytes(10, d=1000, itemsize=4) == 40_000

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            baseline_instances(0)
        with pytest.raises(ConfigurationError):
            predicted_memory_bytes(1, d=0)


class TestModelVsSimulator:
    """Validate eq. (4)/(5) against the *measured* retry-loop occupancy
    of real Leashed-SGD executions (the ablation of DESIGN.md §6)."""

    def test_measured_occupancy_near_fixed_point(self):
        from tests.core.conftest import run_algorithm
        from repro.sim.cost import CostModel

        # Strong contention so the loop occupancy is clearly nonzero.
        tc, tu, m = 2e-3, 1e-3, 12
        cost = CostModel(tc=tc, tu=tu, t_copy=0.2e-3)
        execution = run_algorithm(
            "LSH_psinf", m=m, cost=cost, seed=11,
            epsilons=(0.5, 0.05), target_epsilon=0.05,
        )
        t, occ = execution.trace.retry_loop_occupancy(resolution=200)
        assert t.size > 0
        steady = occ[len(occ) // 2 :]
        measured = float(np.mean(steady))
        # The retry loop's work per pass is t_copy + tu (+ pointer ops),
        # so the model's "T_u" is the full loop-body duration.
        n_star = fixed_point(m, tc, tu + 0.2e-3)
        assert measured == pytest.approx(n_star, rel=0.5)
        assert 0 < measured < m
