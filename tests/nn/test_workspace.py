"""StepWorkspace: the zero-allocation gradient path must be invisible.

Every buffered operation reruns the allocating path's floating-point
program with ``out=`` targets, so a workspace may change *where* bytes
live but never *what* is computed — checked bit for bit on both paper
architectures, together with the fallback and caching contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.batcher import MiniBatcher
from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.nn.architectures import cnn_mnist, mlp_mnist
from repro.nn.workspace import StepWorkspace

BATCH = 8


def _batch(net, n=BATCH, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n,) + net.input_shape).astype(np.float32)
    y = rng.integers(0, net.output_shape[0], size=n)
    return x, y


@pytest.fixture(params=["mlp", "cnn"])
def net(request):
    return mlp_mnist() if request.param == "mlp" else cnn_mnist()


class TestBitwiseIdentity:
    def test_workspace_matches_allocating_path(self, net):
        x, y = _batch(net)
        rng = np.random.default_rng(3)
        theta = net.init_theta(rng, dtype=np.float32)
        ws = net.make_workspace(BATCH)
        grad_plain = np.empty(net.n_params, dtype=np.float32)
        grad_ws = np.empty(net.n_params, dtype=np.float32)
        loss_plain, _ = net.loss_and_grad(x, y, theta, grad_out=grad_plain)
        loss_ws, _ = net.loss_and_grad(x, y, theta, grad_out=grad_ws, workspace=ws)
        assert loss_ws == loss_plain
        np.testing.assert_array_equal(grad_ws, grad_plain)

    def test_identity_survives_buffer_reuse(self, net):
        # The second call reads dirty workspace buffers — their contents
        # must never leak into the result.
        rng = np.random.default_rng(4)
        theta = net.init_theta(rng, dtype=np.float32)
        ws = net.make_workspace(BATCH)
        grad_plain = np.empty(net.n_params, dtype=np.float32)
        grad_ws = np.empty(net.n_params, dtype=np.float32)
        for seed in range(3):
            x, y = _batch(net, seed=seed)
            loss_plain, _ = net.loss_and_grad(x, y, theta, grad_out=grad_plain)
            loss_ws, _ = net.loss_and_grad(x, y, theta, grad_out=grad_ws, workspace=ws)
            assert loss_ws == loss_plain
            np.testing.assert_array_equal(grad_ws, grad_plain)
            theta -= 0.05 * grad_plain


class TestFallback:
    def test_mismatched_batch_takes_allocating_path(self, net):
        # The monitor's held-out evals hand arbitrary batch sizes to the
        # same network; the workspace must step aside, not fail.
        x, y = _batch(net, n=BATCH + 3)
        theta = net.init_theta(np.random.default_rng(5), dtype=np.float32)
        ws = net.make_workspace(BATCH)
        loss_ws, grad_ws = net.loss_and_grad(x, y, theta, workspace=ws)
        loss_plain, grad_plain = net.loss_and_grad(x, y, theta)
        assert loss_ws == loss_plain
        np.testing.assert_array_equal(grad_ws, grad_plain)

    def test_mismatched_dtype_takes_allocating_path(self, net):
        x, y = _batch(net)
        theta = net.init_theta(np.random.default_rng(6), dtype=np.float64)
        ws = net.make_workspace(BATCH)  # float32 workspace
        loss_ws, grad_ws = net.loss_and_grad(x, y, theta, workspace=ws)
        loss_plain, grad_plain = net.loss_and_grad(x, y, theta)
        assert loss_ws == loss_plain
        np.testing.assert_array_equal(grad_ws, grad_plain)

    def test_matches_predicate(self, net):
        ws = net.make_workspace(BATCH)
        assert ws.matches(BATCH, np.float32)
        assert not ws.matches(BATCH + 1, np.float32)
        assert not ws.matches(BATCH, np.float64)


class TestConstruction:
    def test_buffers_are_preallocated_and_counted(self, net):
        ws = net.make_workspace(BATCH)
        assert len(ws.per_layer) == len(net.layers)
        assert ws.nbytes > 0
        assert ws.nbytes == sum(
            buf.nbytes for d in ws.per_layer if d is not None for buf in d.values()
        )

    def test_rejects_nonpositive_batch(self, net):
        with pytest.raises(ValueError):
            StepWorkspace(net, 0)


class TestViewCache:
    def test_views_memoized_per_buffer(self, net):
        ws = net.make_workspace(BATCH)
        theta = net.init_theta(np.random.default_rng(7), dtype=np.float32)
        first = ws.cached_views(theta, net._all_param_views)
        assert ws.cached_views(theta, net._all_param_views) is first
        assert first[0][0].base is theta

    def test_distinct_buffers_get_distinct_views(self, net):
        ws = net.make_workspace(BATCH)
        a = np.zeros(net.n_params, dtype=np.float32)
        b = np.zeros(net.n_params, dtype=np.float32)
        assert ws.cached_views(a, net._all_param_views) is not ws.cached_views(
            b, net._all_param_views
        )

    def test_cache_cap_clears_then_rebuilds(self):
        net = mlp_mnist()
        ws = net.make_workspace(BATCH)
        keep = np.zeros(net.n_params, dtype=np.float32)
        kept_views = ws.cached_views(keep, net._all_param_views)
        filler = [np.zeros(net.n_params, dtype=np.float32)
                  for _ in range(ws.VIEW_CACHE_CAP)]
        for arr in filler:
            ws.cached_views(arr, net._all_param_views)
        rebuilt = ws.cached_views(keep, net._all_param_views)
        assert rebuilt is not kept_views  # cap tripped, entry was rebuilt
        assert rebuilt[0][0].base is keep  # ...against the right buffer


class TestBufferedBatchDraw:
    def test_next_batch_into_matches_next_batch(self):
        corpus = generate_synthetic_mnist(n_train=256, n_eval=16, seed=9)
        x, y = corpus.train.as_flat(), corpus.train.labels
        a = MiniBatcher(x, y, BATCH, np.random.default_rng(1))
        b = MiniBatcher(x, y, BATCH, np.random.default_rng(1))
        x_buf = np.empty((BATCH,) + x.shape[1:], dtype=x.dtype)
        y_buf = np.empty(BATCH, dtype=y.dtype)
        # Past _INDEX_BLOCK_BATCHES draws: the block refill must keep
        # producing the per-call sequence across its boundary.
        for _ in range(MiniBatcher._INDEX_BLOCK_BATCHES + 6):
            xa, ya = a.next_batch()
            xb, yb = b.next_batch_into(x_buf, y_buf)
            assert xb is x_buf and yb is y_buf
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)
