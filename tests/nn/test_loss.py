"""Tests for softmax cross-entropy (values, gradients, stability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.loss import cross_entropy_from_probs, softmax, softmax_cross_entropy


class TestSoftmax:
    def test_uniform_logits(self):
        p = softmax(np.zeros((2, 4)))
        np.testing.assert_allclose(p, 0.25)

    def test_invariant_to_shift(self):
        logits = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), atol=1e-12)

    def test_extreme_logits_finite(self):
        p = softmax(np.array([[1e308, -1e308]]))
        assert np.all(np.isfinite(p))


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_loss_is_log_k(self):
        k = 10
        loss, _ = softmax_cross_entropy(np.zeros((4, k)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        for idx in np.ndindex(*logits.shape):
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            num[idx] = (softmax_cross_entropy(lp, labels)[0] - softmax_cross_entropy(lm, labels)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=1e-8)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(6, 3))
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 3, size=6))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_label_range_validation(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([-1, 0]))

    def test_large_logits_no_overflow(self):
        loss, grad = softmax_cross_entropy(np.array([[1000.0, -1000.0]]), np.array([1]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))


class TestCrossEntropyFromProbs:
    def test_matches_fused_version(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(8, 5))
        labels = rng.integers(0, 5, size=8)
        fused, _ = softmax_cross_entropy(logits, labels)
        split = cross_entropy_from_probs(softmax(logits), labels)
        assert split == pytest.approx(fused, rel=1e-9)

    def test_zero_prob_clipped(self):
        probs = np.array([[0.0, 1.0]])
        loss = cross_entropy_from_probs(probs, np.array([0]))
        assert np.isfinite(loss) and loss > 10

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            cross_entropy_from_probs(np.zeros(3), np.zeros(3, dtype=int))
