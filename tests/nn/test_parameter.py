"""Tests for the flat parameter layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.parameter import ParameterLayout


class TestParameterLayout:
    def test_offsets_are_contiguous(self):
        layout = ParameterLayout()
        a = layout.add("a", (3, 2))
        b = layout.add("b", (4,))
        assert a.offset == 0 and a.stop == 6
        assert b.offset == 6 and b.stop == 10
        assert layout.total_size == 10

    def test_duplicate_name_rejected(self):
        layout = ParameterLayout()
        layout.add("w", (2,))
        with pytest.raises(ShapeError):
            layout.add("w", (3,))

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ShapeError):
            ParameterLayout().add("w", (0, 3))

    def test_view_is_zero_copy(self):
        layout = ParameterLayout()
        slot = layout.add("w", (2, 3))
        theta = np.arange(6, dtype=float)
        view = layout.view(theta, slot)
        assert view.shape == (2, 3)
        view[0, 0] = 99.0
        assert theta[0] == 99.0  # writes propagate: it is a view

    def test_view_wrong_theta_rejected(self):
        layout = ParameterLayout()
        slot = layout.add("w", (4,))
        with pytest.raises(ShapeError):
            layout.view(np.zeros(2), slot)
        with pytest.raises(ShapeError):
            layout.view(np.zeros((4, 1)), slot)

    def test_views_dict(self):
        layout = ParameterLayout()
        layout.add("a", (2,))
        layout.add("b", (3,))
        views = layout.views(np.zeros(5))
        assert set(views) == {"a", "b"}

    def test_slot_lookup(self):
        layout = ParameterLayout()
        layout.add("a", (2,))
        assert layout.slot("a").name == "a"
        with pytest.raises(ShapeError):
            layout.slot("missing")

    def test_iteration_and_len(self):
        layout = ParameterLayout()
        layout.add("a", (1,))
        layout.add("b", (1,))
        assert len(layout) == 2
        assert [s.name for s in layout] == ["a", "b"]
