"""Layer-level tests, including numerical gradient checks for every
parameterized layer (the ground truth backprop must match finite
differences)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.layers.conv2d import im2col
from repro.nn.network import Network


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        fp = f()
        flat[i] = old - eps
        fm = f()
        flat[i] = old
        gflat[i] = (fp - fm) / (2 * eps)
    return g


def check_layer_gradients(layer, input_shape, rng, atol=1e-7):
    """Finite-difference check of both input and parameter gradients."""
    out_shape = layer.build(input_shape)
    n = 3
    x = rng.normal(size=(n, *input_shape))
    params = [rng.normal(size=shape) * 0.5 for _, shape in layer.param_shapes]
    # random projection makes the scalar objective sensitive to all outputs
    proj = rng.normal(size=(n, *out_shape))

    def objective():
        out, _ = layer.forward(x, params)
        return float(np.sum(out * proj))

    out, cache = layer.forward(x, params)
    grads = [np.zeros_like(p) for p in params]
    gin = layer.backward(proj, cache, params, grads)

    num_gin = numerical_grad(objective, x)
    np.testing.assert_allclose(gin, num_gin, atol=atol, rtol=1e-5)
    for p, g in zip(params, grads):
        num_g = numerical_grad(objective, p)
        np.testing.assert_allclose(g, num_g, atol=atol, rtol=1e-5)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4)
        layer.build((3,))
        x = rng.normal(size=(5, 3))
        params = [np.ones((3, 4)), np.zeros(4)]
        out, _ = layer.forward(x, params)
        assert out.shape == (5, 4)

    def test_forward_value(self):
        layer = Dense(2)
        layer.build((2,))
        W = np.array([[1.0, 0.0], [0.0, 2.0]])
        b = np.array([0.5, -0.5])
        out, _ = layer.forward(np.array([[1.0, 1.0]]), [W, b])
        np.testing.assert_allclose(out, [[1.5, 1.5]])

    def test_gradients(self, rng):
        check_layer_gradients(Dense(4), (3,), rng)

    def test_param_shapes(self):
        layer = Dense(7)
        layer.build((5,))
        assert layer.param_shapes == [("W", (5, 7)), ("b", (7,))]

    def test_requires_flat_input(self):
        with pytest.raises(ShapeError, match="Flatten"):
            Dense(3).build((2, 2))

    def test_param_shapes_before_build(self):
        with pytest.raises(ShapeError):
            _ = Dense(3).param_shapes

    def test_invalid_units(self):
        with pytest.raises(ShapeError):
            Dense(0)


class TestReLU:
    def test_clamps_negatives(self):
        layer = ReLU()
        layer.build((3,))
        out, _ = layer.forward(np.array([[-1.0, 0.0, 2.0]]), [])
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_gradients(self, rng):
        check_layer_gradients(ReLU(), (6,), rng)

    def test_no_params(self):
        layer = ReLU()
        layer.build((3,))
        assert layer.param_shapes == []


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        layer = Softmax()
        layer.build((5,))
        out, _ = layer.forward(rng.normal(size=(4, 5)), [])
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), atol=1e-12)

    def test_gradients(self, rng):
        check_layer_gradients(Softmax(), (4,), rng)

    def test_stability_large_logits(self):
        layer = Softmax()
        layer.build((2,))
        out, _ = layer.forward(np.array([[1e4, 0.0]]), [])
        assert np.all(np.isfinite(out))


class TestFlatten:
    def test_shapes(self, rng):
        layer = Flatten()
        assert layer.build((2, 3, 4)) == (24,)
        x = rng.normal(size=(5, 2, 3, 4))
        out, _ = layer.forward(x, [])
        assert out.shape == (5, 24)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        layer.build((2, 3))
        x = rng.normal(size=(4, 2, 3))
        out, cache = layer.forward(x, [])
        gin = layer.backward(np.ones_like(out), cache, [], [])
        assert gin.shape == x.shape


class TestIm2col:
    def test_patch_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2)
        assert (oh, ow) == (3, 3)
        # first patch is the top-left 2x2 window
        np.testing.assert_array_equal(cols[0, 0], [0, 1, 4, 5])

    def test_multichannel(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 5, 5))
        cols, oh, ow = im2col(x, 3, 3)
        assert cols.shape == (2, oh * ow, 3 * 9)


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(6, (3, 3))
        assert layer.build((2, 8, 9)) == (6, 6, 7)

    def test_known_convolution(self):
        # Single 2x2 averaging-ish filter on a known input.
        layer = Conv2D(1, (2, 2))
        layer.build((1, 3, 3))
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        W = np.ones((1, 4))
        b = np.zeros(1)
        out, _ = layer.forward(x, [W, b])
        np.testing.assert_allclose(out[0, 0], [[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])

    def test_gradients(self, rng):
        check_layer_gradients(Conv2D(2, (3, 3)), (2, 5, 6), rng, atol=1e-6)

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(ShapeError):
            Conv2D(1, (5, 5)).build((1, 3, 3))

    def test_int_kernel_expands(self):
        assert Conv2D(1, 3).kernel == (3, 3)

    def test_invalid_args(self):
        with pytest.raises(ShapeError):
            Conv2D(0, 3)
        with pytest.raises(ShapeError):
            Conv2D(1, (0, 3))

    def test_bias_applied_per_filter(self, rng):
        layer = Conv2D(2, (1, 1))
        layer.build((1, 2, 2))
        x = np.zeros((1, 1, 2, 2))
        W = np.zeros((2, 1))
        b = np.array([1.0, -2.0])
        out, _ = layer.forward(x, [W, b])
        assert np.all(out[0, 0] == 1.0) and np.all(out[0, 1] == -2.0)


class TestMaxPool2D:
    def test_even_pooling(self):
        layer = MaxPool2D(2)
        layer.build((1, 4, 4))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = layer.forward(x, [])
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_floor_cropping(self):
        # 5x5 -> 2x2 (paper: 11x11 pools to 5x5)
        layer = MaxPool2D(2)
        assert layer.build((3, 5, 5)) == (3, 2, 2)

    def test_paper_11_to_5(self):
        assert MaxPool2D(2).build((8, 11, 11)) == (8, 5, 5)

    def test_gradients(self, rng):
        check_layer_gradients(MaxPool2D(2), (2, 4, 6), rng)

    def test_gradient_routes_to_max_only(self):
        layer = MaxPool2D(2)
        layer.build((1, 2, 2))
        x = np.array([[[[1.0, 9.0], [3.0, 2.0]]]])
        out, cache = layer.forward(x, [])
        gin = layer.backward(np.array([[[[5.0]]]]), cache, [], [])
        np.testing.assert_array_equal(gin, [[[[0.0, 5.0], [0.0, 0.0]]]])

    def test_window_larger_than_input_rejected(self):
        with pytest.raises(ShapeError):
            MaxPool2D(4).build((1, 3, 3))

    def test_invalid_pool(self):
        with pytest.raises(ShapeError):
            MaxPool2D(0)


class TestDropout:
    def _make(self, rate, seed=0):
        from repro.nn.layers import Dropout

        layer = Dropout(rate, rng=np.random.default_rng(seed))
        layer.build((100,))
        return layer

    def test_invalid_rate(self):
        from repro.errors import ConfigurationError
        from repro.nn.layers import Dropout

        with pytest.raises(ConfigurationError):
            Dropout(1.0)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1)

    def test_zero_rate_is_identity(self, rng):
        layer = self._make(0.0)
        x = rng.normal(size=(4, 100))
        out, _ = layer.forward(x, [])
        np.testing.assert_array_equal(out, x)

    def test_eval_mode_is_identity(self, rng):
        layer = self._make(0.5)
        layer.eval_mode()
        x = rng.normal(size=(4, 100))
        out, _ = layer.forward(x, [])
        np.testing.assert_array_equal(out, x)
        layer.train_mode()
        out2, _ = layer.forward(x, [])
        assert not np.array_equal(out2, x)

    def test_expected_value_preserved(self, rng):
        layer = self._make(0.5, seed=1)
        x = np.ones((200, 100))
        out, _ = layer.forward(x, [])
        assert abs(out.mean() - 1.0) < 0.05  # inverted scaling

    def test_mask_fraction(self, rng):
        layer = self._make(0.3, seed=2)
        out, mask = layer.forward(np.ones((50, 100)), [])
        dropped = np.mean(mask == 0)
        assert abs(dropped - 0.3) < 0.03

    def test_backward_routes_through_mask(self, rng):
        layer = self._make(0.5, seed=3)
        x = rng.normal(size=(4, 100))
        out, cache = layer.forward(x, [])
        g = layer.backward(np.ones_like(out), cache, [], [])
        np.testing.assert_array_equal(g, cache)

    def test_backward_eval_mode_identity(self, rng):
        layer = self._make(0.5)
        layer.eval_mode()
        out, cache = layer.forward(rng.normal(size=(2, 100)), [])
        g = layer.backward(np.ones((2, 100)), cache, [], [])
        np.testing.assert_array_equal(g, 1.0)

    def test_trains_in_network(self, rng):
        from repro.nn import Dense, Dropout, Network, ReLU

        net = Network(
            [Dense(16), ReLU(), Dropout(0.2, rng=np.random.default_rng(5)), Dense(3)],
            input_shape=(8,),
        )
        theta = net.init_theta(rng, scheme="he", dtype=np.float64)
        x = rng.normal(size=(64, 8))
        y = rng.integers(0, 3, size=64)
        g = np.empty_like(theta)
        loss0 = net.loss(x, y, theta)
        for _ in range(200):
            net.loss_and_grad(x, y, theta, grad_out=g)
            theta -= 0.1 * g
        assert net.loss(x, y, theta) < loss0
