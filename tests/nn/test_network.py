"""Tests for the Network container: flat-parameter semantics, full-model
gradient checks, training sanity, and the paper's exact architectures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import (
    CNN_DIMENSION,
    MLP_DIMENSION,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    cnn_mnist,
    mlp_custom,
    mlp_mnist,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_net():
    return mlp_custom(6, (5,), 3)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            Network([], (3,))

    def test_n_params_counts_all_layers(self):
        net = mlp_custom(4, (3,), 2)
        # 4*3+3 + 3*2+2 = 23
        assert net.n_params == 23

    def test_output_shape_propagated(self):
        net = Network([Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(4)], (1, 8, 8))
        assert net.output_shape == (4,)

    def test_mlp_custom_validation(self):
        with pytest.raises(ConfigurationError):
            mlp_custom(0, (3,), 2)
        with pytest.raises(ConfigurationError):
            mlp_custom(4, (0,), 2)


class TestPaperArchitectures:
    def test_mlp_dimension_matches_table_ii(self):
        assert mlp_mnist().n_params == MLP_DIMENSION == 134_794

    def test_cnn_dimension_matches_table_iii(self):
        assert cnn_mnist().n_params == CNN_DIMENSION == 27_354

    def test_mlp_layer_structure(self):
        kinds = [layer.kind for layer in mlp_mnist().layers]
        assert kinds == ["dense", "relu", "dense", "relu", "dense", "relu", "dense"]

    def test_cnn_layer_structure(self):
        kinds = [layer.kind for layer in cnn_mnist().layers]
        assert kinds == [
            "conv2d", "relu", "maxpool2d",
            "conv2d", "relu", "maxpool2d",
            "flatten", "dense", "relu", "dense",
        ]

    def test_cnn_forward_shape(self, rng):
        net = cnn_mnist()
        theta = net.init_theta(rng, dtype=np.float32)
        out = net.forward(rng.normal(size=(2, 1, 28, 28)), theta)
        assert out.shape == (2, 10)


class TestThetaSemantics:
    def test_wrong_theta_size_rejected(self, tiny_net, rng):
        with pytest.raises(ShapeError):
            tiny_net.forward(rng.normal(size=(2, 6)), np.zeros(tiny_net.n_params + 1))

    def test_forward_is_pure_in_theta(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        before = theta.copy()
        tiny_net.loss_and_grad(rng.normal(size=(3, 6)), np.array([0, 1, 2]), theta)
        np.testing.assert_array_equal(theta, before)

    def test_different_theta_different_output(self, tiny_net, rng):
        x = rng.normal(size=(2, 6))
        t1 = tiny_net.init_theta(rng)
        t2 = tiny_net.init_theta(rng)
        assert not np.allclose(tiny_net.forward(x, t1), tiny_net.forward(x, t2))

    def test_grad_out_buffer_reused(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        buf = np.zeros(tiny_net.n_params)
        _, g = tiny_net.loss_and_grad(rng.normal(size=(2, 6)), np.array([0, 1]), theta, grad_out=buf)
        assert g is buf

    def test_bad_grad_out_shape_rejected(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        with pytest.raises(ShapeError):
            tiny_net.loss_and_grad(
                rng.normal(size=(2, 6)), np.array([0, 1]), theta,
                grad_out=np.zeros(tiny_net.n_params + 2),
            )

    def test_dtype_follows_theta(self, tiny_net, rng):
        theta32 = tiny_net.init_theta(rng, dtype=np.float32)
        _, g = tiny_net.loss_and_grad(rng.normal(size=(2, 6)), np.array([0, 1]), theta32)
        assert g.dtype == np.float32


class TestGradients:
    def test_full_mlp_gradient_check(self, rng):
        net = mlp_custom(5, (4, 3), 3)
        theta = net.init_theta(rng, dtype=np.float64)
        x = rng.normal(size=(4, 5))
        y = rng.integers(0, 3, size=4)
        _, g = net.loss_and_grad(x, y, theta)
        eps = 1e-6
        num = np.zeros_like(theta)
        for i in range(theta.size):
            tp = theta.copy(); tp[i] += eps
            tm = theta.copy(); tm[i] -= eps
            num[i] = (net.loss(x, y, tp) - net.loss(x, y, tm)) / (2 * eps)
        np.testing.assert_allclose(g, num, atol=1e-8)

    def test_full_cnn_gradient_check(self, rng):
        net = Network(
            [Conv2D(2, (3, 3)), ReLU(), MaxPool2D(2), Flatten(), Dense(3)],
            input_shape=(1, 6, 6),
        )
        theta = net.init_theta(rng, dtype=np.float64)
        x = rng.normal(size=(3, 1, 6, 6))
        y = rng.integers(0, 3, size=3)
        _, g = net.loss_and_grad(x, y, theta)
        eps = 1e-6
        num = np.zeros_like(theta)
        for i in range(theta.size):
            tp = theta.copy(); tp[i] += eps
            tm = theta.copy(); tm[i] -= eps
            num[i] = (net.loss(x, y, tp) - net.loss(x, y, tm)) / (2 * eps)
        np.testing.assert_allclose(g, num, atol=1e-7)


class TestTraining:
    def test_sgd_reduces_loss(self, rng):
        net = mlp_custom(8, (16,), 3)
        theta = net.init_theta(rng, scheme="he", dtype=np.float64)
        x = rng.normal(size=(64, 8))
        y = rng.integers(0, 3, size=64)
        initial = net.loss(x, y, theta)
        g = np.empty_like(theta)
        for _ in range(300):
            net.loss_and_grad(x, y, theta, grad_out=g)
            theta -= 0.2 * g
        # random labels on random inputs: memorization is slow, but the
        # loss must descend substantially
        assert net.loss(x, y, theta) < 0.6 * initial

    def test_accuracy_improves(self, rng):
        net = mlp_custom(4, (12,), 2)
        theta = net.init_theta(rng, scheme="he", dtype=np.float64)
        x = rng.normal(size=(100, 4))
        y = (x[:, 0] > 0).astype(int)
        g = np.empty_like(theta)
        for _ in range(200):
            net.loss_and_grad(x, y, theta, grad_out=g)
            theta -= 0.2 * g
        assert net.accuracy(x, y, theta) > 0.9


class TestPrediction:
    def test_predict_proba_rows_sum_to_one(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        p = tiny_net.predict_proba(rng.normal(size=(5, 6)), theta)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-6)

    def test_predict_is_argmax(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        x = rng.normal(size=(5, 6))
        np.testing.assert_array_equal(
            tiny_net.predict(x, theta),
            np.argmax(tiny_net.forward(x, theta), axis=1),
        )

    def test_accuracy_empty_batch_nan(self, tiny_net, rng):
        theta = tiny_net.init_theta(rng)
        assert np.isnan(tiny_net.accuracy(np.zeros((0, 6)), np.zeros(0, dtype=int), theta))


class TestInit:
    def test_normal_init_std(self, rng):
        net = mlp_mnist()
        theta = net.init_theta(rng, std=0.1)
        assert abs(theta.std() - 0.1) < 0.005

    def test_unknown_scheme_rejected(self, tiny_net, rng):
        with pytest.raises(ShapeError):
            tiny_net.init_theta(rng, scheme="bogus")

    def test_he_biases_zero(self, rng):
        net = mlp_custom(4, (3,), 2)
        theta = net.init_theta(rng, scheme="he")
        b_slot = net.layout.slot("dense0/b")
        np.testing.assert_array_equal(net.layout.view(theta, b_slot), 0.0)

    def test_xavier_bounded(self, rng):
        net = mlp_custom(4, (3,), 2)
        theta = net.init_theta(rng, scheme="xavier")
        w_slot = net.layout.slot("dense0/W")
        w = net.layout.view(theta, w_slot)
        bound = np.sqrt(6.0 / (4 + 3))
        assert np.all(np.abs(w) <= bound)
