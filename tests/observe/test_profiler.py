"""Self-profiler: span accounting, activation scoping, and the
neutrality contract (profiling must not perturb the simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.runner import run_cohort, run_once
from repro.observe import profiler as _profiler
from repro.observe.profiler import SpanProfiler

from tests.conftest import make_run_config
from tests.test_determinism import assert_identical


class TestSpanProfiler:
    def test_accumulates_per_span(self):
        prof = SpanProfiler()
        for _ in range(5):
            t0 = prof.start()
            prof.stop("alpha", t0)
        t0 = prof.start()
        prof.stop("beta", t0)
        summary = prof.summary()
        assert set(summary) == {"alpha", "beta"}
        assert summary["alpha"]["count"] == 5
        assert summary["beta"]["count"] == 1
        for stats in summary.values():
            assert stats["total_s"] >= 0.0
            assert stats["max_s"] >= stats["mean_s"] >= 0.0

    def test_summary_sorted_by_descending_total(self):
        prof = SpanProfiler()
        # Monotonic fake timestamps: 'slow' accumulates more than 'fast'.
        prof.stop("fast", prof.start())
        prof._total["slow"] = 10**9
        prof._count["slow"] = 1
        prof._max["slow"] = 10**9
        names = list(prof.summary())
        assert names[0] == "slow"

    def test_null_profiler_is_inert(self):
        assert _profiler.NULL.start() == 0
        _profiler.NULL.stop("anything", 0)  # no-op, no state
        assert not _profiler.is_active()

    def test_activate_deactivate_scoping(self):
        prof = SpanProfiler()
        _profiler.activate(prof)
        try:
            assert _profiler.is_active()
            assert _profiler.ACTIVE is prof
        finally:
            _profiler.deactivate()
        assert not _profiler.is_active()
        assert _profiler.ACTIVE is _profiler.NULL


class TestNeutrality:
    """self_profile=True must change *nothing* about the simulation."""

    @pytest.mark.parametrize("algorithm", ["LSH_psinf", "ASYNC", "HOG"])
    def test_run_once_bitwise_identical(self, quadratic, cost_model, algorithm):
        base = make_run_config(algorithm=algorithm, m=4, seed=31)
        plain = run_once(quadratic, cost_model, base)
        profiled = run_once(
            quadratic, cost_model, make_run_config(
                algorithm=algorithm, m=4, seed=31, self_profile=True
            )
        )
        assert_identical(plain, profiled, check_config=False)
        np.testing.assert_array_equal(
            plain.report.curve_loss, profiled.report.curve_loss
        )

    def test_profile_populated_only_when_enabled(self, quadratic, cost_model):
        plain = run_once(quadratic, cost_model, make_run_config(m=2, seed=5))
        profiled = run_once(
            quadratic, cost_model, make_run_config(m=2, seed=5, self_profile=True)
        )
        assert plain.profile == {}
        assert "scheduler.run" in profiled.profile
        assert profiled.profile["scheduler.run"]["count"] >= 1

    def test_profiler_deactivated_after_run(self, quadratic, cost_model):
        run_once(quadratic, cost_model, make_run_config(m=2, seed=5, self_profile=True))
        assert not _profiler.is_active()

    def test_profiler_deactivated_after_failed_run(self, quadratic, cost_model):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_once(
                quadratic, cost_model,
                make_run_config(m=2, seed=5, self_profile=True, algorithm="NOPE"),
            )
        assert not _profiler.is_active()

    def test_cohort_profiling_neutral_and_scoped(self, quadratic, cost_model):
        configs = [make_run_config(m=2, seed=s) for s in (1, 2, 3)]
        plain = run_cohort(quadratic, cost_model, configs)
        profiled = run_cohort(
            quadratic, cost_model,
            [make_run_config(m=2, seed=s, self_profile=True) for s in (1, 2, 3)],
        )
        for a, b in zip(plain, profiled):
            assert_identical(a, b, check_config=False)
        # Cohort-wide spans (rounds, kernels) land in every opted-in run.
        assert all("cohort.round" in r.profile for r in profiled)
        assert all(r.profile == {} for r in plain)
