"""Run-provenance manifests: field coverage, determinism, and the
timestamped benchmark variant."""

from __future__ import annotations

import json
import platform

from repro.observe.provenance import (
    SEED_PROTOCOL,
    bench_manifest,
    collect_provenance,
    config_hash,
)

from tests.conftest import make_run_config


class TestCollectProvenance:
    def test_environment_fields(self):
        manifest = collect_provenance()
        assert manifest["python"] == platform.python_version()
        assert manifest["numpy"]
        assert manifest["cpu_count"] >= 1
        assert manifest["hostname"]
        assert manifest["seed_protocol"] == SEED_PROTOCOL
        assert isinstance(manifest["git_dirty"], bool)
        # sha is either a 40-hex commit or the "unknown" fallback.
        sha = manifest["git_sha"]
        assert sha == "unknown" or len(sha) == 40

    def test_config_fields_when_given(self):
        config = make_run_config(seed=42)
        manifest = collect_provenance(config)
        assert manifest["seed"] == 42
        assert manifest["config_hash"] == config_hash(config)

    def test_per_run_manifest_is_timestamp_free(self):
        # Determinism contract: two runs of the same config produce
        # byte-identical records, so the per-run manifest must not
        # embed wall-clock time.
        manifest = collect_provenance(make_run_config())
        assert "timestamp" not in manifest
        assert collect_provenance(make_run_config()) == manifest

    def test_json_serializable(self):
        json.dumps(collect_provenance(make_run_config()))


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(make_run_config()) == config_hash(make_run_config())

    def test_differs_across_configs(self):
        assert config_hash(make_run_config(seed=1)) != config_hash(make_run_config(seed=2))

    def test_short_hex(self):
        digest = config_hash(make_run_config())
        assert len(digest) == 16
        int(digest, 16)


class TestBenchManifest:
    def test_adds_timestamp(self):
        manifest = bench_manifest()
        assert "timestamp" in manifest
        assert manifest["python"] == platform.python_version()

    def test_runs_end_to_end_carry_provenance(self, quadratic, cost_model):
        from repro.harness.runner import run_once

        result = run_once(quadratic, cost_model, make_run_config(m=2))
        manifest = result.provenance
        assert manifest["config_hash"] == config_hash(result.config)
        assert manifest["seed"] == result.config.seed
        assert "timestamp" not in manifest
