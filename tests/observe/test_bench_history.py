"""Bench-trajectory extraction and the regression gate, including the
acceptance fixture: an injected 20% throughput drop must be detected
and fail the CLI with a non-zero exit."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.observe.bench_history import (
    append_history,
    check_regressions,
    extract_headlines,
    load_history,
    provenance_mismatches,
    render_report,
    unrecognized_bench_files,
)


def write_bench_files(bench_dir, *, step_rate=2000.0, overhead=0.01):
    """A synthetic BENCH_*.json set mirroring the real scripts' shapes."""
    (bench_dir / "BENCH_engine.json").write_text(json.dumps({
        "engine": {"current_events_per_sec": 500_000.0, "speedup": 2.0},
        "harness": {"parallel_speedup": 1.1},
    }))
    (bench_dir / "BENCH_step.json").write_text(json.dumps({
        "inprocess": [
            {"workload": "mlp_b8_m4", "pooled_steps_per_sec": step_rate,
             "speedup": 1.25},
        ],
    }))
    (bench_dir / "BENCH_profile.json").write_text(json.dumps({
        "workloads": [
            {"workload": "mlp_b8_m4", "off_steps_per_sec": step_rate,
             "overhead_frac": overhead},
        ],
    }))
    return bench_dir


class TestExtraction:
    def test_headline_names(self, tmp_path):
        metrics = extract_headlines(write_bench_files(tmp_path))
        assert metrics["engine.events_per_sec"] == 500_000.0
        assert metrics["step.mlp_b8_m4.steps_per_sec"] == 2000.0
        assert metrics["profile.mlp_b8_m4.overhead_frac"] == 0.01

    def test_missing_files_skipped(self, tmp_path):
        assert extract_headlines(tmp_path) == {}

    def test_invalid_json_raises(self, tmp_path):
        (tmp_path / "BENCH_engine.json").write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            extract_headlines(tmp_path)

    def test_unrecognized_files_surfaced(self, tmp_path):
        write_bench_files(tmp_path)
        (tmp_path / "BENCH_mystery.json").write_text("{}")
        assert unrecognized_bench_files(tmp_path) == ["BENCH_mystery.json"]

    def test_report_benchmark_headlines(self, tmp_path):
        (tmp_path / "BENCH_report.json").write_text(json.dumps({
            "report": {"ingest_rows_per_sec": 500.0, "build_latency_s": 0.2},
        }))
        metrics = extract_headlines(tmp_path)
        assert metrics["report.ingest_rows_per_sec"] == 500.0
        assert metrics["report.build_latency_s"] == 0.2
        assert unrecognized_bench_files(tmp_path) == []

    def test_report_build_latency_gates_lower_is_better(self):
        previous = {"report.build_latency_s": 0.2}
        slower = {"report.build_latency_s": 0.4}
        assert check_regressions(slower, previous, max_drop=0.15)
        faster = {"report.build_latency_s": 0.1}
        assert check_regressions(faster, previous, max_drop=0.15) == []


class TestHistory:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, {"a.rate": 1.0}, label="first")
        append_history(path, {"a.rate": 2.0})
        entries = load_history(path)
        assert [e["metrics"]["a.rate"] for e in entries] == [1.0, 2.0]
        assert entries[0]["label"] == "first"
        assert "git_sha" in entries[0]["provenance"]

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []


class TestProvenanceMismatches:
    def test_differing_keys_flag(self):
        current = {"hostname": "new-box", "cpu_count": 8, "pool_mode": "fork"}
        previous = {"hostname": "old-box", "cpu_count": 4, "pool_mode": "fork"}
        messages = provenance_mismatches(current, previous)
        assert len(messages) == 2
        assert any("hostname" in m for m in messages)
        assert any("cpu_count" in m for m in messages)
        assert not any("pool_mode" in m for m in messages)

    def test_message_shows_both_values(self):
        (message,) = provenance_mismatches(
            {"pool_mode": "serial"}, {"pool_mode": "fork"}
        )
        assert "'fork'" in message and "'serial'" in message

    def test_absent_keys_never_flag(self):
        # Older entries predate some manifest fields; richer provenance
        # on only one side must not be punished.
        assert provenance_mismatches({"hostname": "h", "cpu_count": 8}, {}) == []
        assert provenance_mismatches({}, {"hostname": "h"}) == []
        assert provenance_mismatches(
            {"hostname": "h"}, {"cpu_count": 8}
        ) == []

    def test_identical_manifests_are_comparable(self):
        manifest = {"hostname": "h", "cpu_count": 8, "pool_mode": "fork"}
        assert provenance_mismatches(manifest, dict(manifest)) == []

    def test_non_comparability_keys_ignored(self):
        assert provenance_mismatches(
            {"git_sha": "abc", "hostname": "h"},
            {"git_sha": "def", "hostname": "h"},
        ) == []


class TestGate:
    def test_twenty_percent_drop_detected(self):
        previous = {"step.mlp_b8_m4.steps_per_sec": 2000.0}
        current = {"step.mlp_b8_m4.steps_per_sec": 1600.0}  # -20%
        (regression,) = check_regressions(current, previous, max_drop=0.15)
        assert regression.metric == "step.mlp_b8_m4.steps_per_sec"
        assert regression.drop == pytest.approx(0.2)

    def test_small_move_passes(self):
        previous = {"x.rate": 100.0}
        assert check_regressions({"x.rate": 95.0}, previous, max_drop=0.15) == []

    def test_lower_is_better_direction(self):
        previous = {"profile.mlp.overhead_frac": 0.01}
        worse = {"profile.mlp.overhead_frac": 0.02}  # +100% overhead
        assert check_regressions(worse, previous, max_drop=0.15)
        better = {"profile.mlp.overhead_frac": 0.005}
        assert check_regressions(better, previous, max_drop=0.15) == []

    def test_one_sided_metrics_never_gate(self):
        assert check_regressions({"new.metric": 1.0}, {"old.metric": 9.9}) == []

    def test_report_marks_regressions(self):
        history = [{"label": "seed", "metrics": {"x.rate": 100.0},
                    "provenance": {"git_sha": "abc123def456"}}]
        current = {"x.rate": 50.0}
        regs = check_regressions(current, history[-1]["metrics"])
        report = render_report(history, current, regs)
        assert "**REGRESSED**" in report
        assert "seed (abc123def" in report


class TestCli:
    def test_injected_regression_fails_cli(self, tmp_path, capsys):
        """The ISSUE acceptance fixture: record a healthy trajectory,
        degrade steps/sec by 20%, and the gate must exit non-zero."""
        write_bench_files(tmp_path, step_rate=2000.0)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path), "--record"]) == 0
        write_bench_files(tmp_path, step_rate=1600.0)  # -20% regression
        code = cli_main(["bench-history", "--bench-dir", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION: step.mlp_b8_m4.steps_per_sec" in out

    def test_healthy_trajectory_passes_and_reports(self, tmp_path):
        write_bench_files(tmp_path)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path), "--record"]) == 0
        report = tmp_path / "report.md"
        code = cli_main([
            "bench-history", "--bench-dir", str(tmp_path), "--report", str(report),
        ])
        assert code == 0
        assert "# Benchmark trajectory" in report.read_text()

    def test_empty_bench_dir_fails(self, tmp_path, capsys):
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path)]) == 1
        assert "no recognized BENCH_" in capsys.readouterr().out

    def test_overhead_increase_gates(self, tmp_path):
        write_bench_files(tmp_path, overhead=0.01)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path), "--record"]) == 0
        write_bench_files(tmp_path, overhead=0.04)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path)]) == 1

    def test_foreign_provenance_warns_but_does_not_gate(self, tmp_path, capsys):
        """Comparing against an entry recorded elsewhere prints a
        comparability warning without changing the gate verdict."""
        write_bench_files(tmp_path)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path), "--record"]) == 0
        history = tmp_path / "BENCH_history.jsonl"
        entries = [json.loads(line) for line in history.read_text().splitlines()]
        entries[-1]["provenance"]["hostname"] = "some-other-machine"
        history.write_text("".join(json.dumps(e) + "\n" for e in entries))
        capsys.readouterr()
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench-history: WARNING" in out
        assert "hostname" in out

    def test_same_host_comparison_has_no_warning(self, tmp_path, capsys):
        write_bench_files(tmp_path)
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path), "--record"]) == 0
        capsys.readouterr()
        assert cli_main(["bench-history", "--bench-dir", str(tmp_path)]) == 0
        assert "WARNING" not in capsys.readouterr().out
