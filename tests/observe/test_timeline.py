"""Timeline recorder: Chrome-trace validity, phase coverage, export
round-trip, the event cap, and the SVG fallback."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import run_once
from repro.observe.timeline import (
    TimelineRecorder,
    export_chrome_trace,
    validate_chrome_trace,
)

from tests.conftest import make_run_config


@pytest.fixture(scope="module")
def traced_run(quadratic, cost_model):
    return run_once(
        quadratic, cost_model,
        make_run_config(algorithm="LSH_psinf", m=4, seed=3, probes=("timeline",)),
    )


# Module-scoped overrides of the function-scoped conftest fixtures, so
# the traced run is simulated once for the whole module.
@pytest.fixture(scope="module")
def quadratic():
    from repro.core.problem import QuadraticProblem

    return QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05)


@pytest.fixture(scope="module")
def cost_model():
    from repro.sim.cost import CostModel

    return CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3, n_chunks=8)


@pytest.fixture(scope="module")
def timeline(traced_run):
    return traced_run.metrics.probe("timeline")


class TestRecorder:
    def test_payload_validates(self, timeline):
        summary = validate_chrome_trace(timeline)
        assert summary["n_events"] > 0
        assert summary["n_spans"] > 0

    def test_one_track_per_worker(self, timeline):
        summary = validate_chrome_trace(timeline)
        assert summary["n_tracks"] == 4  # m=4 workers

    def test_phase_vocabulary(self, timeline):
        spans = {e["name"] for e in timeline["traceEvents"] if e["ph"] == "X"}
        # A Leashed run always cycles read -> compute -> LAU phases.
        assert {"read", "compute", "prepare", "lau_spc"} <= spans

    def test_metadata_names_workers(self, timeline):
        meta = [e for e in timeline["traceEvents"] if e["ph"] == "M"]
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names and all(
            name.startswith("worker ") for name in thread_names.values()
        )
        process = [e for e in meta if e["name"] == "process_name"]
        assert process and "LSH_psinf" in process[0]["args"]["name"]

    def test_timestamps_monotonic_per_track(self, timeline):
        last: dict = {}
        for event in timeline["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0.0)
            last[key] = event["ts"]

    def test_span_durations_match_virtual_time(self, timeline, traced_run):
        # ts/dur are microseconds of *virtual* time: nothing may extend
        # past the run's final virtual timestamp.
        horizon = traced_run.virtual_time * 1e6 + 1e-6
        for event in timeline["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] + event["dur"] <= horizon


class TestExport:
    def test_export_round_trip(self, timeline, tmp_path):
        path = export_chrome_trace(timeline, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(timeline["traceEvents"])
        validate_chrome_trace(payload)

    def test_export_has_no_nan(self, timeline, tmp_path):
        text = (export_chrome_trace(timeline, tmp_path / "t.json")).read_text()
        assert "NaN" not in text and "Infinity" not in text


class TestValidator:
    def test_rejects_unknown_phase(self):
        with pytest.raises(ConfigurationError, match="ph"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "ts": 0, "pid": 0, "tid": 0, "name": "x"}]}
            )

    def test_rejects_non_numeric_ts(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "ts": "soon", "pid": 0, "tid": 0,
                                  "name": "x", "s": "t"}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError, match="dur"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "dur": -1.0, "pid": 0,
                                  "tid": 0, "name": "x"}]}
            )

    def test_rejects_time_travel_within_track(self):
        events = [
            {"ph": "i", "ts": 5.0, "pid": 0, "tid": 1, "name": "a", "s": "t"},
            {"ph": "i", "ts": 1.0, "pid": 0, "tid": 1, "name": "b", "s": "t"},
        ]
        with pytest.raises(ConfigurationError, match="backwards"):
            validate_chrome_trace({"traceEvents": events})


class TestEventCap:
    def test_truncates_at_cap(self):
        recorder = TimelineRecorder(max_events=10)
        for i in range(50):
            recorder.on_read_pinned(time=float(i), thread=0, view_seq=i)
            recorder.on_grad_done(time=float(i) + 0.5, thread=0, seq_now=i)
        result = recorder.result()
        assert result["truncated"] is True
        spans = [e for e in result["traceEvents"] if e["ph"] == "X"]
        assert len(spans) <= 10
        validate_chrome_trace(result)


class TestSvgFallback:
    def test_renders_without_matplotlib(self, timeline, tmp_path):
        import sys

        assert "matplotlib" not in sys.modules
        from repro.viz.timeline import save_timeline_svg

        path = save_timeline_svg(timeline, tmp_path / "timeline.svg")
        text = path.read_text()
        assert text.startswith("<svg")
        assert "worker 0" in text and "worker 3" in text
        assert "matplotlib" not in sys.modules

    def test_empty_payload_rejected(self):
        from repro.viz.timeline import render_timeline_svg

        with pytest.raises(ConfigurationError, match="probes"):
            render_timeline_svg({"traceEvents": []})

    def test_math_is_finite(self, timeline):
        # Guard against NaN leaking into geometry when a run has no spans
        # on some worker: every coordinate in the SVG parses as a number.
        from repro.viz.timeline import render_timeline_svg

        text = render_timeline_svg(timeline).render()
        assert "nan" not in text.lower().replace("instance", "")
        assert math.isfinite(len(text))


class TestServiceTrack:
    """Queue lifecycle events render as a dispatcher track (pid 1)."""

    @pytest.fixture()
    def service_timeline(self):
        from repro.observe.timeline import SERVICE_PID
        from repro.telemetry.bus import ProbeBus

        bus = ProbeBus()
        recorder = TimelineRecorder()
        bus.attach(recorder)
        bus.task_enqueued(0.0, "t-aaa", 2)
        bus.task_enqueued(0.0, "t-bbb", 1)
        bus.task_leased(0.1, "t-aaa", 1)
        bus.task_requeued(0.2, "t-aaa", "lease-expired")
        bus.task_leased(0.3, "t-aaa", 2)
        bus.task_done(0.9, "t-aaa", 2, "executed")
        bus.task_leased(0.9, "t-bbb", 1)
        bus.task_done(1.0, "t-bbb", 1, "cache")
        return SERVICE_PID, recorder.result()

    def test_payload_validates(self, service_timeline):
        _, payload = service_timeline
        validate_chrome_trace(payload)

    def test_events_live_on_service_pid(self, service_timeline):
        service_pid, payload = service_timeline
        events = [e for e in payload["traceEvents"] if e.get("ph") != "M"]
        assert events
        assert {e["pid"] for e in events} == {service_pid}

    def test_done_renders_lease_to_done_span(self, service_timeline):
        _, payload = service_timeline
        spans = {e["name"]: e for e in payload["traceEvents"]
                 if e.get("ph") == "X"}
        assert "task t-aaa" in spans and "task t-bbb" in spans
        # The span starts at the *latest* lease, not the expired one.
        assert spans["task t-aaa"]["ts"] == pytest.approx(0.3e6)
        assert spans["task t-aaa"]["dur"] == pytest.approx(0.6e6)
        assert spans["task t-aaa"]["args"]["source"] == "executed"

    def test_track_is_named(self, service_timeline):
        service_pid, payload = service_timeline
        meta = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
        names = {(e["pid"], e["args"]["name"]) for e in meta}
        assert (service_pid, "repro service") in names
        assert (service_pid, "dispatcher") in names

    def test_simulation_tracks_unpolluted(self, service_timeline, timeline):
        # A recorder that saw only simulation events must not emit the
        # service metadata track.
        meta_names = {e["args"]["name"] for e in timeline["traceEvents"]
                      if e.get("ph") == "M"}
        assert "repro service" not in meta_names
