"""Shared fixtures for the test suite.

Everything here is intentionally small-scale: unit tests use tiny
networks / problems so the whole suite runs in seconds; the paper-scale
paths are exercised by ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.harness.config import Profile, RunConfig, Workloads
from repro.sim.cost import CostModel
from repro.utils.rng import RngFactory


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(12345)


@pytest.fixture
def rng(rng_factory: RngFactory) -> np.random.Generator:
    return rng_factory.named("test")


@pytest.fixture
def quadratic() -> QuadraticProblem:
    """Small convex diagnostic problem."""
    return QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05)


@pytest.fixture
def cost_model() -> CostModel:
    """Contention-prone cost model (low Tc/Tu) to exercise races."""
    return CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3, n_chunks=8)


@pytest.fixture
def tiny_profile() -> Profile:
    """A miniature profile for harness-level integration tests."""
    return Profile(
        name="quick",
        n_train=512,
        n_eval=128,
        batch_size=64,
        cnn_batch_size=32,
        repeats=2,
        thread_counts=(1, 4),
        high_parallelism=(8,),
        max_updates=600,
        max_virtual_time=20.0,
        max_wall_seconds=20.0,
        step_sizes=(0.01, 0.05),
        mlp_epsilons=(0.75, 0.5),
        cnn_epsilons=(0.75, 0.5),
    )


@pytest.fixture
def tiny_workloads(tiny_profile: Profile) -> Workloads:
    return Workloads(tiny_profile)


def make_run_config(**overrides) -> RunConfig:
    """Convenience builder with fast-test defaults."""
    defaults = dict(
        algorithm="LSH_psinf",
        m=4,
        eta=0.05,
        seed=7,
        epsilons=(0.5, 0.1),
        target_epsilon=0.1,
        max_updates=20_000,
        max_virtual_time=100.0,
        max_wall_seconds=30.0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)
