"""Tests for the command-line interface and result serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.utils.serialization import load_results, result_to_dict, save_results

from tests.store.conftest import sweep_jsonl, sweep_results  # noqa: F401


class TestCliRun:
    def test_run_quadratic_converges(self, capsys):
        code = main(["run", "--algorithm", "LSH_ps1", "--m", "4",
                     "--workload", "quadratic", "--target-eps", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "mean staleness" in out

    def test_run_seq(self, capsys):
        code = main(["run", "--algorithm", "SEQ", "--m", "1",
                     "--workload", "quadratic", "--target-eps", "0.1"])
        assert code == 0

    def test_run_exit_code_nonzero_on_failure(self, capsys):
        # An eta far too small cannot converge within the profile budget.
        code = main(["run", "--algorithm", "ASYNC", "--m", "2",
                     "--workload", "quadratic", "--eta", "1e-12",
                     "--target-eps", "0.1"])
        assert code == 1

    def test_run_archives_json(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        code = main(["run", "--algorithm", "HOG", "--m", "2",
                     "--workload", "quadratic", "--target-eps", "0.1",
                     "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload[0]["status"] == "converged"

    def test_unknown_algorithm_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "--algorithm", "NOPE", "--workload", "quadratic"])


class TestCliAnalyze:
    def test_analyze_prints_probe_sections(self, capsys):
        code = main(["analyze", "--algorithm", "LSH_ps1", "--m", "4", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "n*_gamma" in out
        assert "staleness decomposition" in out
        assert "per-phase virtual-time breakdown" in out
        assert "CAS contention" in out

    def test_analyze_jsonl_svg_and_reload(self, tmp_path, capsys):
        jsonl = tmp_path / "runs.jsonl"
        svg = tmp_path / "occ.svg"
        code = main(["analyze", "--algorithm", "LSH_ps1", "--m", "4",
                     "--seed", "1", "--jsonl", str(jsonl), "--svg", str(svg)])
        assert code == 0
        assert svg.read_text().startswith("<svg")
        capsys.readouterr()
        # The archived run re-analyzes without re-running the simulation.
        code = main(["analyze", "--from-jsonl", str(jsonl)])
        out = capsys.readouterr().out
        assert code == 0
        assert "measured steady-state" in out

    def test_analyze_multi_run_prints_outcomes_table(self, sweep_jsonl, capsys):
        code = main(["analyze", "--from-jsonl", str(sweep_jsonl)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run outcomes" in out
        assert "STOPPED = budget cap" in out

    def test_analyze_smoke_gate(self, capsys):
        # The CI configuration: deterministic, must sit within tolerance
        # of the Cor. 3.2 prediction.
        args = ["analyze", "--algorithm", "LSH_ps1", "--m", "2",
                "--eta", "0.01", "--seed", "1", "--smoke"]
        assert main(args + ["--tolerance", "1.0"]) == 0
        assert "... OK" in capsys.readouterr().out
        # An unrealistically tight tolerance must flip the exit code.
        assert main(args + ["--tolerance", "0.01"]) == 1

    def test_analyze_smoke_needs_occupancy_probe(self, capsys):
        code = main(["analyze", "--algorithm", "LSH_ps1", "--m", "2",
                     "--probes", "staleness", "--smoke"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no finite occupancy" in out

    def test_analyze_unknown_probe_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown probe"):
            main(["analyze", "--probes", "bogus"])


class TestCliTable1:
    def test_prints_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "S1" in out and "Fig 3" in out


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSerialization:
    def test_roundtrip_arrays_and_specials(self, tmp_path):
        data = {
            "arr": np.arange(4, dtype=np.float32),
            "nan": float("nan"),
            "inf": float("inf"),
            "neg": float("-inf"),
            "nested": [{"x": np.int64(3)}],
        }
        path = save_results([data], tmp_path / "x.json")
        (loaded,) = load_results(path)
        np.testing.assert_array_equal(loaded["arr"], data["arr"])
        assert np.isnan(loaded["nan"])
        assert loaded["inf"] == float("inf") and loaded["neg"] == float("-inf")
        assert loaded["nested"][0]["x"] == 3

    def test_result_to_dict_on_run_result(self, quadratic, cost_model):
        from repro.harness.runner import run_once
        from tests.conftest import make_run_config

        result = run_once(quadratic, cost_model, make_run_config(m=2))
        payload = result_to_dict(result)
        assert payload["status"] == "converged"
        assert payload["config"]["algorithm"] == "LSH_psinf"
        assert isinstance(payload["staleness_values"], dict)  # ndarray wrapper

    def test_save_single_result_wraps_in_list(self, tmp_path):
        path = save_results({"a": 1}, tmp_path / "y.json")
        assert load_results(path) == [{"a": 1}]


class TestCliSweep:
    def test_sweep_quadratic(self, capsys):
        code = main(["sweep", "--algorithms", "HOG,LSH_ps0", "--m", "2",
                     "--etas", "0.05", "--repeats", "1",
                     "--workload", "quadratic", "--target-eps", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep summary" in out and "LSH_ps0" in out

    def test_sweep_archives_json(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        code = main(["sweep", "--algorithms", "SEQ", "--m", "4", "--etas", "0.05",
                     "--repeats", "1", "--workload", "quadratic",
                     "--target-eps", "0.1", "--json", str(path)])
        assert code == 0
        assert path.exists()


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        rendered = tmp_path / "rendered"
        rendered.mkdir()
        (rendered / "S1_Fig3.txt").write_text("regenerated stuff")
        out = tmp_path / "report.md"
        code = main(["report", "--rendered", str(rendered), "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "regenerated stuff" in text and "S1/Fig3" in text


class TestCliDb:
    def test_ingest_is_idempotent(self, sweep_jsonl, tmp_path, capsys):
        db = tmp_path / "results.sqlite"
        assert main(["db", "ingest", str(sweep_jsonl), "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "8 inserted, 0 duplicate" in out
        assert "8 runs total" in out
        assert main(["db", "ingest", str(sweep_jsonl), "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "0 inserted, 8 duplicate" in out
        assert "8 runs total" in out

    def test_stats_summarizes_store(self, sweep_jsonl, tmp_path, capsys):
        db = tmp_path / "results.sqlite"
        main(["db", "ingest", str(sweep_jsonl), "--db", str(db)])
        capsys.readouterr()
        assert main(["db", "stats", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "algorithms" in out
        assert "ASYNC" in out and "HOG" in out
        assert "run outcomes" in out

    def test_report_from_db(self, sweep_jsonl, tmp_path, capsys):
        from repro.report import validate_report_html

        db = tmp_path / "results.sqlite"
        main(["db", "ingest", str(sweep_jsonl), "--db", str(db)])
        out = tmp_path / "section5.html"
        code = main(["report", "--db", str(db), "--out", str(out),
                     "--generated-at", "PINNED"])
        assert code == 0
        page = out.read_text(encoding="utf-8")
        validate_report_html(page)
        assert "Mann-Whitney" in page
        assert "PINNED" in page
