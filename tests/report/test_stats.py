"""Tests for the scipy-free statistics battery, checked against known
closed-form cases and invariance properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.report.stats import (
    a12_magnitude,
    bootstrap_ci,
    mann_whitney_u,
    rankdata,
    vargha_delaney_a12,
)


class TestRankdata:
    def test_no_ties(self):
        assert rankdata([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_ties_share_average_rank(self):
        assert rankdata([1.0, 2.0, 2.0, 3.0]).tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert rankdata([5.0, 5.0, 5.0]).tolist() == [2.0, 2.0, 2.0]

    def test_rank_sum_invariant(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 5, size=50).astype(float)
        n = values.size
        assert rankdata(values).sum() == pytest.approx(n * (n + 1) / 2)


class TestMannWhitney:
    def test_u_statistic_textbook(self):
        # Disjoint samples: every a beats every b -> U_a = n1*n2.
        result = mann_whitney_u([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
        assert result.u == 9.0
        assert result.n_a == result.n_b == 3

    def test_identical_samples_not_significant(self):
        result = mann_whitney_u([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0])
        assert result.p_value == pytest.approx(1.0, abs=0.05)
        assert not result.significant

    def test_all_tied_degenerate(self):
        result = mann_whitney_u([2.0] * 5, [2.0] * 5)
        assert result.p_value == 1.0

    def test_clearly_separated_significant(self):
        a = [1.0 + 0.01 * i for i in range(12)]
        b = [5.0 + 0.01 * i for i in range(12)]
        result = mann_whitney_u(a, b)
        assert result.significant
        assert result.p_value < 0.001

    def test_symmetry(self):
        a, b = [1.0, 3.0, 5.0, 7.0], [2.0, 4.0, 6.0, 8.0]
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value
        )
        # U_a + U_b = n1 * n2.
        assert mann_whitney_u(a, b).u + mann_whitney_u(b, a).u == 16.0

    def test_empty_sample_raises(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            mann_whitney_u([], [1.0])


class TestA12:
    def test_complete_dominance(self):
        assert vargha_delaney_a12([2.0, 3.0], [0.0, 1.0]) == 1.0
        assert vargha_delaney_a12([0.0, 1.0], [2.0, 3.0]) == 0.0

    def test_stochastic_equality(self):
        assert vargha_delaney_a12([1.0, 2.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(9)
        a, b = rng.normal(0, 1, 15), rng.normal(0.4, 1, 20)
        wins = sum(1 for x in a for y in b if x > y)
        ties = sum(1 for x in a for y in b if x == y)
        expected = (wins + 0.5 * ties) / (len(a) * len(b))
        assert vargha_delaney_a12(a, b) == pytest.approx(expected)

    def test_magnitude_labels(self):
        assert a12_magnitude(0.5) == "negligible"
        assert a12_magnitude(0.6) == "small"
        assert a12_magnitude(0.36) == "medium"
        assert a12_magnitude(0.95) == "large"


class TestBootstrap:
    def test_deterministic_under_seed(self):
        values = np.random.default_rng(1).normal(5.0, 2.0, 40).tolist()
        a = bootstrap_ci(values, seed=42)
        b = bootstrap_ci(values, seed=42)
        assert (a.low, a.high, a.estimate) == (b.low, b.high, b.estimate)
        c = bootstrap_ci(values, seed=43)
        assert (a.low, a.high) != (c.low, c.high)

    def test_interval_brackets_estimate(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], seed=0)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == 3.0  # the sample median

    def test_tightens_with_sample_size(self):
        rng = np.random.default_rng(5)
        small = bootstrap_ci(rng.normal(10, 1, 10), seed=0)
        large = bootstrap_ci(rng.normal(10, 1, 1000), seed=0)
        assert (large.high - large.low) < (small.high - small.low)

    def test_custom_statistic(self):
        ci = bootstrap_ci(
            [1.0, 2.0, 3.0], stat=lambda x: float(np.mean(x)), seed=0
        )
        assert ci.estimate == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError, match="confidence"):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ConfigurationError, match="n_boot"):
            bootstrap_ci([1.0], n_boot=0)
