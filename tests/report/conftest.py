"""Report-layer fixtures: reuse the store suite's session-scoped sweep."""

from tests.store.conftest import sweep_jsonl, sweep_results  # noqa: F401
