"""Tests for the HTML report builder: content contract, structural
validation, and the byte-determinism guarantee."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.report import build_report, validate_report_html, write_report
from repro.report.html import html_page, html_table
from repro.store import ResultStore, ingest_path


@pytest.fixture
def store(sweep_jsonl, tmp_path):
    with ResultStore(":memory:") as s:
        ingest_path(s, sweep_jsonl)
        history = tmp_path / "hist.jsonl"
        entries = [
            {"label": "a", "metrics": {"engine.events_per_sec": 100.0},
             "provenance": {"git_sha": "abc"}},
            {"label": "b", "metrics": {"engine.events_per_sec": 120.0},
             "provenance": {"git_sha": "def"}},
        ]
        history.write_text("".join(json.dumps(e) + "\n" for e in entries))
        ingest_path(s, history)
        yield s


class TestBuildReport:
    def test_page_validates(self, store):
        validate_report_html(build_report(store))

    def test_statistical_tables_present(self, store):
        page = build_report(store)
        assert "Mann-Whitney" in page
        assert "A12" in page
        assert "bootstrap CI" in page
        assert "Ranking by median" in page
        # Both algorithms appear in the comparison cell.
        assert "ASYNC" in page and "HOG" in page

    def test_embedded_svg_figures(self, store):
        page = build_report(store)
        assert page.count("<svg") >= 2  # box plot + bench trajectory
        assert 'xmlns="http://www.w3.org/2000/svg"' in page

    def test_failure_and_outcome_tables(self, store):
        page = build_report(store)
        assert "Run outcomes" in page
        assert "stopped" in page and "crashed" in page

    def test_bench_trajectory_section(self, store):
        page = build_report(store)
        assert "Benchmark trajectory" in page
        assert "engine.events_per_sec" in page

    def test_explicit_eps_overrides_default(self, store):
        page = build_report(store, eps=0.5)
        assert "ε = 0.5" in page

    def test_empty_store_raises(self):
        with ResultStore(":memory:") as empty:
            with pytest.raises(ConfigurationError, match="no runs"):
                build_report(empty)

    def test_write_report_round_trip(self, store, tmp_path):
        path = write_report(store, tmp_path / "out" / "report.html",
                            generated_at="X")
        validate_report_html(path.read_text(encoding="utf-8"))


class TestDeterminism:
    def test_byte_identical_given_fixed_db_and_timestamp(self, store):
        a = build_report(store, generated_at="PINNED", seed=3)
        b = build_report(store, generated_at="PINNED", seed=3)
        assert a == b

    def test_timestamp_isolated_to_footer_block(self, store):
        a = build_report(store, generated_at="2026-01-01")
        b = build_report(store, generated_at="2026-02-02")
        # The two pages differ ONLY in the single generated-at block.
        diff_lines = [
            (la, lb) for la, lb in zip(a.splitlines(), b.splitlines())
            if la != lb
        ]
        assert len(diff_lines) == 1
        assert 'id="generated-at"' in diff_lines[0][0]
        assert a.count('id="generated-at"') == 1

    def test_rebuild_from_reopened_db_identical(self, store, sweep_jsonl, tmp_path):
        # The full pipeline is deterministic too: fresh DB on disk,
        # re-ingest, rebuild -> same bytes as the in-memory build.
        want = build_report(store, generated_at="PINNED")
        db = tmp_path / "r.sqlite"
        with ResultStore(db) as disk:
            ingest_path(disk, sweep_jsonl)
            ingest_path(disk, sweep_jsonl)  # idempotent re-ingest
        history = tmp_path / "hist.jsonl"
        history.write_text("".join(json.dumps(e) + "\n" for e in (
            {"label": "a", "metrics": {"engine.events_per_sec": 100.0},
             "provenance": {"git_sha": "abc"}},
            {"label": "b", "metrics": {"engine.events_per_sec": 120.0},
             "provenance": {"git_sha": "def"}},
        )))
        with ResultStore(db) as disk:
            ingest_path(disk, history)
            assert build_report(disk, generated_at="PINNED") == want


class TestValidator:
    def _page(self, body="<p>hi</p><svg></svg>"):
        return html_page("t", body, generated_at="now")

    def test_accepts_well_formed_page(self):
        validate_report_html(self._page())

    def test_rejects_scripts(self):
        with pytest.raises(ConfigurationError, match="scripts"):
            validate_report_html(self._page("<script>x</script><svg/>"))

    def test_rejects_external_fetches(self):
        with pytest.raises(ConfigurationError, match="external"):
            validate_report_html(
                self._page('<img src="http://evil/x.png"><svg/>')
            )
        with pytest.raises(ConfigurationError, match="offline"):
            validate_report_html(
                self._page('<a href="https://example.com">x</a><svg/>')
            )

    def test_rejects_missing_svg(self):
        with pytest.raises(ConfigurationError, match="SVG"):
            validate_report_html(self._page("<p>no figures</p>"))

    def test_rejects_second_timestamp_block(self):
        page = self._page('<div id="generated-at">again</div><svg/>')
        with pytest.raises(ConfigurationError, match="generated-at"):
            validate_report_html(page)

    def test_rejects_truncated_page(self):
        page = self._page().replace("</html>", "")
        with pytest.raises(ConfigurationError, match="truncated"):
            validate_report_html(page)


class TestHtmlTable:
    def test_cells_escaped(self):
        table = html_table(("h",), [("<b>&",)])
        assert "&lt;b&gt;&amp;" in table
        assert "<b>" not in table

    def test_numeric_and_highlight_classes(self):
        table = html_table(("a", "b"), [(1, 2), (3, 4)],
                           numeric=(1,), highlight=(0,))
        assert table.count('class="num"') == 2
        assert table.count('class="sig"') == 1
