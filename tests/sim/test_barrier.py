"""Tests for SimBarrier and scheduler fault injection."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.sync import SimBarrier
from repro.utils.rng import RngFactory


def make_scheduler(seed=1):
    return Scheduler(
        RngFactory(seed).named("s"),
        SchedulerConfig(jitter_sigma=0.0, speed_spread_sigma=0.0),
    )


class TestBarrier:
    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            SimBarrier("b", 0)
        with pytest.raises(SimulationError):
            SimBarrier("b", 2, release_cost=-1.0)

    def test_all_parties_released_together(self):
        sched = make_scheduler()
        barrier = SimBarrier("b", 3)
        release_times = []

        def body(thread):
            def gen():
                yield 0.1 * (thread.tid + 1)  # staggered arrival
                yield barrier.arrive()
                release_times.append(sched.now)
            return gen()

        for i in range(3):
            sched.spawn(f"w{i}", body)
        sched.run()
        # nobody proceeds before the slowest arrival at t=0.3
        assert min(release_times) >= 0.3
        assert barrier.generation == 1

    def test_reusable_across_rounds(self):
        sched = make_scheduler()
        barrier = SimBarrier("b", 2)
        rounds_done = []

        def body(thread):
            def gen():
                for r in range(5):
                    yield 0.01 * (thread.tid + 1)
                    yield barrier.arrive()
                    rounds_done.append((thread.tid, r))
            return gen()

        for i in range(2):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert barrier.generation == 5
        assert len(rounds_done) == 10

    def test_single_party_barrier_never_blocks(self):
        sched = make_scheduler()
        barrier = SimBarrier("b", 1)

        def body(thread):
            def gen():
                for _ in range(3):
                    yield barrier.arrive()
                    yield 0.1
            return gen()

        sched.spawn("w", body)
        sched.run()
        assert barrier.generation == 3

    def test_release_cost_charged(self):
        sched = make_scheduler()
        barrier = SimBarrier("b", 2, release_cost=0.5)

        def body(thread):
            def gen():
                yield barrier.arrive()
            return gen()

        sched.spawn("a", body)
        sched.spawn("b", body)
        sched.run()
        assert sched.now == pytest.approx(0.5)

    def test_missing_party_deadlocks(self):
        from repro.errors import DeadlockError

        sched = make_scheduler()
        barrier = SimBarrier("b", 3)  # only 2 threads will ever arrive

        def body(thread):
            def gen():
                yield barrier.arrive()
            return gen()

        sched.spawn("a", body)
        sched.spawn("b", body)
        with pytest.raises(DeadlockError):
            sched.run()


class TestSuspendAfter:
    def test_suspended_thread_stops_running(self):
        sched = make_scheduler()
        ticks = {0: 0, 1: 0}

        def body(thread):
            def gen():
                for _ in range(100):
                    ticks[thread.tid] += 1
                    yield 0.01
            return gen()

        t0 = sched.spawn("w0", body)
        sched.spawn("w1", body)
        sched.suspend_after(t0, 0.055)
        sched.run()
        assert ticks[1] == 100
        assert ticks[0] < 10  # frozen early
        assert sched.suspended_threads == [t0]

    def test_suspension_exactly_once(self):
        sched = make_scheduler()

        def body(thread):
            def gen():
                while True:
                    yield 0.01
            return gen()

        t = sched.spawn("w", body)
        sched.suspend_after(t, 0.0)
        sched.run(until=1.0)
        assert len(sched.suspended_threads) == 1
