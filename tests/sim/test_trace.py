"""Tests for trace recording and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import (
    DroppedGradientRecord,
    LockWaitRecord,
    RetryLoopRecord,
    TraceRecorder,
    UpdateRecord,
    ViewDivergenceRecord,
)


@pytest.fixture
def trace():
    return TraceRecorder()


def add_updates(trace, stalenesses, *, dt=1.0):
    for i, tau in enumerate(stalenesses):
        trace.record_update(UpdateRecord(time=i * dt, thread=i % 3, seq=i, staleness=tau))


class TestStaleness:
    def test_values_in_order(self, trace):
        add_updates(trace, [0, 2, 1])
        np.testing.assert_array_equal(trace.staleness_values(), [0, 2, 1])

    def test_summary(self, trace):
        add_updates(trace, [0, 10, 2, 4])
        s = trace.staleness_summary()
        assert s["mean"] == 4.0 and s["max"] == 10

    def test_summary_empty_is_nan(self, trace):
        assert np.isnan(trace.staleness_summary()["mean"])

    def test_staleness_over_time_bins(self, trace):
        add_updates(trace, [0] * 10 + [10] * 10)
        centers, means = trace.staleness_over_time(bins=2)
        assert means[0] < means[1]

    def test_staleness_over_time_empty(self, trace):
        centers, means = trace.staleness_over_time()
        assert centers.size == 0


class TestOccupancy:
    def test_occupancy_counts_overlap(self, trace):
        trace.record_retry_loop(RetryLoopRecord(0.0, 10.0, 0, 1, True))
        trace.record_retry_loop(RetryLoopRecord(5.0, 15.0, 1, 2, True))
        t, occ = trace.retry_loop_occupancy(resolution=100)
        mid = np.searchsorted(t, 7.0)
        assert occ[mid] == 2
        assert occ[np.searchsorted(t, 2.0)] == 1

    def test_occupancy_empty(self, trace):
        t, occ = trace.retry_loop_occupancy()
        assert t.size == 0


class TestRates:
    def test_cas_failure_rate(self, trace):
        trace.record_update(UpdateRecord(0.0, 0, 0, 0, cas_failures=3))
        trace.record_update(UpdateRecord(1.0, 1, 1, 0, cas_failures=0))
        trace.record_dropped(DroppedGradientRecord(2.0, 2, 2))
        # failures = 3 + 0 + 2 = 5; successes = 2; total = 7
        assert trace.cas_failure_rate() == pytest.approx(5 / 7)

    def test_cas_rate_empty_is_nan(self, trace):
        # "never performed a CAS" is not-applicable, not rate-zero
        assert np.isnan(trace.cas_failure_rate())

    def test_cas_rate_nan_without_cas_evidence(self, trace):
        # updates exist but carry no CAS evidence (lock-based/sequential)
        trace.add_update(0.0, 0, 0, 0)
        trace.add_update(1.0, 1, 1, 0)
        assert np.isnan(trace.cas_failure_rate())

    def test_cas_rate_zero_with_attempts(self, trace):
        # bus evidence of (always-successful) CAS: genuinely 0.0
        trace.on_cas_attempt(0.0, 0, True, 0)
        trace.add_update(0.0, 0, 0, 0)
        assert trace.cas_failure_rate() == 0.0

    def test_mean_lock_wait(self, trace):
        trace.record_lock_wait(LockWaitRecord(0.0, 1.0, 0))
        trace.record_lock_wait(LockWaitRecord(2.0, 2.5, 1))
        assert trace.mean_lock_wait() == pytest.approx(0.75)

    def test_mean_lock_wait_empty_is_nan(self, trace):
        # lock-free algorithms: not-applicable, not zero contention
        assert np.isnan(trace.mean_lock_wait())


class TestPinnedAggregations:
    """Aggregations pinned against hand-computed values, so the columnar
    storage rewrite is provably behavior-preserving."""

    def test_staleness_summary_pinned(self, trace):
        # staleness values: 0, 1, 2, 3, 14 (n=5)
        for i, tau in enumerate([0, 1, 2, 3, 14]):
            trace.add_update(float(i), i % 2, i, tau)
        s = trace.staleness_summary()
        assert s["mean"] == pytest.approx(4.0)      # (0+1+2+3+14)/5
        assert s["median"] == pytest.approx(2.0)
        # p90 by linear interpolation: idx = 0.9*(5-1) = 3.6 -> 3 + 0.6*(14-3)
        assert s["p90"] == pytest.approx(9.6)
        assert s["max"] == 14.0

    def test_cas_failure_rate_pinned(self, trace):
        trace.add_update(0.0, 0, 0, 0, cas_failures=2)
        trace.add_update(1.0, 1, 1, 0, cas_failures=1)
        trace.add_update(2.0, 0, 2, 0, cas_failures=0)
        trace.add_dropped(3.0, 1, 4)
        # failures = 2+1+0+4 = 7; successes = 3; total = 10
        assert trace.cas_failure_rate() == pytest.approx(0.7)

    def test_mean_lock_wait_pinned(self, trace):
        trace.add_lock_wait(0.0, 0.5, 0)   # wait 0.5
        trace.add_lock_wait(1.0, 1.25, 1)  # wait 0.25
        trace.add_lock_wait(2.0, 2.0, 0)   # wait 0.0
        assert trace.mean_lock_wait() == pytest.approx(0.25)  # (0.5+0.25+0)/3

    def test_retry_occupancy_pinned(self, trace):
        # Stays [0,4], [1,3], [2,6]: occupancy 1 on (0,1), 2 on (1,2),
        # 3 on (2,3), back to 2 on (3,4), 1 on (4,6).
        trace.add_retry_loop(0.0, 4.0, 0, 1, True)
        trace.add_retry_loop(1.0, 3.0, 1, 2, True)
        trace.add_retry_loop(2.0, 6.0, 2, 1, False)
        t, occ = trace.retry_loop_occupancy(resolution=601)  # step 0.01
        def occ_at(x):
            return occ[np.searchsorted(t, x)]
        assert occ_at(0.5) == 1
        assert occ_at(1.5) == 2
        assert occ_at(2.5) == 3
        assert occ_at(3.5) == 2
        assert occ_at(5.0) == 1

    def test_staleness_over_time_pinned(self, trace):
        # Two bins over [0, 10]: times 1,2 (tau 2,4) and 6,9 (tau 10,20).
        for t_, tau in [(1.0, 2), (2.0, 4), (6.0, 10), (9.0, 20)]:
            trace.add_update(t_, 0, 0, tau)
        centers, means = trace.staleness_over_time(bins=2)
        np.testing.assert_allclose(centers, [2.25, 6.75])
        np.testing.assert_allclose(means, [3.0, 15.0])  # (2+4)/2, (10+20)/2

    def test_updates_per_thread_pinned(self, trace):
        for tid in [0, 1, 1, 2, 2, 2, 5]:  # 5 out of range for m=3
            trace.add_update(0.0, tid, 0, 0)
        np.testing.assert_array_equal(trace.updates_per_thread(3), [1, 2, 3])

    def test_view_divergence_summary_pinned(self, trace):
        for l2 in [1.0, 2.0, 3.0, 4.0]:
            trace.add_view_divergence(0.0, 0, l2)
        s = trace.view_divergence_summary()
        assert s["mean"] == pytest.approx(2.5)
        # p90: idx = 0.9*3 = 2.7 -> 3 + 0.7*(4-3)
        assert s["p90"] == pytest.approx(3.7)
        assert s["max"] == 4.0


class TestColumnarRecordEquivalence:
    """The fast positional add_* API and the record-object API must be
    indistinguishable, and the materialized record views must round-trip
    the columns."""

    def test_record_and_add_produce_same_state(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record_update(UpdateRecord(1.0, 2, 3, 4, cas_failures=5))
        b.add_update(1.0, 2, 3, 4, 5)
        assert a.updates == b.updates
        a.record_dropped(DroppedGradientRecord(1.5, 0, 2))
        b.add_dropped(1.5, 0, 2)
        assert a.dropped == b.dropped
        a.record_retry_loop(RetryLoopRecord(0.0, 1.0, 1, 2, True))
        b.add_retry_loop(0.0, 1.0, 1, 2, True)
        assert a.retry_loops == b.retry_loops
        a.record_lock_wait(LockWaitRecord(0.0, 0.5, 3))
        b.add_lock_wait(0.0, 0.5, 3)
        assert a.lock_waits == b.lock_waits
        a.record_view_divergence(ViewDivergenceRecord(2.0, 1, 0.25))
        b.add_view_divergence(2.0, 1, 0.25)
        assert a.view_divergences == b.view_divergences

    def test_materialized_records_refresh_after_append(self, trace):
        trace.add_update(0.0, 0, 0, 1)
        first = trace.updates
        assert [u.staleness for u in first] == [1]
        trace.add_update(1.0, 1, 1, 7)  # invalidates the cached view
        assert [u.staleness for u in trace.updates] == [1, 7]

    def test_materialized_records_are_records(self, trace):
        trace.add_update(0.5, 1, 2, 3, 4)
        (u,) = trace.updates
        assert u == UpdateRecord(0.5, 1, 2, 3, 4)
        assert trace.view_divergences == []


class TestPerThread:
    def test_updates_per_thread(self, trace):
        add_updates(trace, [0] * 7)
        counts = trace.updates_per_thread(3)
        assert counts.sum() == 7
        assert counts[0] == 3  # threads cycle 0,1,2

    def test_out_of_range_thread_ignored(self, trace):
        trace.record_update(UpdateRecord(0.0, 99, 0, 0))
        assert trace.updates_per_thread(3).sum() == 0

    def test_n_updates(self, trace):
        add_updates(trace, [1, 2])
        assert trace.n_updates == 2
