"""Tests for trace recording and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import (
    DroppedGradientRecord,
    LockWaitRecord,
    RetryLoopRecord,
    TraceRecorder,
    UpdateRecord,
)


@pytest.fixture
def trace():
    return TraceRecorder()


def add_updates(trace, stalenesses, *, dt=1.0):
    for i, tau in enumerate(stalenesses):
        trace.record_update(UpdateRecord(time=i * dt, thread=i % 3, seq=i, staleness=tau))


class TestStaleness:
    def test_values_in_order(self, trace):
        add_updates(trace, [0, 2, 1])
        np.testing.assert_array_equal(trace.staleness_values(), [0, 2, 1])

    def test_summary(self, trace):
        add_updates(trace, [0, 10, 2, 4])
        s = trace.staleness_summary()
        assert s["mean"] == 4.0 and s["max"] == 10

    def test_summary_empty_is_nan(self, trace):
        assert np.isnan(trace.staleness_summary()["mean"])

    def test_staleness_over_time_bins(self, trace):
        add_updates(trace, [0] * 10 + [10] * 10)
        centers, means = trace.staleness_over_time(bins=2)
        assert means[0] < means[1]

    def test_staleness_over_time_empty(self, trace):
        centers, means = trace.staleness_over_time()
        assert centers.size == 0


class TestOccupancy:
    def test_occupancy_counts_overlap(self, trace):
        trace.record_retry_loop(RetryLoopRecord(0.0, 10.0, 0, 1, True))
        trace.record_retry_loop(RetryLoopRecord(5.0, 15.0, 1, 2, True))
        t, occ = trace.retry_loop_occupancy(resolution=100)
        mid = np.searchsorted(t, 7.0)
        assert occ[mid] == 2
        assert occ[np.searchsorted(t, 2.0)] == 1

    def test_occupancy_empty(self, trace):
        t, occ = trace.retry_loop_occupancy()
        assert t.size == 0


class TestRates:
    def test_cas_failure_rate(self, trace):
        trace.record_update(UpdateRecord(0.0, 0, 0, 0, cas_failures=3))
        trace.record_update(UpdateRecord(1.0, 1, 1, 0, cas_failures=0))
        trace.record_dropped(DroppedGradientRecord(2.0, 2, 2))
        # failures = 3 + 0 + 2 = 5; successes = 2; total = 7
        assert trace.cas_failure_rate() == pytest.approx(5 / 7)

    def test_cas_rate_empty(self, trace):
        assert trace.cas_failure_rate() == 0.0

    def test_mean_lock_wait(self, trace):
        trace.record_lock_wait(LockWaitRecord(0.0, 1.0, 0))
        trace.record_lock_wait(LockWaitRecord(2.0, 2.5, 1))
        assert trace.mean_lock_wait() == pytest.approx(0.75)

    def test_mean_lock_wait_empty(self, trace):
        assert trace.mean_lock_wait() == 0.0


class TestPerThread:
    def test_updates_per_thread(self, trace):
        add_updates(trace, [0] * 7)
        counts = trace.updates_per_thread(3)
        assert counts.sum() == 7
        assert counts[0] == 3  # threads cycle 0,1,2

    def test_out_of_range_thread_ignored(self, trace):
        trace.record_update(UpdateRecord(0.0, 99, 0, 0))
        assert trace.updates_per_thread(3).sum() == 0

    def test_n_updates(self, trace):
        add_updates(trace, [1, 2])
        assert trace.n_updates == 2
