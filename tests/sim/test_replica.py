"""Tests for the replica-vectorized lockstep engine.

Covers the scheduler's cohort mode (deferred multi-grad harvesting),
the :class:`~repro.sim.replica.LockstepCohort` round loop, the
:class:`~repro.nn.replica.ReplicaKernel` build guards, and — the
acceptance bar — bitwise identity between ``run_cohort`` and the serial
``run_once`` path across algorithms, architectures, and cohort sizes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.problem import DLProblem
from repro.errors import SimulationError
from repro.harness.config import RunConfig
from repro.harness.runner import repeated_configs, run_cohort, run_once
from repro.nn.architectures import mlp_custom
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network
from repro.nn.replica import ReplicaKernel
from repro.sim.cost import CostModel
from repro.sim.grad import GradCompute
from repro.sim.replica import LockstepCohort
from repro.sim.scheduler import Scheduler, SchedulerConfig


# ---------------------------------------------------------------------------
# Tiny problems: small enough that the full identity matrix runs in
# seconds, structured enough to exercise the dense-stacked (MLP) and
# the conv/pool-stacked (CNN) kernel paths.


def tiny_mlp_problem() -> DLProblem:
    rng = np.random.default_rng(42)
    net = mlp_custom(12, (10, 8), 4, name="tiny_mlp")
    x = rng.normal(size=(96, 12)).astype(np.float32)
    y = rng.integers(0, 4, size=96)
    return DLProblem(net, x, y, x[:24], y[:24], batch_size=6, dtype=np.float32)


def tiny_cnn_problem() -> DLProblem:
    rng = np.random.default_rng(43)
    net = Network(
        [Conv2D(2, (3, 3)), ReLU(), MaxPool2D((2, 2)), Flatten(), Dense(8), ReLU(), Dense(3)],
        input_shape=(1, 8, 8),
        name="tiny_cnn",
    )
    x = rng.normal(size=(48, 1, 8, 8)).astype(np.float32)
    y = rng.integers(0, 3, size=48)
    return DLProblem(net, x, y, x[:12], y[:12], batch_size=4, dtype=np.float32)


COST = CostModel(tc=5e-3, tu=1e-3, t_copy=5e-4)


def make_configs(algorithm: str, replicas: int, *, max_updates: int = 24,
                 m: int = 3, eta: float = 0.05) -> list[RunConfig]:
    base = RunConfig(
        algorithm=algorithm,
        m=1 if algorithm == "SEQ" else m,
        eta=eta,
        seed=5,
        epsilons=(1e-9,),
        eval_interval=10 * (COST.tc + COST.tu),
        max_updates=max_updates,
        max_virtual_time=1e18,
    )
    return repeated_configs(base, repeats=replicas)


def identity_of(result):
    """Everything a run result pins down, minus wall time (an execution
    property, not a simulation result)."""
    return (
        result.n_updates,
        float(result.virtual_time),
        float(result.report.final_loss),
        result.status.value,
    )


# ---------------------------------------------------------------------------
class TestBitwiseIdentity:
    """run_cohort == K x run_once, bit for bit."""

    @pytest.mark.parametrize("algorithm", ["SEQ", "ASYNC", "HOG", "LSH_ps1"])
    @pytest.mark.parametrize("replicas", [1, 3, 11])
    def test_mlp(self, algorithm, replicas):
        problem = tiny_mlp_problem()
        configs = make_configs(algorithm, replicas)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        cohort = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert serial == cohort

    @pytest.mark.parametrize("algorithm", ["SEQ", "ASYNC", "HOG", "LSH_ps1"])
    @pytest.mark.parametrize("replicas", [3, 11])
    def test_cnn(self, algorithm, replicas):
        problem = tiny_cnn_problem()
        configs = make_configs(algorithm, replicas, max_updates=10)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        cohort = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert serial == cohort

    def test_early_stopping_replica(self):
        """A replica hitting its stop condition early drops out of the
        cohort while the survivors keep batching — results unchanged."""
        problem = tiny_mlp_problem()
        # Tight monitor interval: the update cap is only enforced at
        # monitor events, so stops land close to the configured caps.
        configs = [
            replace(c, eval_interval=(COST.tc + COST.tu) / 2)
            for c in make_configs("LSH_ps1", 3)
        ]
        configs[1] = replace(configs[1], max_updates=6)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        cohort = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert serial == cohort
        assert cohort[1][0] < cohort[0][0]

    def test_diverging_replicas(self):
        """Destructive step size: replicas DIVERGE at seed-dependent
        times; the cohort must reproduce each serial outcome exactly."""
        problem = tiny_mlp_problem()
        configs = make_configs("LSH_ps1", 3, eta=60.0, max_updates=200)
        serial = [run_once(problem, COST, c) for c in configs]
        cohort = run_cohort(problem, COST, configs)
        assert [identity_of(r) for r in serial] == [identity_of(r) for r in cohort]

    def test_pool_metrics_match_serial(self):
        """The cohort's kernel-slab arena is host-side scratch: it must
        not leak into any replica's per-run pool accounting."""
        problem = tiny_cnn_problem()
        configs = make_configs("LSH_ps1", 3, max_updates=10)
        serial = [run_once(problem, COST, c) for c in configs]
        cohort = run_cohort(problem, COST, configs)
        for s, c in zip(serial, cohort):
            for key in ("pool_hits", "pool_misses", "pool_trimmed"):
                assert s.metrics[key] == c.metrics[key], key

    def test_multi_grad_harvest_stacks_beyond_k(self, monkeypatch):
        """With m workers whose compute windows overlap, rounds harvest
        close to K*m gradients, not K."""
        problem = tiny_mlp_problem()
        configs = make_configs("LSH_ps1", 4, m=4, max_updates=30)
        group_sizes: list[int] = []
        orig = ReplicaKernel.execute

        def spy(self, gcs):
            group_sizes.append(len(gcs))
            return orig(self, gcs)

        monkeypatch.setattr(ReplicaKernel, "execute", spy)
        run_cohort(problem, COST, configs)
        assert group_sizes, "kernel never invoked"
        assert max(group_sizes) > len(configs)


# ---------------------------------------------------------------------------
class TestSchedulerCohortMode:
    """The deferred-harvest machinery at the scheduler level."""

    @staticmethod
    def _grad_body(thread, log, name, steps=2, deferrable=True):
        theta = np.zeros(1)
        out = np.zeros(1)

        def body():
            for i in range(steps):
                yield GradCompute(
                    lambda th, o, name=name, i=i: log.append((name, i)),
                    theta, out, 1.0, deferrable=deferrable,
                )
                yield 0.5
        return body()

    def _scheduler(self):
        return Scheduler(
            np.random.default_rng(0), SchedulerConfig(jitter_sigma=0.0,
                                                      speed_spread_sigma=0.0)
        )

    def test_deferrable_requests_harvest_together(self):
        log: list = []
        s = self._scheduler()
        s.enable_cohort_mode()
        for name in ("a", "b"):
            s.spawn(name, lambda t, n=name: self._grad_body(t, log, n))
        s.run()
        # Both workers' first gradients parked before either executed.
        assert [r.fn is not None for _t, r in s.pending_grads] == [True, True]
        assert log == []

    def test_resume_after_grads_continues_run(self):
        log: list = []
        s = self._scheduler()
        s.enable_cohort_mode()
        for name in ("a", "b"):
            s.spawn(name, lambda t, n=name: self._grad_body(t, log, n))
        while True:
            s.run()
            pending = s.pending_grads
            if not pending:
                break
            for _thread, request in pending:
                request.execute()
            s.resume_after_grads()
        assert sorted(log) == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_non_deferrable_pauses_immediately(self):
        log: list = []
        s = self._scheduler()
        s.enable_cohort_mode()
        for name in ("a", "b"):
            s.spawn(
                name, lambda t, n=name: self._grad_body(t, log, n, deferrable=False)
            )
        s.run()
        # The loop pauses at the first non-deferrable request: exactly
        # one parked, the other worker untouched.
        assert len(s.pending_grads) == 1

    def test_serial_mode_ignores_deferrable(self):
        log: list = []
        s = self._scheduler()  # cohort mode NOT enabled
        s.spawn("a", lambda t: self._grad_body(t, log, "a"))
        s.run()
        assert log == [("a", 0), ("a", 1)]

    def test_resume_without_pending_raises(self):
        s = self._scheduler()
        s.enable_cohort_mode()
        with pytest.raises(SimulationError):
            s.resume_after_grads()

    def test_discard_pending_grads(self):
        log: list = []
        s = self._scheduler()
        s.enable_cohort_mode()
        s.spawn("a", lambda t: self._grad_body(t, log, "a", steps=1))
        s.run()
        assert s.pending_grads
        s.discard_pending_grads()
        assert not s.pending_grads
        s.run()  # continuation proceeds; the dropped fn never ran
        assert log == []


# ---------------------------------------------------------------------------
class TestStackedConvPool:
    """Kernel-level bitwise identity of the stacked Conv2D/MaxPool2D
    path (the sim-level matrix above covers it end-to-end; these pin
    the gradient *bytes* at the kernel boundary)."""

    def _stacked_vs_serial(self, problem, k: int):
        tasks = [
            problem.make_grad_task(np.random.default_rng(100 + r)) for r in range(k)
        ]
        kernel = ReplicaKernel.build(
            problem.make_grad_task(np.random.default_rng(0)), max(k, 2)
        )
        assert kernel is not None
        theta_rng = np.random.default_rng(7)
        thetas = [problem.init_theta(theta_rng) for _ in range(k)]
        outs = [np.empty_like(t) for t in thetas]
        kernel.execute(
            [
                GradCompute(t.run, th, o, 1.0, t)
                for t, th, o in zip(tasks, thetas, outs)
            ]
        )
        for r in range(k):
            # Fresh same-seeded task: replays replica r's batch draw.
            ref_task = problem.make_grad_task(np.random.default_rng(100 + r))
            ref = np.empty_like(thetas[r])
            ref_task.run(thetas[r], ref)
            np.testing.assert_array_equal(outs[r], ref)

    @pytest.mark.parametrize("k", [1, 3, 11])
    def test_conv_backward_bitwise_vs_serial(self, k):
        self._stacked_vs_serial(tiny_cnn_problem(), k)

    @pytest.mark.parametrize("k", [3, 11])
    def test_maxpool_tie_breaking_is_deterministic(self, k):
        """Heavily tied pool windows (quantized values, signed zeros):
        the stacked argmax must pick the same element per replica as
        the serial layer, or backward routing silently drifts."""
        rng = np.random.default_rng(44)
        net = Network(
            [Conv2D(2, (2, 2)), ReLU(), MaxPool2D((2, 2)), Flatten(), Dense(3)],
            input_shape=(1, 7, 7),
            name="tied_pool",
        )
        # Three distinct levels -> nearly every 2x2 window has a tie.
        x = (rng.integers(0, 3, size=(48, 1, 7, 7)) / 2.0).astype(np.float32)
        x[x == 0.0] = -0.0  # exercise the -0.0 / +0.0 tie path too
        y = rng.integers(0, 3, size=48)
        problem = DLProblem(net, x, y, x[:12], y[:12], batch_size=4, dtype=np.float32)
        self._stacked_vs_serial(problem, k)


# ---------------------------------------------------------------------------
class TestGridColumnCohorts:
    """One merged η-column super-cohort == its per-box cohorts == the
    serial runs (Level 2 of the conv-stacking issue)."""

    def test_merged_eta_column_matches_per_box(self):
        problem = tiny_mlp_problem()
        etas = (0.02, 0.05, 0.1)
        merged_configs = []
        for eta in etas:
            merged_configs.extend(make_configs("LSH_ps1", 2, eta=eta))
        serial = [identity_of(run_once(problem, COST, c)) for c in merged_configs]
        per_box = []
        for eta in etas:
            per_box.extend(
                identity_of(r)
                for r in run_cohort(problem, COST, make_configs("LSH_ps1", 2, eta=eta))
            )
        merged = [identity_of(r) for r in run_cohort(problem, COST, merged_configs)]
        assert merged == serial
        assert merged == per_box

    def test_merged_column_with_stop_and_diverge(self):
        """A merged column whose replicas exit at different times — one
        early-stopped, two destroyed by a destructive η — still
        reproduces every serial outcome."""
        problem = tiny_mlp_problem()
        configs = make_configs("LSH_ps1", 2, eta=0.05)
        configs[1] = replace(
            configs[1], max_updates=6, eval_interval=(COST.tc + COST.tu) / 2
        )
        # Destructive η with a finite virtual-time budget: the loss goes
        # non-finite, the target is never reached, the budget runs out —
        # the paper's DIVERGE outcome.
        configs += [
            replace(c, max_virtual_time=1.0)
            for c in make_configs("LSH_ps1", 2, eta=60.0, max_updates=100_000)
        ]
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        merged = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert merged == serial
        assert len({s[3] for s in serial}) > 1  # genuinely mixed outcomes

    def test_cnn_eta_column(self):
        problem = tiny_cnn_problem()
        configs = make_configs("ASYNC", 2, eta=0.05, max_updates=8) + make_configs(
            "ASYNC", 2, eta=0.1, max_updates=8
        )
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        merged = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert merged == serial


# ---------------------------------------------------------------------------
class TestKernelFallbackEvents:
    """De-vectorizations are observable; fully-stacked runs stay silent."""

    @pytest.mark.parametrize("make_problem", [tiny_mlp_problem, tiny_cnn_problem])
    def test_stock_architectures_never_fall_back(self, make_problem):
        problem = make_problem()
        configs = make_configs("LSH_ps1", 3, max_updates=10)
        for result in run_cohort(problem, COST, configs):
            assert result.metrics["kernel_fallbacks"] == 0

    def test_dtype_mismatch_cohort_counts_fallbacks(self):
        rng = np.random.default_rng(0)
        net = mlp_custom(6, (5,), 3)
        x = rng.normal(size=(32, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=32)
        # float64 workspace over a float32 corpus: build declines, the
        # cohort runs serially and reports every de-vectorized request.
        problem = DLProblem(net, x, y, x[:8], y[:8], batch_size=4, dtype=np.float64)
        configs = make_configs("LSH_ps1", 3, max_updates=10)
        results = run_cohort(problem, COST, configs)
        assert all(r.metrics["kernel_fallbacks"] > 0 for r in results)
        # ... while the serial path never emits any.
        serial = run_once(problem, COST, configs[0])
        assert serial.metrics["kernel_fallbacks"] == 0
        assert identity_of(serial) == identity_of(results[0])


# ---------------------------------------------------------------------------
class TestReplicaKernelBuild:
    def _task(self, problem):
        task = problem.make_grad_task(np.random.default_rng(0))
        assert task is not None
        return task

    def test_builds_for_supported_mlp(self):
        task = self._task(tiny_mlp_problem())
        kernel = ReplicaKernel.build(task, 4)
        assert kernel is not None
        assert kernel.kmax == 4

    def test_kmax_below_two_unsupported(self):
        task = self._task(tiny_mlp_problem())
        assert ReplicaKernel.build(task, 1) is None

    def test_dtype_mismatch_unsupported(self):
        rng = np.random.default_rng(0)
        net = mlp_custom(6, (5,), 3)
        x = rng.normal(size=(32, 6)).astype(np.float32)
        y = rng.integers(0, 3, size=32)
        # float64 workspace over a float32 corpus: the serial path would
        # convert-copy, so stacking is declined.
        problem = DLProblem(net, x, y, x[:8], y[:8], batch_size=4, dtype=np.float64)
        task = self._task(problem)
        assert ReplicaKernel.build(task, 4) is None
        assert ReplicaKernel.reject_reason(task) == "dtype"
        assert task.kernel_fallback_kind() == "dtype"

    def test_supported_networks_have_no_reject_reason(self):
        for make_problem in (tiny_mlp_problem, tiny_cnn_problem):
            assert ReplicaKernel.reject_reason(self._task(make_problem())) is None

    def test_singleton_group_falls_back_serially(self):
        problem = tiny_mlp_problem()
        task = self._task(problem)
        kernel = ReplicaKernel.build(task, 4)
        theta = problem.init_theta(np.random.default_rng(1))
        out = np.empty_like(theta)
        ref = np.empty_like(theta)
        gc = GradCompute(task.run, theta, out, 1.0, task)
        kernel.execute([gc])
        # Same RNG position -> same batch: fresh task, serial execution.
        task2 = problem.make_grad_task(np.random.default_rng(0))
        task2.run(theta, ref)
        np.testing.assert_array_equal(out, ref)


# ---------------------------------------------------------------------------
class TestLockstepCohort:
    def test_round_counters(self):
        problem = tiny_mlp_problem()
        configs = make_configs("LSH_ps1", 3, max_updates=12)
        from repro.harness.runner import _prepare_run

        prepared = [_prepare_run(problem, COST, c) for c in configs]
        cohort = LockstepCohort([p.scheduler for p in prepared])
        cohort.run()
        assert cohort.rounds > 0
        assert cohort.stacked_calls > 0
        for p in prepared:
            p.scheduler.close()

    def test_closure_only_gradients_execute_serially(self):
        """Cohort mode with tasks that cannot stack (QuadraticProblem
        has no grad task) still runs correctly — requests execute
        one-by-one inside each round."""
        from repro.core.problem import QuadraticProblem

        problem = QuadraticProblem(16, h=1.0, b=1.0, noise_sigma=0.05)
        base = RunConfig(
            algorithm="LSH_ps1", m=2, eta=0.05, seed=3, epsilons=(0.5,),
            max_updates=40, max_virtual_time=30.0,
        )
        configs = repeated_configs(base, repeats=3)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        cohort = [identity_of(r) for r in run_cohort(problem, COST, configs)]
        assert serial == cohort
