"""Tests for the memory accountant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryAccountingError
from repro.sim.memory import MemoryAccountant


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def acct(clock):
    return MemoryAccountant(clock)


class TestAllocationFree:
    def test_allocate_tracks_live(self, acct):
        bid = acct.allocate("pv", 100)
        assert acct.live_bytes == 100 and acct.live_count == 1
        assert acct.is_live(bid)

    def test_free_releases(self, acct):
        bid = acct.allocate("pv", 100)
        acct.free(bid)
        assert acct.live_bytes == 0 and acct.live_count == 0
        assert not acct.is_live(bid)

    def test_double_free_raises(self, acct):
        bid = acct.allocate("pv", 10)
        acct.free(bid)
        with pytest.raises(MemoryAccountingError):
            acct.free(bid)

    def test_free_unknown_raises(self, acct):
        with pytest.raises(MemoryAccountingError):
            acct.free(12345)

    def test_negative_size_rejected(self, acct):
        with pytest.raises(MemoryAccountingError):
            acct.allocate("pv", -1)

    def test_peaks_track_maximum(self, acct):
        ids = [acct.allocate("pv", 50) for _ in range(4)]
        for bid in ids[:3]:
            acct.free(bid)
        acct.allocate("pv", 10)
        assert acct.peak_bytes == 200
        assert acct.peak_count == 4

    def test_live_count_by_tag(self, acct):
        acct.allocate("a", 1)
        acct.allocate("a", 1)
        b = acct.allocate("b", 1)
        acct.free(b)
        assert acct.live_count_by_tag("a") == 2
        assert acct.live_count_by_tag("b") == 0

    def test_history_records_lifetimes(self, acct, clock):
        bid = acct.allocate("pv", 64)
        clock.t = 2.0
        acct.free(bid)
        (record,) = acct.history
        assert record.allocated_at == 0.0
        assert record.freed_at == 2.0
        assert record.nbytes == 64 and record.tag == "pv"


class TestTimeline:
    def test_empty_timeline(self, acct):
        t, b, c = acct.timeline()
        assert t.size == b.size == c.size == 0

    def test_step_function_sampling(self, acct, clock):
        acct.allocate("pv", 100)
        clock.t = 10.0
        bid = acct.allocate("pv", 100)
        clock.t = 20.0
        acct.free(bid)
        clock.t = 30.0
        t, b, c = acct.timeline(resolution=31)
        # before second alloc: 100 bytes; mid: 200; after free: 100.
        assert b[np.searchsorted(t, 5.0)] == 100
        assert b[np.searchsorted(t, 15.0)] == 200
        assert b[-1] == 100
        assert c[-1] == 1

    def test_mean_live_bytes(self, acct, clock):
        bid = acct.allocate("pv", 100)
        clock.t = 10.0
        acct.free(bid)
        clock.t = 20.0
        # 100 bytes for 10s out of 20s -> mean 50.
        assert acct.mean_live_bytes() == pytest.approx(50.0)

    def test_mean_live_bytes_empty(self, acct):
        assert acct.mean_live_bytes() == 0.0


class TestPoolTrimAccounting:
    def test_record_pool_trim_tallies(self, acct):
        acct.record_pool_trim(3)
        acct.record_pool_trim(2)
        assert acct.pool_trimmed == 5

    def test_zero_is_fine(self, acct):
        acct.record_pool_trim(0)
        assert acct.pool_trimmed == 0

    def test_negative_rejected(self, acct):
        with pytest.raises(MemoryAccountingError):
            acct.record_pool_trim(-1)
