"""Tests for the virtual clock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(3.5).now == 3.5

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_backwards_rejected(self):
        clock = VirtualClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.999)
