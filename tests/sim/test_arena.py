"""BufferArena: pooled payload recycling and its safety story.

The pool must be invisible to the algorithms (same buffers round-trip,
same results bit for bit) while keeping the use-after-free detection of
Algorithm 1's reclamation scheme fully intact — including the one
hazard reclamation cannot catch (a raw alias captured before release),
which poison mode turns into loud NaN propagation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.memory_model import baseline_instances, leashed_max_instances
from repro.core.parameter_vector import ParameterVector
from repro.errors import SimulationError
from repro.sim.arena import BufferArena
from repro.sim.memory import MemoryAccountant

from tests.core.conftest import run_algorithm


class TestFreeList:
    def test_round_trip_returns_same_buffer(self):
        arena = BufferArena()
        buf = arena.acquire(64)
        buf[...] = 7.0
        arena.release(buf)
        again = arena.acquire(64)
        assert again is buf  # recycled, not reallocated

    def test_keyed_by_size_and_dtype(self):
        arena = BufferArena()
        b32 = arena.acquire(64, np.float32)
        arena.release(b32)
        assert arena.acquire(64, np.float64) is not b32
        assert arena.acquire(128, np.float32) is not b32
        assert arena.acquire(64, np.float32) is b32

    def test_lifo_reuse_order(self):
        arena = BufferArena()
        a, b = arena.acquire(16), arena.acquire(16)
        arena.release(a)
        arena.release(b)
        assert arena.acquire(16) is b  # most recently released first

    def test_hit_miss_accounting(self):
        arena = BufferArena()
        buf = arena.acquire(32)
        assert (arena.hits, arena.misses) == (0, 1)
        arena.release(buf)
        arena.acquire(32)
        assert (arena.hits, arena.misses) == (1, 1)
        assert arena.hit_rate == 0.5
        stats = arena.stats()
        assert stats["released"] == 1 and stats["parked"] == 0

    def test_max_per_key_drops_excess(self):
        arena = BufferArena(max_per_key=1)
        a, b = arena.acquire(16), arena.acquire(16)
        arena.release(a)
        arena.release(b)
        assert arena.parked == 1
        assert arena.dropped == 1

    def test_clear_drops_parked(self):
        arena = BufferArena()
        arena.release(arena.acquire(16))
        arena.clear()
        assert arena.parked == 0
        assert arena.acquire(16) is not None
        assert arena.misses == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(SimulationError):
            BufferArena().acquire(0)

    def test_non_flat_release_rejected(self):
        with pytest.raises(SimulationError):
            BufferArena().release(np.zeros((2, 2), dtype=np.float32))

    def test_negative_cap_rejected(self):
        with pytest.raises(SimulationError):
            BufferArena(max_per_key=-1)


class TestPoisonMode:
    def test_released_float_buffer_is_nan_filled(self):
        arena = BufferArena(poison=True)
        buf = arena.acquire(32)
        buf[...] = 1.0
        arena.release(buf)
        assert np.isnan(buf).all()

    def test_poison_catches_stale_alias_use_after_free(self):
        """The hazard _require_live cannot see: a raw ``pv.theta`` alias
        captured before reclamation. Without poisoning, the consumer
        silently computes on recycled data; with it, the result is NaN
        and the convergence monitoring fails loudly."""
        arena = BufferArena(poison=True)
        pv = ParameterVector(8, tag="published", arena=arena)
        pv.theta[...] = 3.0
        alias = pv.theta  # simulated bug: kept past the read protocol
        pv.stale_flag = True
        assert pv.safe_delete()
        assert not np.isfinite(alias @ alias)  # loud, not silent

    def test_without_poison_stale_alias_reads_recycled_data(self):
        # Documents exactly what poison mode exists to expose.
        arena = BufferArena(poison=False)
        pv = ParameterVector(8, tag="published", arena=arena)
        pv.theta[...] = 3.0
        alias = pv.theta
        pv.stale_flag = True
        assert pv.safe_delete()
        assert np.isfinite(alias).all()


class TestParameterVectorIntegration:
    def test_release_returns_payload_to_pool(self):
        arena = BufferArena()
        pv = ParameterVector(16, tag="published", arena=arena)
        buf = pv.theta
        pv.stale_flag = True
        assert pv.safe_delete()
        assert pv.theta is None
        assert ParameterVector(16, arena=arena).theta is buf

    def test_use_after_free_still_raises_with_arena(self):
        arena = BufferArena()
        pv = ParameterVector(16, tag="published", arena=arena)
        pv.stale_flag = True
        pv.safe_delete()
        with pytest.raises(SimulationError, match="reclaimed"):
            pv.update(np.zeros(16, dtype=np.float32), 0.1)

    def test_zero_init_from_recycled_buffer(self):
        arena = BufferArena()
        dirty = arena.acquire(16)
        dirty[...] = 42.0
        arena.release(dirty)
        pv = ParameterVector(16, arena=arena, zero_init=True)
        assert pv.theta is dirty
        assert not pv.theta.any()

    def test_pool_tally_reaches_accountant(self):
        arena = BufferArena()
        memory = MemoryAccountant(lambda: 0.0)
        first = ParameterVector(16, memory=memory, arena=arena)
        first.stale_flag = True
        first.safe_delete()  # frees the block and parks the payload
        ParameterVector(16, memory=memory, arena=arena)
        assert memory.pool_misses == 1
        assert memory.pool_hits == 1
        assert memory.pool_hit_rate == 0.5


class TestLemma2WithPooling:
    """Recycling payloads must not loosen the live-instance bounds: the
    accountant counts *simulated* instances, pool hit or not."""

    @pytest.mark.parametrize("m", [4, 8])
    def test_leashed_within_lemma2_bound_pooled(self, m):
        execution = run_algorithm("LSH_psinf", m=m, arena=BufferArena())
        assert execution.memory.peak_count <= leashed_max_instances(m) + 1

    def test_baselines_hold_exactly_2m_plus_1_pooled(self):
        execution = run_algorithm("ASYNC", m=4, arena=BufferArena())
        assert execution.memory.peak_count == baseline_instances(4)
        assert execution.memory.live_count == baseline_instances(4)

    def test_steady_state_is_allocation_free(self):
        arena = BufferArena()
        execution = run_algorithm("LSH_psinf", m=4, arena=arena)
        # Publications dominate acquisitions; after warm-up every one is
        # served from the pool, so misses stay at the warm-up scale
        # while hits scale with updates.
        assert execution.memory.pool_hits > execution.trace.n_updates / 2
        assert execution.memory.pool_misses <= leashed_max_instances(4) + 8

    def test_arena_on_off_bitwise_identical(self):
        on = run_algorithm("LSH_psinf", m=4, seed=11, arena=BufferArena())
        off = run_algorithm("LSH_psinf", m=4, seed=11, arena=None)
        np.testing.assert_array_equal(on.final_theta(), off.final_theta())
        assert on.trace.n_updates == off.trace.n_updates
        np.testing.assert_array_equal(
            on.trace.staleness_values(), off.trace.staleness_values()
        )

    def test_poison_mode_does_not_perturb_results(self):
        # Poison only writes to buffers *after* release; live data and
        # therefore the training trajectory are untouched.
        plain = run_algorithm("LSH_ps1", m=4, seed=23, arena=BufferArena())
        poisoned = run_algorithm(
            "LSH_ps1", m=4, seed=23, arena=BufferArena(poison=True)
        )
        np.testing.assert_array_equal(plain.final_theta(), poisoned.final_theta())
        assert np.isfinite(plain.final_theta()).all()


class TestTrim:
    def test_trim_drops_parked_buffers(self):
        arena = BufferArena()
        bufs = [arena.acquire(64) for _ in range(4)]
        for buf in bufs:
            arena.release(buf)
        assert arena.parked == 4
        assert arena.trim() == 4
        assert arena.parked == 0
        assert arena.trimmed == 4

    def test_keep_per_key_bounds_each_free_list(self):
        arena = BufferArena()
        for size in (32, 64):
            bufs = [arena.acquire(size) for _ in range(3)]
            for buf in bufs:
                arena.release(buf)
        assert arena.trim(keep_per_key=1) == 4
        assert arena.parked == 2

    def test_trim_empty_arena_is_noop(self):
        arena = BufferArena()
        assert arena.trim() == 0
        assert arena.trimmed == 0

    def test_negative_keep_rejected(self):
        with pytest.raises(SimulationError):
            BufferArena().trim(keep_per_key=-1)

    def test_trim_counts_in_stats(self):
        arena = BufferArena()
        arena.release(arena.acquire(16))
        arena.trim()
        assert arena.stats()["trimmed"] == 1

    def test_trimmed_keys_reallocate_fresh(self):
        arena = BufferArena()
        buf = arena.acquire(16)
        arena.release(buf)
        arena.trim()
        again = arena.acquire(16)
        assert again is not buf  # the parked buffer really was dropped
        assert arena.misses == 2

    def test_clear_is_unaccounted(self):
        arena = BufferArena()
        arena.release(arena.acquire(16))
        arena.clear()
        assert arena.parked == 0
        assert arena.trimmed == 0
