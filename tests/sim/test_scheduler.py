"""Tests for the discrete-event scheduler: determinism, time ordering,
lock hand-off, jitter, deadlock and runaway detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.sync import SimLock
from repro.sim.thread import ThreadState
from repro.utils.rng import RngFactory


def make_scheduler(seed=1, **kwargs) -> Scheduler:
    cfg = SchedulerConfig(**kwargs) if kwargs else SchedulerConfig(jitter_sigma=0.0, speed_spread_sigma=0.0)
    return Scheduler(RngFactory(seed).named("sched"), cfg)


class TestSchedulerBasics:
    def test_single_thread_runs_to_completion(self):
        sched = make_scheduler()
        trace = []

        def body(thread):
            def gen():
                for i in range(3):
                    trace.append((sched.now, i))
                    yield 1.0
            return gen()

        t = sched.spawn("w", body)
        sched.run()
        assert t.state is ThreadState.FINISHED
        assert [i for _, i in trace] == [0, 1, 2]
        assert sched.now == pytest.approx(3.0)

    def test_time_monotone_across_threads(self):
        sched = make_scheduler()
        times = []

        def body(thread):
            def gen():
                for _ in range(10):
                    times.append(sched.now)
                    yield 0.1 * (1 + thread.tid)
            return gen()

        for i in range(3):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert times == sorted(times)

    def test_atomicity_between_yields(self):
        # Increments without a yield in between can never interleave.
        sched = make_scheduler()
        shared = {"value": 0, "max_seen": 0}

        def body(thread):
            def gen():
                for _ in range(50):
                    local = shared["value"]
                    shared["value"] = local + 1  # atomic: no yield inside
                    yield 0.01
            return gen()

        for i in range(4):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert shared["value"] == 200  # no lost updates without preemption

    def test_deterministic_given_seed(self):
        def run_once(seed):
            sched = make_scheduler(seed=seed, jitter_sigma=0.2, speed_spread_sigma=0.1)
            order = []

            def body(thread):
                def gen():
                    for _ in range(5):
                        order.append(thread.tid)
                        yield 0.5
                return gen()

            for i in range(4):
                sched.spawn(f"w{i}", body)
            sched.run()
            return order, sched.now

        a = run_once(7)
        b = run_once(7)
        c = run_once(8)
        assert a == b
        assert a != c  # different seed: different interleaving (w.h.p.)

    def test_negative_yield_rejected(self):
        sched = make_scheduler()

        def body(thread):
            def gen():
                yield -1.0
            return gen()

        sched.spawn("w", body)
        with pytest.raises(SimulationError):
            sched.run()

    def test_unsupported_yield_rejected(self):
        sched = make_scheduler()

        def body(thread):
            def gen():
                yield "nope"
            return gen()

        sched.spawn("w", body)
        with pytest.raises(SimulationError):
            sched.run()

    def test_stop_halts_promptly(self):
        sched = make_scheduler()
        count = [0]

        def body(thread):
            def gen():
                while True:
                    count[0] += 1
                    if count[0] >= 10:
                        sched.stop()
                    yield 1.0
            return gen()

        sched.spawn("w", body)
        sched.run()
        assert sched.stopped
        assert count[0] == 10

    def test_run_until_pauses_and_resumes(self):
        sched = make_scheduler()
        ticks = []

        def body(thread):
            def gen():
                for _ in range(10):
                    ticks.append(sched.now)
                    yield 1.0
            return gen()

        sched.spawn("w", body)
        sched.run(until=4.5)
        assert sched.now == pytest.approx(4.5)
        n_before = len(ticks)
        sched.run()
        assert len(ticks) == 10 > n_before

    def test_max_events_guard(self):
        sched = Scheduler(
            RngFactory(1).named("s"),
            SchedulerConfig(jitter_sigma=0.0, speed_spread_sigma=0.0, max_events=50),
        )

        def body(thread):
            def gen():
                while True:
                    yield 0.001
            return gen()

        sched.spawn("w", body)
        with pytest.raises(SimulationError, match="max_events"):
            sched.run()


class TestSchedulerJitter:
    def test_zero_jitter_exact_durations(self):
        sched = make_scheduler()

        def body(thread):
            def gen():
                yield 2.0
                yield 3.0
            return gen()

        sched.spawn("w", body)
        sched.run()
        assert sched.now == pytest.approx(5.0)

    def test_jitter_perturbs_durations(self):
        sched = make_scheduler(seed=3, jitter_sigma=0.3, speed_spread_sigma=0.0)

        def body(thread):
            def gen():
                for _ in range(20):
                    yield 1.0
            return gen()

        sched.spawn("w", body)
        sched.run()
        assert sched.now != pytest.approx(20.0)
        assert 10.0 < sched.now < 40.0  # lognormal stays in a sane band

    def test_speed_spread_differentiates_threads(self):
        sched = make_scheduler(seed=5, jitter_sigma=0.0, speed_spread_sigma=0.3)
        finish = {}

        def body(thread):
            def gen():
                for _ in range(10):
                    yield 1.0
                finish[thread.tid] = sched.now
            return gen()

        for i in range(4):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert len(set(finish.values())) > 1

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SchedulerConfig(jitter_sigma=-0.1)
        with pytest.raises(SimulationError):
            SchedulerConfig(speed_spread_sigma=-0.1)
        with pytest.raises(SimulationError):
            SchedulerConfig(max_events=0)


class TestSchedulerLocks:
    def test_mutual_exclusion(self):
        sched = make_scheduler()
        lock = SimLock("l", acquire_cost=0.0)
        in_cs = [0]
        max_in_cs = [0]

        def body(thread):
            def gen():
                for _ in range(5):
                    yield lock.acquire()
                    in_cs[0] += 1
                    max_in_cs[0] = max(max_in_cs[0], in_cs[0])
                    yield 0.1  # hold the lock across a preemption point
                    in_cs[0] -= 1
                    lock.release(thread)
                    yield 0.05
            return gen()

        for i in range(4):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert max_in_cs[0] == 1

    def test_fifo_handoff(self):
        sched = make_scheduler()
        lock = SimLock("l")
        grants = []

        def body(thread):
            def gen():
                yield 0.001 * thread.tid  # stagger arrival
                yield lock.acquire()
                grants.append(thread.tid)
                yield 1.0
                lock.release(thread)
            return gen()

        for i in range(4):
            sched.spawn(f"w{i}", body)
        sched.run()
        assert grants == [0, 1, 2, 3]

    def test_deadlock_detected(self):
        sched = make_scheduler()
        lock = SimLock("l")

        def holder(thread):
            def gen():
                yield lock.acquire()
                # never releases, finishes while holding
                yield 0.1
            return gen()

        def waiter(thread):
            def gen():
                yield 0.01
                yield lock.acquire()
                lock.release(thread)
            return gen()

        sched.spawn("holder", holder)
        sched.spawn("waiter", waiter)
        with pytest.raises(DeadlockError):
            sched.run()

    def test_acquire_cost_charged(self):
        sched = make_scheduler()
        lock = SimLock("l", acquire_cost=0.25)

        def body(thread):
            def gen():
                yield lock.acquire()
                lock.release(thread)
            return gen()

        sched.spawn("w", body)
        sched.run()
        assert sched.now == pytest.approx(0.25)


class TestSchedulerClose:
    def test_close_aborts_live_bodies(self):
        sched = make_scheduler()

        def body(thread):
            def gen():
                while True:
                    yield 1.0
            return gen()

        t = sched.spawn("w", body)
        sched.run(until=5.0)
        sched.close()
        assert t.state is ThreadState.FINISHED
