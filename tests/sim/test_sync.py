"""Tests for simulated atomics and the mutex."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.sync import AcquireRequest, AtomicCounter, AtomicFlag, AtomicRef, SimLock
from repro.sim.thread import SimThread


def _dummy_thread(name="t"):
    def gen():
        yield 0.0

    return SimThread(name, 0, gen())


class TestAtomicCounter:
    def test_initial_and_load(self):
        assert AtomicCounter(5).load() == 5

    def test_fetch_add_returns_previous(self):
        c = AtomicCounter(10)
        assert c.fetch_add(3) == 10
        assert c.load() == 13

    def test_negative_delta(self):
        c = AtomicCounter(2)
        c.fetch_add(-2)
        assert c.load() == 0

    def test_store(self):
        c = AtomicCounter()
        c.store(9)
        assert c.load() == 9


class TestAtomicRef:
    def test_load_store(self):
        r = AtomicRef("a")
        assert r.load() == "a"
        r.store("b")
        assert r.load() == "b"

    def test_cas_success(self):
        obj1, obj2 = object(), object()
        r = AtomicRef(obj1)
        assert r.compare_and_swap(obj1, obj2)
        assert r.load() is obj2

    def test_cas_failure_leaves_value(self):
        obj1, obj2, obj3 = object(), object(), object()
        r = AtomicRef(obj1)
        assert not r.compare_and_swap(obj2, obj3)
        assert r.load() is obj1

    def test_cas_is_identity_not_equality(self):
        a, b = [1], [1]  # equal but distinct
        r = AtomicRef(a)
        assert not r.compare_and_swap(b, None)

    def test_cas_none_initial(self):
        r = AtomicRef(None)
        sentinel = object()
        assert r.compare_and_swap(None, sentinel)
        assert r.load() is sentinel


class TestAtomicFlag:
    def test_test_and_set_claims_once(self):
        f = AtomicFlag()
        assert f.test_and_set() is True
        assert f.test_and_set() is False
        assert f.load() is True

    def test_initially_set(self):
        f = AtomicFlag(True)
        assert f.test_and_set() is False

    def test_store(self):
        f = AtomicFlag(True)
        f.store(False)
        assert f.load() is False


class TestSimLock:
    def test_acquire_builds_request(self):
        lock = SimLock("l")
        req = lock.acquire()
        assert isinstance(req, AcquireRequest) and req.lock is lock

    def test_uncontended_grant(self):
        lock = SimLock("l")
        t = _dummy_thread()
        assert lock._on_acquire(t, scheduler=None) is True
        assert lock.owner is t

    def test_contended_parks(self):
        lock = SimLock("l")
        t1, t2 = _dummy_thread("a"), _dummy_thread("b")
        lock._on_acquire(t1, None)
        assert lock._on_acquire(t2, None) is False
        assert lock.n_waiters == 1

    def test_release_by_non_owner_raises(self):
        lock = SimLock("l")
        t1, t2 = _dummy_thread("a"), _dummy_thread("b")
        lock._on_acquire(t1, None)
        with pytest.raises(SimulationError):
            lock.release(t2)

    def test_release_with_no_waiters_frees(self):
        lock = SimLock("l")
        t = _dummy_thread()
        lock._on_acquire(t, None)
        lock.release(t)
        assert lock.owner is None

    def test_release_with_waiter_but_no_scheduler_raises(self):
        lock = SimLock("l")
        t1, t2 = _dummy_thread("a"), _dummy_thread("b")
        lock._on_acquire(t1, None)
        lock._on_acquire(t2, None)
        with pytest.raises(SimulationError):
            lock.release(t1)

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            SimLock("l", acquire_cost=-1e-9)
