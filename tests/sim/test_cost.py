"""Tests for the cost model and its calibration path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.cost import CostModel, calibrate_cost_model


class TestCostModel:
    def test_ratio(self):
        cm = CostModel(tc=10.0, tu=2.0, t_copy=1.0)
        assert cm.ratio == pytest.approx(5.0)

    @pytest.mark.parametrize("field,value", [("tc", 0), ("tu", -1), ("t_copy", -0.1)])
    def test_invalid_durations(self, field, value):
        kwargs = dict(tc=1.0, tu=1.0, t_copy=0.1)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            CostModel(**kwargs)

    def test_invalid_chunks(self):
        with pytest.raises(ConfigurationError):
            CostModel(tc=1, tu=1, t_copy=0, n_chunks=0)

    def test_with_chunks(self):
        cm = CostModel(tc=1, tu=1, t_copy=0).with_chunks(4)
        assert cm.n_chunks == 4

    def test_scaled(self):
        cm = CostModel(tc=2.0, tu=1.0, t_copy=0.5).scaled(10.0)
        assert cm.tc == pytest.approx(20.0)
        assert cm.tu == pytest.approx(10.0)
        assert cm.ratio == pytest.approx(2.0)

    def test_scaled_invalid(self):
        with pytest.raises(ConfigurationError):
            CostModel(tc=1, tu=1, t_copy=0).scaled(0)

    def test_mlp_default_regime(self):
        cm = CostModel.mlp_default()
        assert 2 <= cm.ratio <= 30  # contention-prone regime

    def test_cnn_default_regime(self):
        cm = CostModel.cnn_default()
        assert cm.ratio > CostModel.mlp_default().ratio  # compute-heavy

    def test_defaults_scale_with_dimension(self):
        small = CostModel.mlp_default(d=10_000)
        big = CostModel.mlp_default(d=100_000)
        assert big.tu > small.tu

    def test_from_ratio(self):
        cm = CostModel.from_ratio(tc=1.0, ratio=4.0)
        assert cm.ratio == pytest.approx(4.0)

    def test_frozen(self):
        cm = CostModel(tc=1, tu=1, t_copy=0)
        with pytest.raises(AttributeError):
            cm.tc = 2.0


class TestCalibration:
    def test_calibrate_produces_positive_model(self):
        theta = np.zeros(50_000)

        def grad_fn(t):
            return t * 2.0

        cm = calibrate_cost_model(grad_fn, theta, repeats=2)
        assert cm.tc > 0 and cm.tu > 0 and cm.t_copy >= 0

    def test_calibrate_orders_heavy_gradient(self):
        theta = np.zeros(20_000)

        def heavy_grad(t):
            out = t.copy()
            for _ in range(30):
                out = out * 1.0001 + 1.0
            return out

        cm = calibrate_cost_model(heavy_grad, theta, repeats=2)
        assert cm.tc > cm.tu  # gradient work dominates an axpy

    def test_calibrate_respects_chunks(self):
        cm = calibrate_cost_model(lambda t: t, np.zeros(100), repeats=1, n_chunks=7)
        assert cm.n_chunks == 7


class TestCoherencePenalty:
    def test_contended_scales_linearly_with_peers(self):
        cm = CostModel(tc=1.0, tu=1.0, t_copy=0.1, coherence_penalty=0.5)
        assert cm.contended(2.0, 0) == pytest.approx(2.0)
        assert cm.contended(2.0, 1) == pytest.approx(3.0)
        assert cm.contended(2.0, 4) == pytest.approx(6.0)

    def test_negative_peer_count_clamped(self):
        cm = CostModel(tc=1.0, tu=1.0, t_copy=0.1, coherence_penalty=0.5)
        assert cm.contended(2.0, -3) == pytest.approx(2.0)

    def test_zero_penalty_disables(self):
        cm = CostModel(tc=1.0, tu=1.0, t_copy=0.1, coherence_penalty=0.0)
        assert cm.contended(2.0, 10) == pytest.approx(2.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(tc=1.0, tu=1.0, t_copy=0.1, coherence_penalty=-0.1)
