"""Property-based tests (hypothesis) on core data structures and
simulation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dynamics import (
    fixed_point,
    fixed_point_with_persistence,
    occupancy_closed_form,
    occupancy_recurrence,
)
from repro.core.hogwild import chunk_slices
from repro.core.parameter_vector import ParameterVector
from repro.nn.loss import softmax, softmax_cross_entropy
from repro.nn.parameter import ParameterLayout
from repro.sim.memory import MemoryAccountant
from repro.sim.sync import AtomicCounter, AtomicRef
from repro.utils.tables import five_number_summary


# ----------------------------------------------------------------------
# Parameter layout
# ----------------------------------------------------------------------
@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 5), st.integers(1, 5)), min_size=1, max_size=8
    )
)
def test_layout_partitions_theta_exactly(shapes):
    """Slots tile [0, d) with no gaps or overlaps."""
    layout = ParameterLayout()
    for i, shape in enumerate(shapes):
        layout.add(f"p{i}", shape)
    covered = np.zeros(layout.total_size, dtype=int)
    for slot in layout:
        covered[slot.offset : slot.stop] += 1
    assert np.all(covered == 1)


@given(
    shapes=st.lists(st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=6),
    data=st.data(),
)
def test_layout_views_roundtrip(shapes, data):
    """Writing through views and reading back the flat vector agree."""
    layout = ParameterLayout()
    slots = [layout.add(f"p{i}", shape) for i, shape in enumerate(shapes)]
    theta = np.zeros(layout.total_size)
    for slot in slots:
        value = data.draw(st.floats(-10, 10, allow_nan=False))
        layout.view(theta, slot)[...] = value
        assert np.all(theta[slot.offset : slot.stop] == value)


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
@given(
    logits=st.lists(
        st.lists(st.floats(-50, 50, allow_nan=False), min_size=3, max_size=3),
        min_size=1,
        max_size=8,
    )
)
def test_softmax_is_distribution(logits):
    p = softmax(np.asarray(logits))
    assert np.all(p >= 0)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-9)


@given(
    logits=st.lists(
        st.lists(st.floats(-30, 30, allow_nan=False), min_size=4, max_size=4),
        min_size=1,
        max_size=6,
    ),
    data=st.data(),
)
def test_cross_entropy_nonnegative_and_grad_sums_zero(logits, data):
    arr = np.asarray(logits)
    labels = np.asarray([data.draw(st.integers(0, 3)) for _ in range(arr.shape[0])])
    loss, grad = softmax_cross_entropy(arr, labels)
    assert loss >= 0.0
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-9)


# ----------------------------------------------------------------------
# Atomics
# ----------------------------------------------------------------------
@given(deltas=st.lists(st.integers(-1000, 1000), max_size=50))
def test_atomic_counter_sums_deltas(deltas):
    c = AtomicCounter(0)
    for d in deltas:
        c.fetch_add(d)
    assert c.load() == sum(deltas)


@given(n_swaps=st.integers(0, 20))
def test_atomic_ref_cas_linearizes(n_swaps):
    """A chain of successful CASes moves through distinct objects; a CAS
    against any stale expectation fails."""
    objs = [object() for _ in range(n_swaps + 1)]
    ref = AtomicRef(objs[0])
    for i in range(n_swaps):
        assert ref.compare_and_swap(objs[i], objs[i + 1])
        if i > 0:
            assert not ref.compare_and_swap(objs[i - 1], object())
    assert ref.load() is objs[-1]


# ----------------------------------------------------------------------
# ParameterVector recycling protocol
# ----------------------------------------------------------------------
@given(
    ops=st.lists(st.sampled_from(["start", "stop", "stale", "delete"]), max_size=60)
)
def test_parameter_vector_never_double_frees(ops):
    """Under arbitrary interleavings of reader pins/unpins, staleness
    marking and delete attempts, the payload is freed at most once and
    the accountant never goes negative."""
    clock = {"t": 0.0}
    memory = MemoryAccountant(lambda: clock["t"])
    pv = ParameterVector(4, memory=memory)
    readers = 0
    for op in ops:
        clock["t"] += 1.0
        if op == "start":
            pv.start_reading()
            readers += 1
        elif op == "stop":
            if readers > 0:
                pv.stop_reading()
                readers -= 1
        elif op == "stale":
            pv.stale_flag = True
        elif op == "delete":
            pv.safe_delete()
    assert memory.live_count in (0, 1)
    if pv.is_deleted:
        assert memory.live_count == 0
    # The protocol's safety: freed only when stale and reader-free.
    if memory.live_count == 0:
        assert pv.stale_flag


@given(
    ops=st.lists(st.sampled_from(["start", "stop", "stale"]), max_size=40)
)
def test_parameter_vector_live_while_prepinned_readers_hold(ops):
    """A vector is never reclaimed while a reader that pinned it
    *before* reclamation still holds it. (A reader that pins *after*
    reclamation is the race the paper's P4 explicitly tolerates — it
    re-checks stale_flag and backs off — so it is excluded here.)"""
    pv = ParameterVector(4)
    pre_delete_readers = 0
    for op in ops:
        if op == "start":
            pv.start_reading()
            if not pv.is_deleted:
                pre_delete_readers += 1
        elif op == "stop" and pv.n_rdrs.load() > 0:
            was_deleted = pv.is_deleted
            pv.stop_reading()
            if not was_deleted and pre_delete_readers > 0:
                pre_delete_readers -= 1
        elif op == "stale":
            pv.stale_flag = True
        if pre_delete_readers > 0:
            assert not pv.is_deleted  # never reclaimed under a live pre-pin


# ----------------------------------------------------------------------
# Memory accountant
# ----------------------------------------------------------------------
@given(sizes=st.lists(st.integers(0, 10_000), max_size=30), data=st.data())
def test_accountant_balance_invariant(sizes, data):
    clock = {"t": 0.0}
    acct = MemoryAccountant(lambda: clock["t"])
    live = {}
    for size in sizes:
        clock["t"] += 1.0
        if live and data.draw(st.booleans()):
            bid = data.draw(st.sampled_from(sorted(live)))
            acct.free(bid)
            del live[bid]
        else:
            live[acct.allocate("x", size)] = size
    assert acct.live_bytes == sum(live.values())
    assert acct.live_count == len(live)
    assert acct.peak_bytes >= acct.live_bytes


# ----------------------------------------------------------------------
# Chunking
# ----------------------------------------------------------------------
@given(d=st.integers(1, 10_000), n=st.integers(1, 64))
def test_chunk_slices_tile_range(d, n):
    slices = chunk_slices(d, n)
    covered = np.zeros(d, dtype=int)
    for sl in slices:
        covered[sl] += 1
    assert np.all(covered == 1)
    assert len(slices) == min(n, d)


# ----------------------------------------------------------------------
# Analysis closed forms
# ----------------------------------------------------------------------
@given(
    m=st.integers(1, 128),
    tc=st.floats(2.1, 100.0),
    tu=st.floats(2.1, 100.0),
    n0=st.floats(0.0, 32.0),
)
@settings(max_examples=60)
def test_closed_form_equals_recurrence_everywhere(m, tc, tu, n0):
    n0 = min(n0, float(m))
    rec = occupancy_recurrence(m, tc, tu, n0=n0, steps=30)
    closed = occupancy_closed_form(m, tc, tu, np.arange(31), n0=n0)
    np.testing.assert_allclose(rec, closed, rtol=1e-8, atol=1e-10)


@given(m=st.integers(1, 128), tc=st.floats(0.1, 100.0), tu=st.floats(0.1, 100.0))
def test_fixed_point_bounds(m, tc, tu):
    n_star = fixed_point(m, tc, tu)
    assert 0 < n_star < m + 1e-9


@given(
    m=st.integers(1, 64),
    tc=st.floats(0.1, 50.0),
    tu=st.floats(0.1, 50.0),
    g1=st.floats(0.0, 10.0),
    g2=st.floats(0.0, 10.0),
)
def test_persistence_fixed_point_monotone_in_gamma(m, tc, tu, g1, g2):
    lo, hi = sorted((g1, g2))
    assert fixed_point_with_persistence(m, tc, tu, hi) <= fixed_point_with_persistence(
        m, tc, tu, lo
    ) + 1e-12


# ----------------------------------------------------------------------
# Summary statistics
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
def test_five_number_summary_ordering(values):
    s = five_number_summary(values)
    assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]
    assert s["n"] == len(values)


# ----------------------------------------------------------------------
# Scheduler invariants
# ----------------------------------------------------------------------
@given(
    workloads=st.lists(
        st.lists(st.floats(0.001, 1.0), min_size=1, max_size=6),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=40, deadline=None)
def test_scheduler_finishes_at_slowest_thread(workloads):
    """With zero jitter and uniform speeds, total virtual time equals
    the largest per-thread duration sum, and event timestamps are
    processed in nondecreasing order."""
    from repro.sim.scheduler import Scheduler, SchedulerConfig
    from repro.utils.rng import RngFactory

    sched = Scheduler(
        RngFactory(7).named("s"),
        SchedulerConfig(jitter_sigma=0.0, speed_spread_sigma=0.0),
    )
    observed = []

    def body_factory(durations):
        def factory(thread):
            def gen():
                for d in durations:
                    observed.append(sched.now)
                    yield d
            return gen()
        return factory

    for i, durations in enumerate(workloads):
        sched.spawn(f"w{i}", body_factory(durations))
    sched.run()
    assert observed == sorted(observed)
    expected = max(sum(d) for d in workloads)
    assert sched.now == pytest.approx(expected)


@given(parties=st.integers(2, 6), rounds=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_barrier_generations_count_rounds(parties, rounds):
    from repro.sim.scheduler import Scheduler, SchedulerConfig
    from repro.sim.sync import SimBarrier
    from repro.utils.rng import RngFactory

    sched = Scheduler(
        RngFactory(3).named("s"),
        SchedulerConfig(jitter_sigma=0.0, speed_spread_sigma=0.0),
    )
    barrier = SimBarrier("b", parties)

    def factory(thread):
        def gen():
            for r in range(rounds):
                yield 0.01 * (thread.tid + 1)
                yield barrier.arrive()
        return gen()

    for i in range(parties):
        sched.spawn(f"w{i}", factory)
    sched.run()
    assert barrier.generation == rounds
    assert barrier.n_waiting == 0
