"""Unit tests for the ProbeBus event layer: dispatch rebinding,
attach/detach, and the closed event vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.bus import EVENTS, ProbeBus, _noop


class Recorder:
    """Subscribes to two events, recording every call."""

    def __init__(self):
        self.published = []
        self.dropped = []

    def on_publish(self, time, thread, seq, staleness, cas_failures=0, loop_enter=float("nan")):
        self.published.append((time, thread, seq, staleness))

    def on_drop(self, time, thread, cas_failures, loop_enter=float("nan")):
        self.dropped.append((time, thread, cas_failures))


class TestDispatchRebinding:
    def test_zero_subscribers_is_noop(self):
        bus = ProbeBus()
        for event in EVENTS:
            assert getattr(bus, event) is _noop
        bus.publish(0.0, 0, 0, 0)  # no error, no effect

    def test_single_subscriber_is_the_bound_handler(self):
        bus = ProbeBus()
        rec = bus.attach(Recorder())
        # No wrapper frame: the emit attribute IS the handler.
        assert bus.publish == rec.on_publish
        bus.publish(1.0, 2, 3, 4)
        assert rec.published == [(1.0, 2, 3, 4)]

    def test_two_subscribers_fan_out_in_order(self):
        bus = ProbeBus()
        order = []
        a, b = Recorder(), Recorder()
        a.on_publish = lambda *args: order.append("a")
        b.on_publish = lambda *args: order.append("b")
        bus.attach(a)
        bus.attach(b)
        bus.publish(0.0, 0, 0, 0)
        assert order == ["a", "b"]
        assert bus.handler_count("publish") == 2

    def test_detach_restores_previous_dispatch(self):
        bus = ProbeBus()
        a = bus.attach(Recorder())
        b = bus.attach(Recorder())
        bus.detach(b)
        assert bus.publish == a.on_publish
        bus.detach(a)
        assert bus.publish is _noop

    def test_unsubscribed_events_stay_noop(self):
        bus = ProbeBus()
        bus.attach(Recorder())  # publish/drop only
        assert bus.cas_attempt is _noop
        assert bus.lock_wait is _noop


class TestAttachValidation:
    def test_attach_returns_subscriber(self):
        bus = ProbeBus()
        rec = Recorder()
        assert bus.attach(rec) is rec
        assert bus.subscribers == (rec,)

    def test_attach_handlerless_object_rejected(self):
        with pytest.raises(ConfigurationError, match="no on_<event> handler"):
            ProbeBus().attach(object())

    def test_subscribe_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown telemetry event"):
            ProbeBus().subscribe("frobnicate", lambda *a: None)

    def test_detach_never_attached_rejected(self):
        with pytest.raises(ConfigurationError, match="never attached"):
            ProbeBus().detach(Recorder())

    def test_subscribe_single_event(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe("reclaim", lambda t, tid, seq: seen.append(seq))
        bus.reclaim(0.0, 1, 7)
        assert seen == [7]


class TestEventVocabulary:
    def test_all_events_have_emit_attributes(self):
        bus = ProbeBus()
        for event in EVENTS:
            assert callable(getattr(bus, event))

    def test_vocabulary_is_closed(self):
        # The bus only accepts the documented events: the protocol
        # vocabulary plus the host-side execution events (kernel_fallback,
        # the run-cache traffic trio, and the task-queue lifecycle).
        assert set(EVENTS) == {
            "read_pinned", "grad_done", "lau_enter", "cas_attempt",
            "publish", "drop", "lock_wait", "reclaim", "view_divergence",
            "kernel_fallback", "cache_hit", "cache_miss", "cache_bypass",
            "task_enqueued", "task_leased", "task_done", "task_requeued",
        }
