"""Unit tests for the built-in Section-IV probes, driven with scripted
event streams so the measurements are pinned against hand-computed
values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dynamics import fixed_point, fixed_point_with_persistence
from repro.errors import ConfigurationError
from repro.sim.cost import CostModel
from repro.telemetry.probes import (
    PROBES,
    STANDARD_PROBES,
    CasTimelineProbe,
    OccupancyProbe,
    PhaseTimeProbe,
    Probe,
    RunInfo,
    StalenessDecompositionProbe,
    make_probe,
    register_probe,
    run_info_for,
)

from tests.conftest import make_run_config

NAN = float("nan")


def leashed_info(m=8, persistence=NAN, tc=5e-3, tu=1e-3):
    return RunInfo(
        algorithm="LSH_psinf", m=m, eta=0.05, seed=1,
        tc=tc, tu=tu, t_copy=0.5e-3, t_atomic=2.5e-8, t_alloc=2e-6,
        persistence=persistence,
    )


class TestRunInfo:
    def test_leashed_detection(self):
        assert leashed_info(persistence=float("inf")).is_leashed
        assert leashed_info(persistence=0.0).is_leashed
        assert not leashed_info(persistence=NAN).is_leashed

    def test_gamma_from_persistence(self):
        assert leashed_info(persistence=0.0).gamma == pytest.approx(1.0)
        assert leashed_info(persistence=1.0).gamma == pytest.approx(0.5)
        assert leashed_info(persistence=float("inf")).gamma == 0.0
        assert np.isnan(leashed_info(persistence=NAN).gamma)

    def test_tu_loop_includes_copy_and_atomics(self):
        info = leashed_info()
        assert info.tu_loop == pytest.approx(
            info.tu + info.t_copy + 4 * info.t_atomic
        )

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("LSH_psinf", float("inf")),
            ("LSH_ps0", 0.0),
            ("LSH_ps7", 7.0),
            ("ASYNC", NAN),
            ("HOG", NAN),
            ("SEQ", NAN),
        ],
    )
    def test_run_info_for_parses_persistence(self, name, expected):
        cost = CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3)
        info = run_info_for(
            make_run_config(algorithm=name, m=1 if name == "SEQ" else 4), cost
        )
        if np.isnan(expected):
            assert np.isnan(info.persistence)
        else:
            assert info.persistence == expected


class TestOccupancyProbe:
    def test_step_function_tracks_loop_population(self):
        p = OccupancyProbe()
        p.on_lau_enter(0.0, 0)
        p.on_lau_enter(2.0, 1)
        p.on_publish(4.0, 0, 1, 0, 0, loop_enter=0.0)
        p.on_drop(6.0, 1, 3, loop_enter=2.0)
        r = p.result()
        assert r["n_events"] == 4
        assert r["occupancy"] == [1.0, 2.0, 1.0, 0.0]
        # Half-time is t=3; the probe anchors at the first event at or
        # after it (t=4), so the window is (4, 6) with occupancy 1.
        assert r["steady_state_mean"] == pytest.approx(1.0)

    def test_non_retry_publish_ignored(self):
        # ASYNC/HOG publishes carry loop_enter=NaN and must not drive
        # the counter negative.
        p = OccupancyProbe()
        p.on_publish(1.0, 0, 1, 0)           # default loop_enter=NaN
        p.on_publish(2.0, 1, 2, 1, 0, NAN)
        assert p.result()["occupancy"] == []

    def test_predictions_for_leashed(self):
        p = OccupancyProbe()
        info = leashed_info(m=8, persistence=1.0)
        p.bind(info)
        r = p.result()
        assert r["n_star"] == pytest.approx(fixed_point(8, info.tc, info.tu_loop))
        assert r["n_star_gamma"] == pytest.approx(
            fixed_point_with_persistence(8, info.tc, info.tu_loop, 0.5)
        )
        assert np.isnan(r["steady_state_mean"])  # no events recorded

    def test_predictions_nan_for_non_leashed(self):
        p = OccupancyProbe()
        p.bind(leashed_info(persistence=NAN))
        r = p.result()
        assert np.isnan(r["n_star"]) and np.isnan(r["n_star_gamma"])


class TestStalenessDecompositionProbe:
    def test_tau_split_pinned(self):
        p = StalenessDecompositionProbe()
        # Thread 0 pins seq 5, finishes gradient at seq 8 (tau_c = 3),
        # publishes with total staleness 4 -> tau_s = 1.
        p.on_read_pinned(0.0, 0, 5)
        p.on_grad_done(1.0, 0, 8)
        p.on_publish(2.0, 0, 9, 4)
        r = p.result()
        assert r["n_updates"] == 1
        assert r["mean_tau_c"] == pytest.approx(3.0)
        assert r["mean_tau_s"] == pytest.approx(1.0)
        assert r["mean_tau"] == pytest.approx(4.0)

    def test_tau_c_capped_by_total_staleness(self):
        # Measurement scales can make seq_now - view exceed the staleness
        # the publish reports; tau_c is clamped so tau_s stays >= 0.
        p = StalenessDecompositionProbe()
        p.on_read_pinned(0.0, 0, 0)
        p.on_grad_done(1.0, 0, 10)
        p.on_publish(2.0, 0, 11, 6)
        r = p.result()
        assert r["mean_tau_c"] == pytest.approx(6.0)
        assert r["mean_tau_s"] == pytest.approx(0.0)

    def test_threads_tracked_independently(self):
        p = StalenessDecompositionProbe()
        p.on_read_pinned(0.0, 0, 0)
        p.on_read_pinned(0.0, 1, 0)
        p.on_grad_done(1.0, 0, 2)   # tau_c = 2
        p.on_grad_done(1.0, 1, 5)   # tau_c = 5
        p.on_publish(2.0, 1, 6, 5)
        p.on_publish(3.0, 0, 7, 3)
        r = p.result()
        assert r["n_updates"] == 2
        assert r["mean_tau_c"] == pytest.approx((5 + 2) / 2)

    def test_empty_result_is_nan(self):
        r = StalenessDecompositionProbe().result()
        assert r["n_updates"] == 0
        assert np.isnan(r["mean_tau_c"]) and np.isnan(r["mean_tau"])

    def test_expected_values_present_when_bound(self):
        p = StalenessDecompositionProbe()
        p.bind(leashed_info(m=8, persistence=float("inf")))
        r = p.result()
        assert np.isfinite(r["expected_tau_c"])
        assert np.isfinite(r["expected_tau_s"])


class TestPhaseTimeProbe:
    def test_leashed_cycle_attribution(self):
        p = PhaseTimeProbe()
        p.on_read_pinned(1.0, 0, 0)   # read:    0.0 -> 1.0
        p.on_grad_done(3.0, 0, 0)     # compute: 1.0 -> 3.0
        p.on_lau_enter(3.5, 0)        # prepare: 3.0 -> 3.5
        p.on_publish(5.0, 0, 1, 0, 0, 3.5)  # lau_spc: 3.5 -> 5.0
        r = p.result()
        assert r["seconds"]["read"] == pytest.approx(1.0)
        assert r["seconds"]["compute"] == pytest.approx(2.0)
        assert r["seconds"]["prepare"] == pytest.approx(0.5)
        assert r["seconds"]["lau_spc"] == pytest.approx(1.5)
        assert r["seconds"]["publish"] == 0.0
        assert r["total_attributed"] == pytest.approx(5.0)
        assert sum(r["fractions"].values()) == pytest.approx(1.0)

    def test_non_retry_cycle_uses_publish_phase(self):
        p = PhaseTimeProbe()
        p.on_read_pinned(1.0, 0, 0)
        p.on_grad_done(2.0, 0, 0)
        p.on_publish(2.5, 0, 1, 0)    # no lau_enter -> publish phase
        r = p.result()
        assert r["seconds"]["publish"] == pytest.approx(0.5)
        assert r["seconds"]["lau_spc"] == 0.0

    def test_drop_charged_to_lau_spc(self):
        p = PhaseTimeProbe()
        p.on_lau_enter(1.0, 0)
        p.on_drop(4.0, 0, 3, 1.0)
        assert p.result()["seconds"]["lau_spc"] == pytest.approx(3.0)

    def test_empty_fractions_are_nan(self):
        r = PhaseTimeProbe().result()
        assert r["total_attributed"] == 0.0
        assert all(np.isnan(v) for v in r["fractions"].values())


class TestCasTimelineProbe:
    def test_totals_and_rate(self):
        p = CasTimelineProbe(bins=2)
        p.on_cas_attempt(1.0, 0, True, 0)
        p.on_cas_attempt(2.0, 1, False, 0)
        p.on_cas_attempt(3.0, 1, True, 1)
        p.on_cas_attempt(4.0, 2, False, 0)
        r = p.result()
        assert r["n_attempts"] == 4
        assert r["n_failures"] == 2
        assert r["failure_rate"] == pytest.approx(0.5)
        assert len(r["bin_centers"]) == 2
        assert sum(r["bin_attempts"]) == 4

    def test_binned_rates_pinned(self):
        p = CasTimelineProbe(bins=2)
        # Edges span [0, max(times)=9]: bin 1 is [0, 4.5) with one
        # failing attempt, bin 2 is [4.5, 9] with two successes.
        p.on_cas_attempt(2.0, 0, False, 0)
        p.on_cas_attempt(7.0, 0, True, 1)
        p.on_cas_attempt(9.0, 1, True, 0)
        r = p.result()
        assert r["bin_failure_rate"][0] == pytest.approx(1.0)
        assert r["bin_failure_rate"][1] == pytest.approx(0.0)

    def test_empty_result(self):
        r = CasTimelineProbe().result()
        assert r["n_attempts"] == 0
        assert np.isnan(r["failure_rate"])
        assert r["bin_centers"] == []


class TestRegistry:
    def test_standard_probes_all_resolve(self):
        for name in STANDARD_PROBES:
            probe = make_probe(name)
            assert isinstance(probe, Probe)
            assert probe.name == name

    def test_unknown_probe_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown probe"):
            make_probe("nonexistent")

    def test_register_probe_round_trip(self):
        class CountingProbe(Probe):
            name = "counting"

            def __init__(self):
                super().__init__()
                self.n = 0

            def on_publish(self, *args, **kwargs):
                self.n += 1

            def result(self):
                return {"n": self.n}

        register_probe("counting", CountingProbe)
        try:
            probe = make_probe("counting")
            assert isinstance(probe, CountingProbe)
            probe.on_publish(0.0, 0, 1, 0)
            assert probe.result() == {"n": 1}
        finally:
            del PROBES["counting"]

    def test_base_probe_result_abstract(self):
        with pytest.raises(NotImplementedError):
            Probe().result()
