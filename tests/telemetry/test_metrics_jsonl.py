"""Tests for the results layer: RunMetrics mapping semantics, pickling
across the process boundary, and the JSONL export/import round-trip."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import run_once
from repro.telemetry import (
    SCHEMA_VERSION,
    RunMetrics,
    read_jsonl,
    result_to_line,
    write_jsonl,
)
from repro.utils.serialization import result_to_dict

from tests.conftest import make_run_config

#: Every key schema v1 promised (see repro.telemetry.metrics docstring).
SCHEMA_V1_KEYS = {
    "virtual_time", "wall_seconds", "n_updates", "n_dropped",
    "cas_failure_rate", "mean_lock_wait", "staleness", "staleness_values",
    "updates_per_thread", "peak_pv_count", "peak_pv_bytes", "mean_pv_bytes",
    "pool_hits", "pool_misses", "pool_trimmed", "reclaim_events", "memory_timeline",
    "retry_occupancy", "final_accuracy", "probes",
}

#: Schema v2 = v1 plus the observability keys (wall-phase split,
#: self-profiler summary, provenance manifest).
SCHEMA_V2_KEYS = SCHEMA_V1_KEYS | {"wall_phases", "profile", "provenance"}

#: Schema v3 = v2 plus the replica-kernel de-vectorization tally.
SCHEMA_V3_KEYS = SCHEMA_V2_KEYS | {"kernel_fallbacks"}


@pytest.fixture(scope="module")
def result(quadratic, cost_model):
    return run_once(
        quadratic,
        cost_model,
        make_run_config(m=4, probes=("occupancy", "staleness")),
    )


@pytest.fixture(scope="module")
def quadratic():
    from repro.core.problem import QuadraticProblem

    return QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05)


@pytest.fixture(scope="module")
def cost_model():
    from repro.sim.cost import CostModel

    return CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3, n_chunks=8)


class TestRunMetrics:
    def test_schema_keys_complete(self, result):
        assert set(result.metrics) == SCHEMA_V3_KEYS
        assert result.metrics.schema_version == SCHEMA_VERSION

    def test_serial_run_reports_zero_fallbacks(self, result):
        # The serial path never de-vectorizes anything.
        assert result.metrics["kernel_fallbacks"] == 0

    def test_mapping_interface(self, result):
        metrics = result.metrics
        assert len(metrics) == len(SCHEMA_V3_KEYS)
        assert metrics["n_updates"] == result.n_updates
        assert dict(metrics)["virtual_time"] == result.virtual_time
        with pytest.raises(KeyError):
            metrics["no_such_key"]

    def test_probe_accessors(self, result):
        assert result.metrics.probe_names == ("occupancy", "staleness")
        occ = result.metrics.probe("occupancy")
        assert "steady_state_mean" in occ and "n_star_gamma" in occ
        with pytest.raises(KeyError):
            result.metrics.probe("cas_timeline")

    def test_result_properties_delegate_to_metrics(self, result):
        # The RunResult surface is a thin view over the mapping.
        assert result.virtual_time == result.metrics["virtual_time"]
        np.testing.assert_array_equal(
            result.staleness_values, result.metrics["staleness_values"]
        )
        assert result.peak_pv_count == result.metrics["peak_pv_count"]

    def test_pickle_round_trip(self, result):
        clone = pickle.loads(pickle.dumps(result.metrics))
        assert clone.schema_version == result.metrics.schema_version
        assert set(clone) == set(result.metrics)
        assert clone["n_updates"] == result.metrics["n_updates"]
        np.testing.assert_array_equal(
            clone["staleness_values"], result.metrics["staleness_values"]
        )

    def test_empty_metrics(self):
        metrics = RunMetrics()
        assert len(metrics) == 0
        assert metrics.probe_names == ()
        assert metrics.schema_version == SCHEMA_VERSION


class TestFlatPayload:
    def test_result_to_dict_stays_flat(self, result):
        """The archived flat JSON shape survives the RunMetrics refactor:
        metric keys at the top level next to config/status/report, no
        nested 'metrics' object."""
        payload = result_to_dict(result)
        assert "metrics" not in payload
        assert SCHEMA_V3_KEYS <= set(payload)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["status"] == result.status.value
        assert payload["config"]["algorithm"] == result.config.algorithm


class TestJsonl:
    def test_line_is_compact_json(self, result):
        line = result_to_line(result)
        assert "\n" not in line
        row = json.loads(line)
        assert row["schema_version"] == SCHEMA_VERSION

    def test_round_trip(self, result, tmp_path):
        path = write_jsonl([result, result], tmp_path / "runs.jsonl")
        rows = read_jsonl(path)
        assert len(rows) == 2
        for row in rows:
            assert row["n_updates"] == result.n_updates
            assert row["config"]["seed"] == result.config.seed
            np.testing.assert_array_equal(
                np.asarray(row["staleness_values"]), result.staleness_values
            )
            assert "occupancy" in row["probes"]

    def test_nan_metrics_survive(self, quadratic, cost_model, tmp_path):
        # A lock-free run's mean_lock_wait is NaN; JSON has no NaN
        # literal, so the encoder must tunnel it through.
        res = run_once(quadratic, cost_model, make_run_config(m=2))
        (row,) = read_jsonl(write_jsonl([res], tmp_path / "nan.jsonl"))
        assert np.isnan(row["mean_lock_wait"])

    def test_append_mode(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_jsonl([result], path)
        write_jsonl([result], path, append=True)
        assert len(read_jsonl(path)) == 2

    def test_blank_lines_skipped(self, result, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(result_to_line(result) + "\n\n" + result_to_line(result) + "\n")
        assert len(read_jsonl(path)) == 2

    def test_newer_schema_rejected(self, result, tmp_path):
        path = tmp_path / "future.jsonl"
        row = json.loads(result_to_line(result))
        row["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(ConfigurationError, match="schema_version"):
            read_jsonl(path)
        # ... unless the caller opts out of strictness.
        assert len(read_jsonl(path, strict=False)) == 1

    def test_missing_schema_rejected(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"n_updates": 3}\n')
        with pytest.raises(ConfigurationError, match="not supported"):
            read_jsonl(path)

    def test_dict_passthrough(self, result, tmp_path):
        # Already-flat dicts (e.g. re-exporting filtered rows) are valid
        # inputs to write_jsonl.
        rows = read_jsonl(write_jsonl([result], tmp_path / "a.jsonl"))
        path = write_jsonl(rows, tmp_path / "b.jsonl")
        assert len(read_jsonl(path)) == 1


class TestSchemaMigration:
    """Archived v1 JSONL keeps loading after the v2 bump; rows from a
    *future* schema fail with a named error, not a KeyError deep in an
    analysis loop."""

    def _v1_row(self, result) -> dict:
        row = json.loads(result_to_line(result))
        row["schema_version"] = 1
        for key in ("wall_phases", "profile", "provenance", "kernel_fallbacks"):
            row.pop(key, None)
        return row

    def _v2_row(self, result) -> dict:
        row = json.loads(result_to_line(result))
        row["schema_version"] = 2
        row.pop("kernel_fallbacks", None)
        return row

    def test_v1_rows_migrate_on_read(self, result, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(json.dumps(self._v1_row(result)) + "\n")
        (row,) = read_jsonl(path)
        assert row["schema_version"] == SCHEMA_VERSION
        assert row["profile"] == {}
        assert row["provenance"] == {}
        assert set(row["wall_phases"]) == {"setup", "simulate", "teardown"}
        assert all(np.isnan(v) for v in row["wall_phases"].values())
        assert row["kernel_fallbacks"] == 0
        # The v1 payload itself is untouched by the migration.
        assert row["n_updates"] == result.n_updates

    def test_v2_rows_migrate_on_read(self, result, tmp_path):
        path = tmp_path / "v2.jsonl"
        path.write_text(json.dumps(self._v2_row(result)) + "\n")
        (row,) = read_jsonl(path)
        assert row["schema_version"] == SCHEMA_VERSION
        assert row["kernel_fallbacks"] == 0
        # The v2 observability keys are preserved, not re-defaulted.
        assert set(row["wall_phases"]) == {"setup", "simulate", "teardown"}
        assert row["n_updates"] == result.n_updates

    def test_migrate_row_is_noop_on_current(self, result):
        from repro.telemetry import migrate_row

        row = json.loads(result_to_line(result))
        before = dict(row)
        assert migrate_row(row) == before

    def test_forward_version_raises_schema_error(self, result, tmp_path):
        from repro.errors import SchemaVersionError

        path = tmp_path / "future.jsonl"
        row = json.loads(result_to_line(result))
        row["schema_version"] = SCHEMA_VERSION + 7
        path.write_text(json.dumps(row) + "\n")
        with pytest.raises(SchemaVersionError) as excinfo:
            read_jsonl(path)
        message = str(excinfo.value)
        assert "future.jsonl" in message
        assert str(SCHEMA_VERSION + 7) in message
        assert f"<= {SCHEMA_VERSION}" in message

    def test_non_strict_passes_future_rows_through(self, result, tmp_path):
        path = tmp_path / "future.jsonl"
        row = json.loads(result_to_line(result))
        row["schema_version"] = SCHEMA_VERSION + 7
        path.write_text(json.dumps(row) + "\n")
        (loose,) = read_jsonl(path, strict=False)
        assert loose["schema_version"] == SCHEMA_VERSION + 7
