"""Cross-module integration tests: full executions exercising the
simulator, algorithms, harness and analysis together, including a
(slow-marked) paper-scale MLP smoke run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import RunStatus
from repro.harness.config import RunConfig, Workloads
from repro.harness.experiments import s1_scalability
from repro.harness.runner import run_once

from tests.conftest import make_run_config


class TestExperimentDeterminism:
    def test_s1_micro_reproducible(self, tiny_workloads):
        a = s1_scalability(tiny_workloads, algorithms=("LSH_ps0",), thread_counts=(4,),
                           repeats=2)
        b = s1_scalability(tiny_workloads, algorithms=("LSH_ps0",), thread_counts=(4,),
                           repeats=2)
        assert a.data["boxes"] == b.data["boxes"]


class TestFullMetricSurface:
    """One run per algorithm over the DL workload, checking that every
    reported metric is self-consistent."""

    @pytest.fixture(scope="class")
    def runs(self, request):
        from repro.harness.config import Profile

        profile = Profile(
            name="quick", n_train=1024, n_eval=256, batch_size=64,
            cnn_batch_size=32, repeats=1, thread_counts=(4,),
            high_parallelism=(4,), max_updates=800, max_virtual_time=30.0,
            max_wall_seconds=30.0, step_sizes=(0.02,),
            mlp_epsilons=(0.75, 0.5), cnn_epsilons=(0.75, 0.5),
        )
        workloads = Workloads(profile)
        problem = workloads.mlp_problem
        cost = workloads.cost("mlp")
        out = {}
        for algorithm in ("SEQ", "ASYNC", "HOG", "LSH_ps1", "SYNC", "HOGPP_c2"):
            m = 1 if algorithm == "SEQ" else 4
            out[algorithm] = run_once(
                problem, cost,
                RunConfig(algorithm=algorithm, m=m, eta=0.02, seed=17,
                          epsilons=(0.75, 0.5), target_epsilon=0.5,
                          max_updates=800, max_virtual_time=30.0,
                          max_wall_seconds=30.0),
            )
        return out

    def test_all_converge(self, runs):
        for name, result in runs.items():
            assert result.status is RunStatus.CONVERGED, f"{name} failed"

    def test_threshold_times_ordered(self, runs):
        for name, result in runs.items():
            t75, t50 = result.time_to(0.75), result.time_to(0.5)
            assert t75 <= t50, f"{name}: coarser threshold must be hit first"

    def test_updates_monotone_with_curve(self, runs):
        for result in runs.values():
            upd = result.report.curve_updates
            assert all(a <= b for a, b in zip(upd, upd[1:]))

    def test_accuracy_reported_for_dl(self, runs):
        for name, result in runs.items():
            assert 0.0 <= result.final_accuracy <= 1.0, name

    def test_loss_descends(self, runs):
        for name, result in runs.items():
            assert result.report.final_loss < result.report.initial_loss, name

    def test_virtual_time_positive_and_finite(self, runs):
        for result in runs.values():
            assert 0 < result.virtual_time < 1e6
            assert result.wall_seconds > 0


@pytest.mark.slow
class TestPaperScaleSmoke:
    """The paper's actual parameters (batch 512, d=134,794) on a reduced
    corpus: confirms the paper-profile path executes end to end."""

    def test_mlp_paper_batch(self):
        from repro.harness.config import Profile

        profile = Profile(
            name="paper", n_train=8192, n_eval=1024, batch_size=512,
            cnn_batch_size=512, repeats=1, thread_counts=(16,),
            high_parallelism=(16,), max_updates=1500, max_virtual_time=120.0,
            max_wall_seconds=120.0, step_sizes=(0.02,),
            mlp_epsilons=(0.75, 0.5), cnn_epsilons=(0.75, 0.5),
        )
        workloads = Workloads(profile)
        result = run_once(
            workloads.mlp_problem, workloads.cost("mlp"),
            RunConfig(algorithm="LSH_psinf", m=16, eta=0.02, seed=1,
                      epsilons=(0.75, 0.5), target_epsilon=0.5,
                      max_updates=1500, max_virtual_time=120.0,
                      max_wall_seconds=120.0),
        )
        assert result.status is RunStatus.CONVERGED
        assert result.config.m == 16
