"""CLI experiment/figures commands, run against a miniature profile."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness import config as config_module
from repro.harness.config import Profile


@pytest.fixture
def micro_quick(monkeypatch):
    """Shrink the 'quick' profile so CLI experiment tests run in seconds."""
    micro = Profile(
        name="quick",
        n_train=512,
        n_eval=128,
        batch_size=64,
        cnn_batch_size=32,
        repeats=1,
        thread_counts=(1, 4),
        high_parallelism=(4,),
        max_updates=300,
        max_virtual_time=15.0,
        max_wall_seconds=15.0,
        step_sizes=(0.02,),
        mlp_epsilons=(0.75, 0.5),
        cnn_epsilons=(0.75, 0.5),
    )
    monkeypatch.setitem(config_module._PROFILES, "quick", micro)
    return micro


class TestExperimentCommand:
    def test_s1_runs_and_prints(self, micro_quick, capsys):
        code = main(["experiment", "s1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig 3" in out and "S1/Fig3" in out

    def test_s5_runs(self, micro_quick, capsys):
        code = main(["experiment", "s5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory consumption" in out

    def test_unknown_step_rejected(self, micro_quick):
        with pytest.raises(SystemExit):
            main(["experiment", "s9"])

    def test_cache_dir_serves_second_run(self, micro_quick, capsys, tmp_path):
        cache_dir = str(tmp_path / "runs")
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "cache:" in cold and " 0 hits" in cold
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "cache:" in warm and " 0 hits" not in warm
        assert " 0 misse" in warm  # fully served from cache

    def test_no_cache_disables_env_dir(self, micro_quick, capsys, monkeypatch,
                                       tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["experiment", "s5", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out


class TestRunCommandDLWorkload:
    def test_mlp_run(self, micro_quick, capsys):
        code = main(["run", "--algorithm", "LSH_ps0", "--m", "4",
                     "--workload", "mlp", "--target-eps", "0.75"])
        out = capsys.readouterr().out
        assert code == 0
        assert "final accuracy" in out


class TestCalibrateCommand:
    def test_calibrate_prints_both_architectures(self, micro_quick, capsys):
        code = main(["calibrate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MLP" in out and "CNN" in out and "Tc/Tu" in out
