"""CLI experiment/figures commands, run against a miniature profile."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness import config as config_module
from repro.harness.config import Profile


@pytest.fixture
def micro_quick(monkeypatch):
    """Shrink the 'quick' profile so CLI experiment tests run in seconds."""
    micro = Profile(
        name="quick",
        n_train=512,
        n_eval=128,
        batch_size=64,
        cnn_batch_size=32,
        repeats=1,
        thread_counts=(1, 4),
        high_parallelism=(4,),
        max_updates=300,
        max_virtual_time=15.0,
        max_wall_seconds=15.0,
        step_sizes=(0.02,),
        mlp_epsilons=(0.75, 0.5),
        cnn_epsilons=(0.75, 0.5),
    )
    monkeypatch.setitem(config_module._PROFILES, "quick", micro)
    return micro


class TestExperimentCommand:
    def test_s1_runs_and_prints(self, micro_quick, capsys):
        code = main(["experiment", "s1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig 3" in out and "S1/Fig3" in out

    def test_s5_runs(self, micro_quick, capsys):
        code = main(["experiment", "s5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory consumption" in out

    def test_unknown_step_rejected(self, micro_quick):
        with pytest.raises(SystemExit):
            main(["experiment", "s9"])

    def test_cache_dir_serves_second_run(self, micro_quick, capsys, tmp_path):
        cache_dir = str(tmp_path / "runs")
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "cache:" in cold and " 0 hits" in cold
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert "cache:" in warm and " 0 hits" not in warm
        assert " 0 misse" in warm  # fully served from cache

    def test_no_cache_disables_env_dir(self, micro_quick, capsys, monkeypatch,
                                       tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["experiment", "s5", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_service_summary_line(self, micro_quick, capsys):
        assert main(["experiment", "s5"]) == 0
        out = capsys.readouterr().out
        assert "service:" in out and "executed" in out and "resumed" in out

    def test_cache_line_reports_task_traffic(self, micro_quick, capsys,
                                             tmp_path):
        cache_dir = str(tmp_path / "runs")
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        cold = capsys.readouterr().out
        assert "tasks: 0 served /" in cold
        assert main(["experiment", "s5", "--cache-dir", cache_dir]) == 0
        warm = capsys.readouterr().out
        assert " served / 0 executed" in warm


class TestExperimentService:
    def test_run_dir_writes_artifacts(self, micro_quick, capsys, tmp_path):
        run_dir = tmp_path / "svc"
        assert main(["experiment", "s5", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run dir:" in out and "fingerprint" in out
        for name in ("manifest.json", "queue.jsonl", "merged.jsonl",
                     "summary.json", "service_timeline.json"):
            assert (run_dir / name).exists(), name

    def test_resume_completed_run_executes_nothing(self, micro_quick, capsys,
                                                   tmp_path):
        import json

        run_dir = tmp_path / "svc"
        assert main(["experiment", "s5", "--run-dir", str(run_dir)]) == 0
        first = json.loads((run_dir / "summary.json").read_text())
        capsys.readouterr()
        # --resume needs no step: it comes from the manifest.
        assert main(["experiment", "--resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "memory consumption" in out  # manifest resolved s5
        second = json.loads((run_dir / "summary.json").read_text())
        assert second["merged_fingerprint"] == first["merged_fingerprint"]
        assert second["service"]["tasks_executed"] == 0
        assert second["service"]["tasks_from_journal"] > 0

    def test_resume_wrong_step_refused(self, micro_quick, capsys, tmp_path):
        run_dir = tmp_path / "svc"
        assert main(["experiment", "s5", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="refusing to resume"):
            main(["experiment", "s1", "--resume", str(run_dir)])

    def test_resume_missing_manifest_errors(self, micro_quick, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no manifest.json"):
            main(["experiment", "--resume", str(tmp_path)])

    def test_step_required_without_resume(self, micro_quick, capsys):
        assert main(["experiment"]) == 2
        assert "required unless --resume" in capsys.readouterr().err

    def test_trace_service_exports_queue_timeline(self, micro_quick, capsys,
                                                  tmp_path):
        run_dir = tmp_path / "svc"
        assert main(["experiment", "s5", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "queue_trace.json"
        assert main(["trace", "--service", str(run_dir),
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "service run" in out
        assert out_path.exists()


class TestAnalyzeCacheLine:
    def test_analyze_reports_task_traffic(self, micro_quick, capsys,
                                          tmp_path):
        cache_dir = str(tmp_path / "runs")
        args = ["analyze", "--algorithm", "LSH_ps1", "--m", "2",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "cache:" in cold and "tasks: 0 served / 1 executed" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "tasks: 1 served / 0 executed" in warm


class TestRunCommandDLWorkload:
    def test_mlp_run(self, micro_quick, capsys):
        code = main(["run", "--algorithm", "LSH_ps0", "--m", "4",
                     "--workload", "mlp", "--target-eps", "0.75"])
        out = capsys.readouterr().out
        assert code == 0
        assert "final accuracy" in out


class TestCalibrateCommand:
    def test_calibrate_prints_both_architectures(self, micro_quick, capsys):
        code = main(["calibrate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MLP" in out and "CNN" in out and "Tc/Tu" in out
