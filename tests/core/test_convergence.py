"""Unit tests for the convergence monitor (thresholds, statuses, caps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import ConvergenceMonitor, ConvergenceReport, RunStatus
from repro.errors import ConfigurationError


class MonitorHarness:
    """Drive a monitor body directly with a scripted loss sequence."""

    def __init__(self, losses, *, epsilons=(0.5, 0.1), target=None, **kwargs):
        self.losses = iter(losses)
        self.now = 0.0
        self.updates = 0
        self.stopped = False
        self.monitor = ConvergenceMonitor(
            eval_fn=self._eval,
            n_updates_fn=lambda: self.updates,
            epsilons=epsilons,
            target_epsilon=target,
            eval_interval=1.0,
            stop_fn=self._stop,
            now_fn=lambda: self.now,
            **kwargs,
        )

    def _eval(self):
        return next(self.losses)

    def _stop(self):
        self.stopped = True

    def run(self, max_steps=100):
        gen = self.monitor.body()
        try:
            for _ in range(max_steps):
                next(gen)
                self.now += 1.0
                self.updates += 3
                if self.stopped:
                    gen.close()
                    break
        except StopIteration:
            pass
        return self.monitor.report


class TestThresholds:
    def test_records_crossings_in_order(self):
        report = MonitorHarness([10.0, 6.0, 4.9, 2.0, 0.9]).run()
        assert report.status is RunStatus.CONVERGED
        assert set(report.threshold_times) == {0.5, 0.1}
        t50, _ = report.threshold_times[0.5]
        t10, _ = report.threshold_times[0.1]
        assert t50 < t10

    def test_threshold_relative_to_initial_loss(self):
        report = MonitorHarness([100.0, 49.0, 9.0]).run()
        assert report.initial_loss == 100.0
        assert 0.5 in report.threshold_times and 0.1 in report.threshold_times

    def test_update_counts_recorded(self):
        report = MonitorHarness([10.0, 0.5]).run()
        _, n = report.threshold_times[0.1]
        assert n > 0

    def test_time_to_nan_when_unreached(self):
        report = MonitorHarness([10.0] * 3, max_virtual_time=2.0).run()
        assert np.isnan(report.time_to(0.1))
        assert np.isnan(report.updates_to(0.1))


class TestStatuses:
    def test_crash_on_nan(self):
        report = MonitorHarness([10.0, float("nan")]).run()
        assert report.status is RunStatus.CRASHED

    def test_crash_on_nan_at_init(self):
        report = MonitorHarness([float("nan")]).run()
        assert report.status is RunStatus.CRASHED

    def test_crash_on_inf(self):
        report = MonitorHarness([10.0, float("inf")]).run()
        assert report.status is RunStatus.CRASHED

    def test_diverge_on_time_budget(self):
        report = MonitorHarness([10.0] * 50, max_virtual_time=5.0).run()
        assert report.status is RunStatus.DIVERGED

    def test_update_budget_stops(self):
        # max_updates is a harness cap, not the paper's Diverge verdict.
        report = MonitorHarness([10.0] * 50, max_updates=9).run()
        assert report.status is RunStatus.STOPPED

    def test_wall_budget_stops(self):
        report = MonitorHarness([10.0] * 50, max_wall_seconds=0.0).run()
        assert report.status is RunStatus.STOPPED

    def test_converged_stops_early(self):
        harness = MonitorHarness([10.0, 0.5] + [0.5] * 50)
        report = harness.run()
        assert report.status is RunStatus.CONVERGED
        assert len(report.curve_loss) == 2  # stopped right after crossing

    def test_curve_accumulates(self):
        report = MonitorHarness([10.0, 8.0, 6.0, 0.1]).run()
        assert report.curve_loss == [10.0, 8.0, 6.0, 0.1]
        assert report.curve_t == [0.0, 1.0, 2.0, 3.0]


class TestValidation:
    def _make(self, **kwargs):
        return ConvergenceMonitor(
            eval_fn=lambda: 1.0,
            n_updates_fn=lambda: 0,
            stop_fn=lambda: None,
            now_fn=lambda: 0.0,
            **kwargs,
        )

    def test_empty_epsilons_rejected(self):
        with pytest.raises(ConfigurationError):
            self._make(epsilons=(), eval_interval=1.0)

    def test_out_of_range_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            self._make(epsilons=(1.5,), eval_interval=1.0)

    def test_target_must_be_member(self):
        with pytest.raises(ConfigurationError):
            self._make(epsilons=(0.5, 0.1), target_epsilon=0.2, eval_interval=1.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            self._make(epsilons=(0.5,), eval_interval=0.0)

    def test_default_target_is_smallest(self):
        mon = self._make(epsilons=(0.5, 0.1, 0.25), eval_interval=1.0)
        assert mon.target_epsilon == 0.1
        assert mon.epsilons == (0.5, 0.25, 0.1)


class TestReport:
    def test_fresh_report_defaults(self):
        report = ConvergenceReport()
        assert report.status is RunStatus.RUNNING
        assert np.isnan(report.time_to(0.5))
