"""Tests for ParameterVector (Algorithm 1): update semantics, the
reader-count recycling protocol, and its race-tolerance guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameter_vector import ParameterVector
from repro.errors import MemoryAccountingError, SimulationError
from repro.sim.memory import MemoryAccountant


@pytest.fixture
def memory():
    clock = {"t": 0.0}
    acct = MemoryAccountant(lambda: clock["t"])
    acct._test_clock = clock  # type: ignore[attr-defined]
    return acct


class TestConstruction:
    def test_starts_zeroed(self):
        pv = ParameterVector(8)
        np.testing.assert_array_equal(pv.theta, 0.0)
        assert pv.t == 0 and not pv.stale_flag and not pv.is_deleted

    def test_invalid_dimension(self):
        with pytest.raises(SimulationError):
            ParameterVector(0)

    def test_registers_allocation(self, memory):
        ParameterVector(100, memory=memory, tag="pv", dtype=np.float32)
        assert memory.live_bytes == 400
        assert memory.live_count_by_tag("pv") == 1

    def test_rand_init(self):
        pv = ParameterVector(10_000, dtype=np.float64)
        pv.rand_init(np.random.default_rng(0), std=0.1)
        assert abs(pv.theta.std() - 0.1) < 0.01


class TestUpdate:
    def test_update_applies_step_and_bumps_t(self):
        pv = ParameterVector(4, dtype=np.float64)
        pv.theta[...] = 1.0
        pv.update(np.full(4, 2.0), eta=0.5)
        np.testing.assert_allclose(pv.theta, 0.0)
        assert pv.t == 1

    def test_multiple_updates_accumulate(self):
        pv = ParameterVector(2, dtype=np.float64)
        for _ in range(3):
            pv.update(np.ones(2), eta=1.0)
        np.testing.assert_allclose(pv.theta, -3.0)
        assert pv.t == 3

    def test_update_after_delete_raises(self):
        pv = ParameterVector(2)
        pv.stale_flag = True
        assert pv.safe_delete()
        with pytest.raises(SimulationError, match="use-after-free"):
            pv.update(np.ones(2), eta=0.1)


class TestRecycling:
    def test_safe_delete_requires_stale(self):
        pv = ParameterVector(2)
        assert not pv.safe_delete()
        assert not pv.is_deleted

    def test_safe_delete_requires_no_readers(self):
        pv = ParameterVector(2)
        pv.stale_flag = True
        pv.start_reading()
        assert not pv.safe_delete()
        pv.stop_reading()  # last reader reclaims
        assert pv.is_deleted

    def test_safe_delete_claims_once(self):
        pv = ParameterVector(2)
        pv.stale_flag = True
        assert pv.safe_delete() is True
        assert pv.safe_delete() is False  # idempotent, no double free

    def test_stop_reading_without_start_raises(self):
        pv = ParameterVector(2)
        with pytest.raises(SimulationError):
            pv.stop_reading()

    def test_reader_count_nesting(self):
        pv = ParameterVector(2)
        pv.start_reading()
        pv.start_reading()
        pv.stale_flag = True
        pv.stop_reading()
        assert not pv.is_deleted  # one reader left
        pv.stop_reading()
        assert pv.is_deleted

    def test_frees_accounted_memory(self, memory):
        pv = ParameterVector(10, memory=memory, dtype=np.float32)
        pv.stale_flag = True
        pv.safe_delete()
        assert memory.live_bytes == 0

    def test_paper_p4_race_window(self):
        """The race the paper's P4 tolerates: a reader pins a vector
        that was reclaimed between its pointer load and start_reading;
        the reader detects staleness and backs off without corruption."""
        pv = ParameterVector(2)
        pv.stale_flag = True
        pv.safe_delete()  # reclaimed while some thread still holds the pointer
        assert pv.is_deleted
        pv.start_reading()  # late reader pins the carcass — allowed
        assert pv.stale_flag  # reader re-checks and will back off
        pv.stop_reading()  # back-off path: must not double-free or raise

    def test_force_delete_private_instance(self, memory):
        pv = ParameterVector(4, memory=memory)
        pv.force_delete()
        assert pv.is_deleted and memory.live_bytes == 0
        pv.force_delete()  # idempotent
        assert memory.live_bytes == 0

    def test_double_free_would_be_detected_by_accountant(self, memory):
        # Defense in depth: if the deleted flag were bypassed, the
        # accountant itself rejects the second free.
        pv = ParameterVector(4, memory=memory)
        pv.stale_flag = True
        pv.safe_delete()
        with pytest.raises(MemoryAccountingError):
            memory.free(pv._block_id)


class TestCrashSemantics:
    def test_overflowing_update_is_silent(self):
        # The paper's 'Crash' outcome: destructive steps produce
        # non-finite parameters without raising; detection is the
        # monitor's job.
        pv = ParameterVector(2, dtype=np.float32)
        pv.theta[...] = 1.0
        pv.update(np.full(2, np.float32(3e38)), eta=1e30)
        assert not np.all(np.isfinite(pv.theta))
