"""Integration tests of the four algorithms on the simulated machine:
convergence, consistency guarantees, staleness semantics, persistence
behaviour, memory bounds, determinism, and progress."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.memory_model import baseline_instances, leashed_max_instances
from repro.core.base import ALGORITHMS, make_algorithm
from repro.core.convergence import RunStatus
from repro.errors import ConfigurationError
from repro.sim.cost import CostModel

from tests.core.conftest import ViewRecordingProblem, run_algorithm

PARALLEL = ("ASYNC", "HOG", "LSH_psinf", "LSH_ps1", "LSH_ps0")


class TestRegistry:
    def test_all_paper_names_resolve(self):
        for name in ALGORITHMS:
            assert make_algorithm(name).name == name

    def test_parameterized_persistence(self):
        alg = make_algorithm("LSH_ps7")
        assert alg.persistence == 7

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("SGD_MAGIC")

    def test_negative_persistence_rejected(self):
        from repro.core.leashed import LeashedSGD

        with pytest.raises(ConfigurationError):
            LeashedSGD(persistence=-1)


class TestConvergence:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_converges_on_quadratic(self, name):
        m = 1 if name == "SEQ" else 4
        execution = run_algorithm(name, m=m)
        assert execution.report.status is RunStatus.CONVERGED
        assert execution.report.final_loss < 0.01 * execution.report.initial_loss * 1.5

    @pytest.mark.parametrize("name", PARALLEL)
    def test_parallel_speedup_over_sequential(self, name):
        seq = run_algorithm("SEQ", m=1, seed=3)
        par = run_algorithm(name, m=8, seed=3)
        assert par.report.status is RunStatus.CONVERGED
        # With Tc >> Tu, 8 threads must beat 1 thread on wall-clock.
        assert par.report.time_to(0.01) < seq.report.time_to(0.01)

    def test_final_theta_near_optimum(self, uniform_quadratic):
        execution = run_algorithm("LSH_psinf", m=4, problem=uniform_quadratic)
        theta = execution.final_theta()
        assert np.abs(theta).max() < 1.0  # moved from 5.0 toward 0


class TestConsistency:
    """The paper's central axis: ASYNC and Leashed-SGD guarantee
    consistent views; HOGWILD! does not."""

    def _tears(self, name, uniform_quadratic, m=6):
        wrapper = ViewRecordingProblem(uniform_quadratic)
        run_algorithm(
            name, m=m, problem=wrapper, eta=0.02,
            epsilons=(0.5, 0.05), target_epsilon=0.05,
        )
        return np.asarray(wrapper.tears)

    @pytest.mark.parametrize("name", ["ASYNC", "LSH_psinf", "LSH_ps0"])
    def test_consistent_algorithms_never_tear(self, name, uniform_quadratic):
        tears = self._tears(name, uniform_quadratic)
        assert tears.size > 0
        assert tears.max() == 0.0

    def test_hogwild_views_tear(self, uniform_quadratic):
        tears = self._tears("HOG", uniform_quadratic)
        assert tears.max() > 0.0

    def test_seq_never_tears(self, uniform_quadratic):
        wrapper = ViewRecordingProblem(uniform_quadratic)
        run_algorithm("SEQ", m=1, problem=wrapper,
                      epsilons=(0.5, 0.05), target_epsilon=0.05)
        assert np.asarray(wrapper.tears).max() == 0.0


class TestStaleness:
    def test_seq_staleness_zero(self):
        execution = run_algorithm("SEQ", m=1)
        assert execution.trace.staleness_values().max() == 0

    @pytest.mark.parametrize("name", PARALLEL)
    def test_staleness_nonnegative(self, name):
        execution = run_algorithm(name, m=4)
        assert execution.trace.staleness_values().min() >= 0

    @pytest.mark.parametrize("name", PARALLEL)
    def test_staleness_grows_with_parallelism(self, name):
        low = run_algorithm(name, m=2, seed=5)
        high = run_algorithm(name, m=12, seed=5)
        assert high.trace.staleness_summary()["mean"] > low.trace.staleness_summary()["mean"]

    def test_persistence_bound_reduces_staleness(self):
        # Contention-heavy cost model so the LAU-SPC loop is busy.
        cost = CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3)
        taus = {}
        for name in ("LSH_ps0", "LSH_ps1", "LSH_psinf"):
            execution = run_algorithm(name, m=12, cost=cost, seed=9)
            taus[name] = execution.trace.staleness_summary()["mean"]
        assert taus["LSH_ps0"] < taus["LSH_psinf"]
        assert taus["LSH_ps1"] <= taus["LSH_psinf"]

    def test_ps0_published_updates_have_no_cas_failures(self):
        execution = run_algorithm("LSH_ps0", m=8)
        assert all(u.cas_failures == 0 for u in execution.trace.updates)

    def test_psinf_never_drops(self):
        execution = run_algorithm("LSH_psinf", m=8)
        assert len(execution.trace.dropped) == 0

    def test_finite_persistence_drops_under_contention(self):
        cost = CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3)
        execution = run_algorithm("LSH_ps0", m=12, cost=cost, seed=2)
        assert len(execution.trace.dropped) > 0
        assert all(d.cas_failures >= 1 for d in execution.trace.dropped)

    def test_update_sequence_totally_ordered(self):
        execution = run_algorithm("LSH_psinf", m=6)
        seqs = [u.seq for u in execution.trace.updates]
        assert sorted(seqs) == list(range(min(seqs), min(seqs) + len(seqs)))


class TestMemoryBounds:
    @pytest.mark.parametrize("name,m", [("ASYNC", 4), ("HOG", 4), ("ASYNC", 8)])
    def test_baselines_hold_exactly_2m_plus_1(self, name, m):
        execution = run_algorithm(name, m=m)
        assert execution.memory.peak_count == baseline_instances(m)
        assert execution.memory.live_count == baseline_instances(m)

    @pytest.mark.parametrize("m", [4, 8])
    def test_leashed_within_lemma2_bound(self, m):
        execution = run_algorithm("LSH_psinf", m=m)
        # Lemma 2: <= 3m (+1 transient, see analysis.memory_model).
        assert execution.memory.peak_count <= leashed_max_instances(m) + 1

    def test_leashed_recycles_stale_vectors(self):
        execution = run_algorithm("LSH_psinf", m=4)
        # Published instances created ~ one per update; all but a handful
        # must have been reclaimed.
        n_published_allocs = sum(
            1 for rec in execution.memory.history if rec.tag == "published"
        )
        assert n_published_allocs >= execution.trace.n_updates - 5
        assert execution.memory.live_count_by_tag("published") <= 2 * 4 + 1

    def test_no_leak_grows_with_updates(self):
        short = run_algorithm("LSH_psinf", m=4, target_epsilon=0.5, epsilons=(0.5,))
        long = run_algorithm("LSH_psinf", m=4)
        assert long.trace.n_updates > short.trace.n_updates
        assert long.memory.peak_count <= short.memory.peak_count + 4


class TestDeterminism:
    @pytest.mark.parametrize("name", ["ASYNC", "HOG", "LSH_ps1"])
    def test_same_seed_same_execution(self, name):
        a = run_algorithm(name, m=4, seed=42)
        b = run_algorithm(name, m=4, seed=42)
        np.testing.assert_array_equal(a.final_theta(), b.final_theta())
        np.testing.assert_array_equal(
            a.trace.staleness_values(), b.trace.staleness_values()
        )
        assert a.scheduler.now == b.scheduler.now

    def test_different_seed_different_execution(self):
        a = run_algorithm("LSH_psinf", m=4, seed=1)
        b = run_algorithm("LSH_psinf", m=4, seed=2)
        assert not np.array_equal(a.final_theta(), b.final_theta())

    @pytest.mark.parametrize("name", ["SEQ", "ASYNC", "HOG", "LSH_ps1"])
    def test_probes_do_not_perturb_theta(self, name):
        from repro.telemetry import STANDARD_PROBES, make_probe

        m = 1 if name == "SEQ" else 4
        bare = run_algorithm(name, m=m, seed=42)
        probed = run_algorithm(
            name, m=m, seed=42,
            probes=[make_probe(p) for p in STANDARD_PROBES],
        )
        np.testing.assert_array_equal(bare.final_theta(), probed.final_theta())
        np.testing.assert_array_equal(
            bare.trace.staleness_values(), probed.trace.staleness_values()
        )
        assert bare.scheduler.now == probed.scheduler.now


class TestProgressGuarantees:
    def test_leashed_progresses_under_extreme_contention(self):
        # Tc < Tu: the retry loop is almost always saturated; lock-free
        # progress still guarantees system-wide updates happen.
        cost = CostModel(tc=0.5e-3, tu=1e-3, t_copy=0.5e-3)
        execution = run_algorithm(
            "LSH_psinf", m=16, cost=cost, seed=4,
            epsilons=(0.5,), target_epsilon=0.5,
        )
        assert execution.trace.n_updates > 0
        assert execution.report.status is RunStatus.CONVERGED

    def test_thread_balance_roughly_even(self):
        execution = run_algorithm("LSH_psinf", m=4, seed=6)
        counts = execution.trace.updates_per_thread(4)
        assert counts.min() > 0
        assert counts.max() <= 4 * counts.min()

    def test_seq_requires_single_worker(self):
        with pytest.raises(ConfigurationError):
            run_algorithm("SEQ", m=2)


class TestCrashDetection:
    def test_destructive_step_size_crashes(self):
        from repro.core.problem import QuadraticProblem

        # eta * h >> 2 diverges geometrically -> overflow -> crash.
        problem = QuadraticProblem(16, h=1.0, b=0.0, noise_sigma=0.0, dtype=np.float32)
        execution = run_algorithm(
            "HOG", m=4, problem=problem, eta=1e6, dtype=np.float32,
            epsilons=(0.5,), target_epsilon=0.5, max_updates=5_000,
        )
        assert execution.report.status in (
            RunStatus.CRASHED, RunStatus.DIVERGED, RunStatus.STOPPED,
        )

    def test_budget_exhaustion_stops(self):
        # An iteration cap is a harness stop, not a convergence verdict.
        execution = run_algorithm(
            "ASYNC", m=2, eta=1e-9, max_updates=50,
            epsilons=(0.5,), target_epsilon=0.5,
        )
        assert execution.report.status is RunStatus.STOPPED
