"""Tests for the extension algorithms: SyncSGD (barrier lock-step) and
staleness-adaptive Leashed-SGD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveLeashedSGD, make_adaptive
from repro.core.base import make_algorithm
from repro.core.convergence import RunStatus
from repro.errors import ConfigurationError
from repro.sim.cost import CostModel

from tests.core.conftest import ViewRecordingProblem, run_algorithm


class TestSyncSGD:
    def test_registered(self):
        assert make_algorithm("SYNC").name == "SYNC"

    def test_converges(self):
        execution = run_algorithm("SYNC", m=4)
        assert execution.report.status is RunStatus.CONVERGED

    def test_zero_staleness_always(self):
        execution = run_algorithm("SYNC", m=6)
        values = execution.trace.staleness_values()
        assert values.size > 0 and values.max() == 0

    def test_one_update_per_round(self):
        execution = run_algorithm("SYNC", m=4)
        # All updates come from the aggregator (tid 0).
        counts = execution.trace.updates_per_thread(4)
        assert counts[0] == execution.trace.n_updates
        assert counts[1:].sum() == 0

    def test_views_never_torn(self, uniform_quadratic):
        wrapper = ViewRecordingProblem(uniform_quadratic)
        run_algorithm("SYNC", m=4, problem=wrapper,
                      epsilons=(0.5, 0.05), target_epsilon=0.05)
        assert np.asarray(wrapper.tears).max() == 0.0

    def test_slower_than_async_per_round_under_speed_spread(self):
        """The lock-step pacing penalty: with heterogeneous worker
        speeds, SyncSGD publishes fewer updates per unit virtual time
        than Leashed-SGD (which never waits for stragglers)."""
        sync = run_algorithm("SYNC", m=8, seed=13)
        lsh = run_algorithm("LSH_psinf", m=8, seed=13)
        sync_rate = sync.trace.n_updates / sync.scheduler.now
        lsh_rate = lsh.trace.n_updates / lsh.scheduler.now
        assert lsh_rate > sync_rate

    def test_deterministic(self):
        a = run_algorithm("SYNC", m=4, seed=3)
        b = run_algorithm("SYNC", m=4, seed=3)
        assert a.scheduler.now == b.scheduler.now
        np.testing.assert_array_equal(a.final_theta(), b.final_theta())


class TestAdaptiveLeashed:
    def test_registered_names(self):
        assert make_algorithm("LSH_ADAPT").name == "LSH_ADAPT_psinf"
        assert make_adaptive(persistence=1, damping=0.2).persistence == 1

    def test_invalid_damping(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLeashedSGD(damping=-0.1)

    def test_effective_eta_damps_with_staleness(self):
        alg = AdaptiveLeashedSGD(damping=0.5)
        assert alg.effective_eta(0.1, 0) == pytest.approx(0.1)
        assert alg.effective_eta(0.1, 4) == pytest.approx(0.1 / 3.0)
        assert alg.effective_eta(0.1, 100) < alg.effective_eta(0.1, 10)

    def test_zero_damping_recovers_plain_eta(self):
        alg = AdaptiveLeashedSGD(damping=0.0)
        assert alg.effective_eta(0.05, 50) == 0.05

    def test_converges(self):
        execution = run_algorithm("LSH_ADAPT_psinf", m=8)
        assert execution.report.status is RunStatus.CONVERGED

    def test_consistency_preserved(self, uniform_quadratic):
        wrapper = ViewRecordingProblem(uniform_quadratic)
        run_algorithm("LSH_ADAPT_psinf", m=6, problem=wrapper,
                      epsilons=(0.5, 0.05), target_epsilon=0.05)
        assert np.asarray(wrapper.tears).max() == 0.0

    def test_memory_bound_preserved(self):
        execution = run_algorithm("LSH_ADAPT_psinf", m=6)
        assert execution.memory.peak_count <= 3 * 6 + 1

    def test_survives_destructive_eta_better_than_plain(self):
        """The point of damping: at a step size where plain Leashed-SGD
        under heavy staleness goes unstable, the adaptive variant's
        effective step shrinks with tau and the run stays finite."""
        from repro.core.problem import QuadraticProblem

        # eta*h = 1.9: stable sequentially, but amplified by staleness.
        problem = QuadraticProblem(32, h=1.0, b=0.0, noise_sigma=0.0, dtype=np.float64)
        cost = CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3)
        kwargs = dict(m=12, problem=problem, cost=cost, eta=1.9, seed=8,
                      epsilons=(0.5, 0.05), target_epsilon=0.05,
                      max_updates=4_000, max_virtual_time=50.0)
        plain = run_algorithm("LSH_psinf", **kwargs)
        adaptive = run_algorithm("LSH_ADAPT_psinf", **kwargs)
        plain_final = plain.report.final_loss
        adaptive_final = adaptive.report.final_loss
        assert np.isfinite(adaptive_final)
        # Adaptive must end at least as close to the optimum.
        assert adaptive_final <= plain_final or not np.isfinite(plain_final)
