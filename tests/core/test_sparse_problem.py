"""Tests for the sparse logistic-regression problem (HOGWILD!'s
original regime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SparseLogisticProblem
from repro.errors import ConfigurationError


@pytest.fixture
def problem():
    return SparseLogisticProblem(
        d=128, n_samples=512, nnz_per_sample=6, batch_size=8, l2=1e-3, seed=4
    )


class TestConstruction:
    def test_dimension(self, problem):
        assert problem.d == 128

    def test_support_shape(self, problem):
        assert problem.indices.shape == (512, 6)
        assert problem.values.shape == (512, 6)
        assert problem.labels.shape == (512,)

    def test_supports_are_within_range_and_unique(self, problem):
        assert problem.indices.min() >= 0 and problem.indices.max() < 128
        for row in problem.indices[:50]:
            assert len(set(row.tolist())) == len(row)

    def test_labels_binary(self, problem):
        assert set(np.unique(problem.labels)) <= {0.0, 1.0}

    def test_deterministic_by_seed(self):
        a = SparseLogisticProblem(d=64, n_samples=100, seed=7)
        b = SparseLogisticProblem(d=64, n_samples=100, seed=7)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.labels, b.labels)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d": 0},
            {"nnz_per_sample": 0},
            {"nnz_per_sample": 9999},
            {"l2": -1.0},
            {"batch_size": 0},
            {"n_samples": 0},
        ],
    )
    def test_invalid_args(self, kwargs):
        base = dict(d=32, n_samples=16, nnz_per_sample=4, batch_size=4)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            SparseLogisticProblem(**base)


class TestGradients:
    def test_init_is_zero(self, problem):
        theta = problem.init_theta(np.random.default_rng(0))
        np.testing.assert_array_equal(theta, 0.0)
        # loss at zero weights is exactly log 2 per sample (+0 reg)
        assert problem.eval_loss(theta) == pytest.approx(np.log(2.0))

    def test_gradient_is_sparse_plus_regularizer(self, problem):
        theta = np.zeros(problem.d)
        grad_fn = problem.make_grad_fn(np.random.default_rng(0))
        out = np.empty(problem.d)
        grad_fn(theta, out)
        # With theta=0 the regularizer term vanishes; support of the
        # gradient is at most batch * nnz coordinates.
        assert np.count_nonzero(out) <= problem.batch_size * problem.nnz

    def test_matches_numeric_gradient_in_expectation(self):
        """Full-batch gradient (batch = n_samples with replacement is
        stochastic; instead check the analytic per-sample formula
        against finite differences of the eval loss on a tiny case with
        l2 only, by zeroing the data term)."""
        problem = SparseLogisticProblem(d=10, n_samples=4, nnz_per_sample=3,
                                        batch_size=4, l2=0.1, seed=1)
        rng = np.random.default_rng(2)
        theta = rng.normal(size=10)
        # expectation of the stochastic gradient = full-batch gradient:
        grad_fn = problem.make_grad_fn(np.random.default_rng(3))
        out = np.empty(10)
        samples = np.zeros(10)
        n_draws = 4000
        for _ in range(n_draws):
            grad_fn(theta, out)
            samples += out
        samples /= n_draws
        eps = 1e-6
        numeric = np.zeros(10)
        for i in range(10):
            tp = theta.copy(); tp[i] += eps
            tm = theta.copy(); tm[i] -= eps
            numeric[i] = (problem.eval_loss(tp) - problem.eval_loss(tm)) / (2 * eps)
        np.testing.assert_allclose(samples, numeric, atol=0.05)

    def test_sgd_reduces_loss_and_improves_accuracy(self, problem):
        rng = np.random.default_rng(0)
        theta = problem.init_theta(rng)
        grad_fn = problem.make_grad_fn(rng)
        g = np.empty(problem.d)
        loss0 = problem.eval_loss(theta)
        for _ in range(3000):
            grad_fn(theta, g)
            theta -= 0.5 * g
        assert problem.eval_loss(theta) < 0.8 * loss0
        assert problem.eval_accuracy(theta) > 0.7

    def test_nonfinite_theta_detected(self, problem):
        theta = problem.init_theta(np.random.default_rng(0))
        theta[3] = np.inf
        assert np.isnan(problem.eval_loss(theta))
        assert np.isnan(problem.eval_accuracy(theta))
