"""Tests for the algorithm registry: paper-label parsing of
``make_algorithm`` and extension via ``register_algorithm``."""

from __future__ import annotations

import pytest

from repro.core.base import ALGORITHMS, _FACTORIES, make_algorithm, register_algorithm
from repro.core.leashed import LeashedSGD
from repro.errors import ConfigurationError


class TestNameParsing:
    @pytest.mark.parametrize("k", [0, 1, 7, 42, 1000])
    def test_lsh_ps_k_parses_persistence(self, k):
        alg = make_algorithm(f"LSH_ps{k}")
        assert isinstance(alg, LeashedSGD)
        assert alg.persistence == k
        assert alg.name == f"LSH_ps{k}"

    def test_lsh_psinf_is_unbounded(self):
        alg = make_algorithm("LSH_psinf")
        assert isinstance(alg, LeashedSGD)
        assert alg.persistence == float("inf")

    def test_paper_set_round_trips_names(self):
        for name in ALGORITHMS:
            assert make_algorithm(name).name == name

    @pytest.mark.parametrize(
        "name",
        [
            "SGD_MAGIC",
            "LSH",            # missing persistence suffix
            "LSH_ps",         # empty persistence
            "LSH_ps-1",       # negative not part of the grammar
            "LSH_ps1.5",      # non-integer
            "LSH_psInf",      # case-sensitive
            "lsh_ps1",
            "LSH_ps1 ",       # fullmatch: no trailing junk
            "",
        ],
    )
    def test_unknown_names_rejected(self, name):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            make_algorithm(name)

    def test_error_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="LSH_ps<k>"):
            make_algorithm("nope")


class TestRegisterAlgorithm:
    def test_registered_factory_round_trips(self):
        sentinel = LeashedSGD(persistence=3)
        register_algorithm("MY_ALG", lambda: sentinel)
        try:
            assert make_algorithm("MY_ALG") is sentinel
        finally:
            del _FACTORIES["MY_ALG"]

    def test_registered_name_shadows_pattern(self):
        # An explicit registration wins over the LSH_ps<k> grammar.
        sentinel = LeashedSGD(persistence=99)
        register_algorithm("LSH_ps5", lambda: sentinel)
        try:
            assert make_algorithm("LSH_ps5") is sentinel
        finally:
            del _FACTORIES["LSH_ps5"]
        # ... and the grammar is back once unregistered.
        assert make_algorithm("LSH_ps5").persistence == 5

    def test_factory_called_per_instantiation(self):
        calls = []

        def factory():
            calls.append(1)
            return LeashedSGD(persistence=0)

        register_algorithm("COUNTED", factory)
        try:
            a = make_algorithm("COUNTED")
            b = make_algorithm("COUNTED")
        finally:
            del _FACTORIES["COUNTED"]
        assert len(calls) == 2
        assert a is not b
