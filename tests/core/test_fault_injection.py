"""Failure injection: the operational meaning of lock-freedom.

The paper's progress claim (Lemma 1) is that Leashed-SGD's reads and
updates are lock-free: *some* thread completes in a bounded number of
steps regardless of what other threads do. We test that claim the way
the definition does — by freezing a thread at the worst possible moment
and checking whether the rest of the system keeps publishing updates:

* ASYNC with a worker frozen **while holding the global mutex**: every
  other worker eventually parks on the lock and the system publishes
  nothing more.
* Leashed-SGD with a worker frozen anywhere (even mid-LAU-SPC, holding
  a pinned ParameterVector): the others keep publishing and the run
  still converges. A pinned-but-frozen reader only delays recycling of
  one instance (bounded memory impact), never progress.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SGDContext, make_algorithm
from repro.core.convergence import ConvergenceMonitor, RunStatus
from repro.core.problem import QuadraticProblem
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.trace import TraceRecorder
from repro.utils.rng import RngFactory


def run_with_fault(algorithm_name, *, m=6, freeze_tid=2, freeze_time=0.02, seed=5):
    """Run an execution, freezing worker ``freeze_tid`` at
    ``freeze_time`` (virtual seconds), and report what happened."""
    problem = QuadraticProblem(48, h=1.0, b=2.0, noise_sigma=0.05)
    cost = CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3)
    factory = RngFactory(seed)
    scheduler = Scheduler(factory.named("sched"), SchedulerConfig())
    trace = TraceRecorder()
    memory = MemoryAccountant(lambda: scheduler.now)
    ctx = SGDContext(
        problem=problem, cost=cost, eta=0.05, scheduler=scheduler,
        trace=trace, memory=memory, rng_factory=factory, dtype=np.float64,
    )
    algorithm = make_algorithm(algorithm_name)
    algorithm.setup(ctx, problem.init_theta(factory.named("init")))
    monitor = ConvergenceMonitor(
        eval_fn=lambda: problem.eval_loss(algorithm.snapshot_theta(ctx)),
        n_updates_fn=lambda: trace.n_updates,
        epsilons=(0.5, 0.01), target_epsilon=0.01,
        eval_interval=cost.tc,
        max_updates=100_000, max_virtual_time=2.0, max_wall_seconds=30.0,
        stop_fn=scheduler.stop, now_fn=lambda: scheduler.now,
    )
    workers = algorithm.spawn_workers(ctx, m)
    scheduler.spawn("monitor", lambda thread: monitor.body())
    scheduler.suspend_after(workers[freeze_tid], freeze_time)
    scheduler.run()
    scheduler.close()
    # Updates published strictly after the freeze point:
    updates_after = sum(1 for u in trace.updates if u.time > freeze_time)
    return {
        "status": monitor.report.status,
        "updates_after_freeze": updates_after,
        "suspended": [t.name for t in scheduler.suspended_threads],
        "trace": trace,
        "memory": memory,
    }


class TestLockBasedStallsUnderFault:
    def test_frozen_lock_holder_halts_all_progress(self):
        """With the mutex frozen in a dead thread's hand, the paper's
        Algorithm 2 makes no further system-wide progress."""
        # Freeze timing tuned so the victim holds the lock: with Tc=5ms,
        # read critical sections happen in the first millisecond and the
        # first update CS around t ~ 6-7ms. Scan a few freeze times and
        # require that at least one traps the mutex.
        trapped = False
        for freeze_time in (0.0002, 0.0005, 0.001, 0.002, 0.0065, 0.007):
            out = run_with_fault("ASYNC", freeze_time=freeze_time)
            assert out["suspended"], "fault was not injected"
            if out["status"] is RunStatus.DIVERGED and out["updates_after_freeze"] <= 6:
                trapped = True
                break
        assert trapped, "no freeze point trapped the mutex (adjust timings)"

    def test_frozen_worker_outside_cs_is_harmless(self):
        """Freezing an ASYNC worker while it merely computes (lock free
        in its hand) only removes one worker's throughput."""
        out = run_with_fault("ASYNC", freeze_time=0.004)  # mid-Tc
        assert out["status"] is RunStatus.CONVERGED
        assert out["updates_after_freeze"] > 20


class TestLeashedProgressesUnderFault:
    @pytest.mark.parametrize("freeze_time", [0.0005, 0.001, 0.0035, 0.006])
    def test_system_progress_despite_frozen_worker(self, freeze_time):
        out = run_with_fault("LSH_psinf", freeze_time=freeze_time)
        assert out["suspended"], "fault was not injected"
        assert out["status"] is RunStatus.CONVERGED
        assert out["updates_after_freeze"] > 20

    def test_frozen_reader_pins_at_most_one_extra_instance(self):
        out = run_with_fault("LSH_psinf", freeze_time=0.002)
        # 3m + 1 transient + 1 instance pinned forever by the dead reader.
        assert out["memory"].peak_count <= 3 * 6 + 2

    def test_hogwild_also_progresses(self):
        # Synchronization-free: trivially fault-tolerant for progress.
        out = run_with_fault("HOG", freeze_time=0.002)
        assert out["updates_after_freeze"] > 20

    def test_sync_sgd_stalls_on_dead_worker(self):
        """The barrier never completes once a party is dead — the
        lock-step pathology the paper's Section I describes."""
        out = run_with_fault("SYNC", freeze_time=0.002)
        assert out["status"] is RunStatus.DIVERGED
        assert out["updates_after_freeze"] <= 1


class TestSuspendMechanism:
    def test_suspend_before_start_freezes_immediately(self):
        out = run_with_fault("LSH_psinf", freeze_time=0.0)
        assert out["suspended"]

    def test_far_future_suspension_never_triggers(self):
        out = run_with_fault("LSH_psinf", freeze_time=1e9)
        assert not out["suspended"]
        assert out["status"] is RunStatus.CONVERGED
