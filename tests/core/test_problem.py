"""Tests for the Problem implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import DLProblem, QuadraticProblem
from repro.errors import ConfigurationError
from repro.nn import mlp_custom


class TestQuadraticProblem:
    def test_optimum_has_zero_loss(self):
        p = QuadraticProblem(8, h=2.0, b=3.0, noise_sigma=0.0)
        assert p.eval_loss(p.theta_star) == 0.0

    def test_loss_positive_away_from_optimum(self):
        p = QuadraticProblem(8, h=1.0, b=0.0, noise_sigma=0.0)
        assert p.eval_loss(np.ones(8)) == pytest.approx(4.0)

    def test_noiseless_gradient_exact(self):
        p = QuadraticProblem(4, h=2.0, b=1.0, noise_sigma=0.0)
        grad_fn = p.make_grad_fn(np.random.default_rng(0))
        theta = np.array([2.0, 0.0, 1.0, -1.0])
        out = np.empty(4)
        grad_fn(theta, out)
        np.testing.assert_allclose(out, 2.0 * (theta - 1.0))

    def test_noisy_gradient_unbiased(self):
        p = QuadraticProblem(4, h=1.0, b=0.0, noise_sigma=0.5)
        grad_fn = p.make_grad_fn(np.random.default_rng(0))
        theta = np.ones(4)
        samples = []
        out = np.empty(4)
        for _ in range(2000):
            grad_fn(theta, out)
            samples.append(out.copy())
        mean = np.mean(samples, axis=0)
        np.testing.assert_allclose(mean, theta, atol=0.05)

    def test_init_theta_on_sphere(self):
        p = QuadraticProblem(16, b=2.0, init_radius=3.0)
        theta = p.init_theta(np.random.default_rng(0))
        assert np.linalg.norm(theta - p.theta_star) == pytest.approx(3.0)

    def test_nonfinite_theta_gives_nan_loss(self):
        p = QuadraticProblem(4)
        assert np.isnan(p.eval_loss(np.array([1.0, np.inf, 0.0, 0.0])))

    def test_gd_converges(self):
        p = QuadraticProblem(8, h=1.0, b=5.0, noise_sigma=0.0)
        theta = p.init_theta(np.random.default_rng(1))
        grad_fn = p.make_grad_fn(np.random.default_rng(2))
        g = np.empty(8)
        for _ in range(200):
            grad_fn(theta, g)
            theta -= 0.1 * g
        assert p.eval_loss(theta) < 1e-6

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            QuadraticProblem(4, h=-1.0)
        with pytest.raises(ConfigurationError):
            QuadraticProblem(4, noise_sigma=-0.1)

    def test_anisotropic_curvature(self):
        h = np.array([1.0, 10.0])
        p = QuadraticProblem(2, h=h, b=0.0, noise_sigma=0.0)
        assert p.eval_loss(np.array([1.0, 0.0])) < p.eval_loss(np.array([0.0, 1.0]))


@pytest.fixture
def dl_problem():
    rng = np.random.default_rng(0)
    net = mlp_custom(6, (8,), 3)
    x = rng.normal(size=(64, 6)).astype(np.float32)
    y = rng.integers(0, 3, size=64)
    return DLProblem(net, x, y, x[:16], y[:16], batch_size=8, dtype=np.float64)


class TestDLProblem:
    def test_dimension(self, dl_problem):
        assert dl_problem.d == dl_problem.network.n_params

    def test_init_theta_shape_and_dtype(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        assert theta.shape == (dl_problem.d,) and theta.dtype == np.float64

    def test_grad_fn_deterministic_per_stream(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        g1, g2 = np.empty(dl_problem.d), np.empty(dl_problem.d)
        dl_problem.make_grad_fn(np.random.default_rng(7))(theta, g1)
        dl_problem.make_grad_fn(np.random.default_rng(7))(theta, g2)
        np.testing.assert_array_equal(g1, g2)

    def test_grad_fn_streams_differ(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        g1, g2 = np.empty(dl_problem.d), np.empty(dl_problem.d)
        dl_problem.make_grad_fn(np.random.default_rng(1))(theta, g1)
        dl_problem.make_grad_fn(np.random.default_rng(2))(theta, g2)
        assert not np.array_equal(g1, g2)

    def test_eval_loss_finite(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        assert np.isfinite(dl_problem.eval_loss(theta))

    def test_eval_loss_nan_for_broken_theta(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        theta[0] = np.nan
        assert np.isnan(dl_problem.eval_loss(theta))

    def test_eval_accuracy_in_unit_interval(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        acc = dl_problem.eval_accuracy(theta)
        assert 0.0 <= acc <= 1.0

    def test_accuracy_nan_for_broken_theta(self, dl_problem):
        theta = dl_problem.init_theta(np.random.default_rng(0))
        theta[:] = np.inf
        assert np.isnan(dl_problem.eval_accuracy(theta))

    def test_mismatched_data_rejected(self):
        net = mlp_custom(4, (3,), 2)
        x = np.zeros((10, 4))
        with pytest.raises(ConfigurationError):
            DLProblem(net, x, np.zeros(9, dtype=int), x, np.zeros(10, dtype=int))
        with pytest.raises(ConfigurationError):
            DLProblem(net, x, np.zeros(10, dtype=int), x, np.zeros(9, dtype=int))

    def test_sgd_on_dl_problem_descends(self, dl_problem):
        rng = np.random.default_rng(0)
        theta = dl_problem.init_theta(rng)
        grad_fn = dl_problem.make_grad_fn(rng)
        g = np.empty(dl_problem.d)
        initial = dl_problem.eval_loss(theta)
        for _ in range(300):
            grad_fn(theta, g)
            theta -= 0.1 * g
        assert dl_problem.eval_loss(theta) < initial
