"""Tests for the elastic-consistency instrumentation (view divergence,
Alistarh et al. [2])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SGDContext, make_algorithm
from repro.core.convergence import ConvergenceMonitor
from repro.core.problem import QuadraticProblem
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.trace import TraceRecorder
from repro.utils.rng import RngFactory


def run_instrumented(algorithm_name, *, m=6, seed=3, measure=True):
    problem = QuadraticProblem(64, h=1.0, b=2.0, noise_sigma=0.05)
    cost = CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3)
    factory = RngFactory(seed)
    scheduler = Scheduler(factory.named("sched"), SchedulerConfig())
    trace = TraceRecorder()
    memory = MemoryAccountant(lambda: scheduler.now)
    ctx = SGDContext(
        problem=problem, cost=cost, eta=0.05, scheduler=scheduler,
        trace=trace, memory=memory, rng_factory=factory, dtype=np.float64,
        measure_view_divergence=measure,
    )
    algorithm = make_algorithm(algorithm_name)
    algorithm.setup(ctx, problem.init_theta(factory.named("init")))
    monitor = ConvergenceMonitor(
        eval_fn=lambda: problem.eval_loss(algorithm.snapshot_theta(ctx)),
        n_updates_fn=lambda: trace.n_updates,
        epsilons=(0.5, 0.01), target_epsilon=0.01,
        eval_interval=cost.tc,
        max_updates=50_000, max_virtual_time=100.0, max_wall_seconds=30.0,
        stop_fn=scheduler.stop, now_fn=lambda: scheduler.now,
    )
    algorithm.spawn_workers(ctx, m)
    scheduler.spawn("monitor", lambda thread: monitor.body())
    scheduler.run()
    scheduler.close()
    return trace


class TestInstrumentation:
    def test_off_by_default(self):
        trace = run_instrumented("ASYNC", measure=False)
        assert trace.view_divergences == []
        assert np.isnan(trace.view_divergence_summary()["mean"])

    @pytest.mark.parametrize("name", ["ASYNC", "HOG", "LSH_psinf", "LSH_ps0"])
    def test_records_when_enabled(self, name):
        trace = run_instrumented(name)
        assert len(trace.view_divergences) > 0
        summary = trace.view_divergence_summary()
        assert np.isfinite(summary["mean"]) and summary["mean"] >= 0

    def test_parallel_views_do_diverge(self):
        trace = run_instrumented("ASYNC", m=8)
        assert trace.view_divergence_summary()["max"] > 0

    def test_divergence_grows_with_parallelism(self):
        low = run_instrumented("HOG", m=2).view_divergence_summary()["mean"]
        high = run_instrumented("HOG", m=12).view_divergence_summary()["mean"]
        assert high > low

    def test_sequential_divergence_zero(self):
        trace = run_instrumented("SEQ", m=1)
        # SEQ records nothing (it has no view/apply gap by construction)
        # or only zeros; both mean no divergence.
        values = [r.l2 for r in trace.view_divergences]
        assert all(v == 0.0 for v in values)

    def test_bounded_by_eta_times_staleness_scale(self):
        """Elastic consistency: the divergence is the sum of at most
        tau stale updates of magnitude <= eta * ||grad||, so its scale
        is bounded by eta * tau_max * max-gradient-norm."""
        trace = run_instrumented("ASYNC", m=8)
        tau_max = trace.staleness_values().max()
        # gradient norm on this problem is bounded by h * ||theta - b|| + noise
        # <= ~ (5 + noise) * sqrt(d) conservatively; use a loose cap.
        bound = 0.05 * max(tau_max, 1) * 10.0
        assert trace.view_divergence_summary()["max"] <= bound
