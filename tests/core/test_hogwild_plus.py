"""Tests for HOGWILD!++ (decentralized cluster replicas + mixing token)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import make_algorithm
from repro.core.convergence import RunStatus
from repro.core.hogwild_plus import HogwildPlusPlus
from repro.errors import ConfigurationError

from tests.core.conftest import run_algorithm


class TestConstruction:
    def test_registered_names(self):
        assert make_algorithm("HOGPP_c2").n_clusters == 2
        assert make_algorithm("HOGPP_c4").n_clusters == 4

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            HogwildPlusPlus(0)
        with pytest.raises(ConfigurationError):
            HogwildPlusPlus(2, mix=0.0)
        with pytest.raises(ConfigurationError):
            HogwildPlusPlus(2, mix=1.5)
        with pytest.raises(ConfigurationError):
            HogwildPlusPlus(2, sync_period=-1.0)


class TestBehaviour:
    def test_converges(self):
        execution = run_algorithm("HOGPP_c2", m=8)
        assert execution.report.status is RunStatus.CONVERGED

    def test_converges_with_four_clusters(self):
        execution = run_algorithm("HOGPP_c4", m=8)
        assert execution.report.status is RunStatus.CONVERGED

    def test_replicas_plus_token_memory(self):
        execution = run_algorithm("HOGPP_c2", m=8)
        # 2 replicas + 1 token + 2 per worker (local_param, local_grad)
        assert execution.memory.peak_count == 2 + 1 + 2 * 8

    def test_single_cluster_degenerates_to_hogwild_shape(self):
        execution = run_algorithm("HOGPP_c1", m=4)
        assert execution.report.status is RunStatus.CONVERGED

    def test_token_sees_all_clusters_progress(self):
        """The monitored (token) model converges even though no worker
        ever writes it directly — progress flows only through visits."""
        execution = run_algorithm("HOGPP_c2", m=6, seed=9)
        assert execution.report.final_loss < 0.1 * execution.report.initial_loss

    def test_deterministic(self):
        a = run_algorithm("HOGPP_c2", m=4, seed=5)
        b = run_algorithm("HOGPP_c2", m=4, seed=5)
        np.testing.assert_array_equal(a.final_theta(), b.final_theta())

    def test_cluster_isolation_reduces_effective_contention(self):
        """Each cluster's coherence domain contains only its own
        workers: with 2 clusters of 4, no bulk access ever sees more
        than 3 concurrent peers."""
        execution = run_algorithm("HOGPP_c2", m=8, seed=7)
        assert execution.report.status is RunStatus.CONVERGED


def _register_c1():
    from repro.core.base import register_algorithm

    register_algorithm("HOGPP_c1", lambda: HogwildPlusPlus(1))


_register_c1()
