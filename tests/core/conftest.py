"""Helpers for algorithm-level tests: build and run one simulated
execution with full instrumentation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.base import SGDContext, make_algorithm
from repro.core.convergence import ConvergenceMonitor
from repro.core.problem import Problem, QuadraticProblem
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.trace import TraceRecorder
from repro.utils.rng import RngFactory


@dataclass
class Execution:
    """One finished simulated run, with its instruments exposed."""

    algorithm: object
    ctx: SGDContext
    scheduler: Scheduler
    trace: TraceRecorder
    memory: MemoryAccountant
    monitor: ConvergenceMonitor

    @property
    def report(self):
        return self.monitor.report

    def final_theta(self) -> np.ndarray:
        return np.array(self.algorithm.snapshot_theta(self.ctx))


def run_algorithm(
    name: str,
    *,
    m: int = 4,
    problem: Problem | None = None,
    cost: CostModel | None = None,
    eta: float = 0.05,
    seed: int = 1,
    epsilons=(0.5, 0.01),
    target_epsilon=0.01,
    max_updates: int = 50_000,
    max_virtual_time: float = 500.0,
    jitter_sigma: float = 0.08,
    dtype=np.float64,
    problem_wrapper=None,
    arena=None,
    probes=(),
) -> Execution:
    """Build and run one execution; returns all instruments.

    ``probes`` takes already-constructed probe instances (bus
    subscribers); they are attached to ``ctx.probes`` before workers
    spawn, exactly as ``run_once`` does for named probes.
    """
    problem = problem or QuadraticProblem(48, h=1.0, b=2.0, noise_sigma=0.05)
    if problem_wrapper is not None:
        problem = problem_wrapper(problem)
    cost = cost or CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3, n_chunks=8)
    factory = RngFactory(seed)
    scheduler = Scheduler(
        factory.named("scheduler"),
        SchedulerConfig(jitter_sigma=jitter_sigma, speed_spread_sigma=0.05),
    )
    trace = TraceRecorder()
    memory = MemoryAccountant(lambda: scheduler.now)
    ctx = SGDContext(
        problem=problem, cost=cost, eta=eta, scheduler=scheduler,
        trace=trace, memory=memory, rng_factory=factory, dtype=dtype,
        arena=arena,
    )
    for probe in probes:
        ctx.probes.attach(probe)
    algorithm = make_algorithm(name)
    algorithm.setup(ctx, problem.init_theta(factory.named("init")))
    monitor = ConvergenceMonitor(
        eval_fn=lambda: problem.eval_loss(algorithm.snapshot_theta(ctx)),
        n_updates_fn=lambda: trace.n_updates,
        epsilons=epsilons,
        target_epsilon=target_epsilon,
        eval_interval=cost.tc,
        max_virtual_time=max_virtual_time,
        max_updates=max_updates,
        max_wall_seconds=60.0,
        stop_fn=scheduler.stop,
        now_fn=lambda: scheduler.now,
    )
    algorithm.spawn_workers(ctx, m)
    scheduler.spawn("monitor", lambda thread: monitor.body())
    scheduler.run()
    scheduler.close()
    return Execution(algorithm, ctx, scheduler, trace, memory, monitor)


class ViewRecordingProblem(Problem):
    """Wraps a problem, recording the 'tear' (max - min component) of
    every parameter view handed to a gradient computation. On a uniform
    quadratic whose consistent iterates keep all components equal, any
    positive tear proves the view was inconsistent (torn)."""

    def __init__(self, inner: Problem) -> None:
        self.inner = inner
        self.tears: list[float] = []

    @property
    def d(self) -> int:
        return self.inner.d

    def init_theta(self, rng):
        return self.inner.init_theta(rng)

    def make_grad_fn(self, rng):
        inner_fn = self.inner.make_grad_fn(rng)

        def grad_fn(theta, out):
            self.tears.append(float(theta.max() - theta.min()))
            inner_fn(theta, out)

        return grad_fn

    def eval_loss(self, theta):
        return self.inner.eval_loss(theta)


class EqualComponentQuadratic(QuadraticProblem):
    """Uniform quadratic started at ``theta = start * ones``: with no
    gradient noise, every *consistent* execution keeps all components
    identical forever (each atomic update scales the whole vector), so a
    non-zero component spread in any observed view proves tearing."""

    def __init__(self, d: int = 64, start: float = 5.0) -> None:
        super().__init__(d, h=1.0, b=0.0, noise_sigma=0.0)
        self.start = start

    def init_theta(self, rng):
        return np.full(self.d, self.start, dtype=self.dtype)


@pytest.fixture
def uniform_quadratic():
    return EqualComponentQuadratic()
