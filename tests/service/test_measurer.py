"""Measurer: journal roundtrip, idempotent ingestion, merged outputs."""

from __future__ import annotations

import pytest

from repro.harness.cache import simulation_fingerprint
from repro.harness.runner import run_once
from repro.service.measurer import Measurer
from repro.service.scheduler import run_key, workload_key
from repro.telemetry.jsonl import result_to_line

from tests.service.conftest import make_config


@pytest.fixture(scope="module")
def runs(problem, cost):
    configs = [make_config(seed=s) for s in range(3)]
    wkey = workload_key(problem, cost)
    return wkey, [
        (run_key(wkey, config), run_once(problem, cost, config))
        for config in configs
    ]


class TestVolatile:
    def test_ingest_and_get(self, runs):
        wkey, items = runs
        m = Measurer()
        m.ingest(wkey, items)
        assert len(m) == 3
        for key, result in items:
            assert m.has(key)
            assert m.get(key) is result

    def test_reingest_is_idempotent(self, runs):
        wkey, items = runs
        m = Measurer()
        m.ingest(wkey, items)
        first = m.get(items[0][0])
        m.ingest(wkey, items)
        assert len(m) == 3
        assert m.get(items[0][0]) is first


class TestDurable:
    def test_journal_roundtrip_is_bitwise(self, tmp_path, runs):
        wkey, items = runs
        m = Measurer(tmp_path)
        m.ingest(wkey, items)
        m.close()

        replayed = Measurer(tmp_path)
        assert replayed.load_workload(wkey) == 3
        for key, result in items:
            restored = replayed.get(key)
            assert simulation_fingerprint(restored) == \
                simulation_fingerprint(result)
            assert result_to_line(restored) == result_to_line(result)
        replayed.close()

    def test_reingest_after_replay_appends_nothing(self, tmp_path, runs):
        wkey, items = runs
        m = Measurer(tmp_path)
        m.ingest(wkey, items)
        m.close()
        path = tmp_path / f"results-{wkey}.jsonl"
        size = path.stat().st_size

        replayed = Measurer(tmp_path)
        replayed.load_workload(wkey)
        replayed.ingest(wkey, items)
        replayed.close()
        assert path.stat().st_size == size

    def test_corrupt_row_skipped_with_warning(self, tmp_path, runs):
        wkey, items = runs
        m = Measurer(tmp_path)
        m.ingest(wkey, items)
        m.close()
        path = tmp_path / f"results-{wkey}.jsonl"
        with path.open("a") as fh:
            fh.write('{"half a ro')  # torn by a crash mid-append
        replayed = Measurer(tmp_path)
        with pytest.warns(RuntimeWarning, match="skipping unreadable row"):
            assert replayed.load_workload(wkey) == 3
        replayed.close()


class TestMerged:
    def test_fingerprint_is_order_sensitive(self, runs):
        wkey, items = runs
        m = Measurer()
        m.ingest(wkey, items)
        order = [key for key, _ in items]
        assert m.merged_fingerprint(order) != \
            m.merged_fingerprint(list(reversed(order)))

    def test_write_merged_in_submission_order(self, tmp_path, runs):
        wkey, items = runs
        m = Measurer()
        m.ingest(wkey, items)
        order = [key for key, _ in items]
        path = m.write_merged(order, tmp_path / "merged.jsonl")
        lines = path.read_text().splitlines()
        assert lines == [result_to_line(result) for _, result in items]
