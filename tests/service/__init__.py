"""Tests for the experiment service (queue / scheduler / dispatcher /
measurer)."""
