"""Scheduler identity: run keys, task ids, cohort grouping, dedup."""

from __future__ import annotations

from dataclasses import replace

from repro.core.problem import QuadraticProblem
from repro.service.queue import TaskQueue
from repro.service.scheduler import (
    SweepScheduler,
    run_key,
    task_id_for,
    workload_key,
)

from tests.service.conftest import make_config


class TestWorkloadKey:
    def test_same_workload_same_key(self, problem, cost):
        assert workload_key(problem, cost) == workload_key(problem, cost)

    def test_different_problem_different_key(self, problem, cost):
        other = QuadraticProblem(16, h=1.0, b=1.0, noise_sigma=0.1)
        assert workload_key(problem, cost) != workload_key(other, cost)

    def test_different_cost_different_key(self, problem, cost):
        other = replace(cost, tc=cost.tc * 2)
        assert workload_key(problem, cost) != workload_key(problem, other)

    def test_run_key_embeds_workload(self, problem, cost):
        # The S5 shape: identical configs against two workloads must not
        # collide — config_hash alone is not a run identity.
        config = make_config()
        other = QuadraticProblem(16, h=1.0, b=1.0, noise_sigma=0.1)
        k1 = run_key(workload_key(problem, cost), config)
        k2 = run_key(workload_key(other, cost), config)
        assert k1 != k2
        assert k1.split(":")[1] == k2.split(":")[1]  # same config half


class TestExpansion:
    def test_deterministic_task_ids(self, problem, cost):
        configs = [make_config(seed=s) for s in range(4)]
        a = SweepScheduler(replicas=2).expand(problem, cost, configs)
        b = SweepScheduler(replicas=2).expand(problem, cost, configs)
        assert [t.task_id for t in a] == [t.task_id for t in b]

    def test_replicas_bound_cohort_size(self, problem, cost):
        configs = [make_config(seed=s) for s in range(5)]
        planned = SweepScheduler(replicas=2).expand(problem, cost, configs)
        assert [len(t) for t in planned] == [2, 2, 1]
        assert sorted(i for t in planned for i in t.indices) == list(range(5))

    def test_singleton_tasks_with_replicas_one(self, problem, cost):
        configs = [make_config(seed=s) for s in range(3)]
        planned = SweepScheduler(replicas=1).expand(problem, cost, configs)
        assert [len(t) for t in planned] == [1, 1, 1]

    def test_duplicate_configs_collapse(self, problem, cost):
        config = make_config(seed=0)
        planned = SweepScheduler(replicas=1).expand(
            problem, cost, [config, config, make_config(seed=1)]
        )
        assert sum(len(t) for t in planned) == 2  # one box per unique run

    def test_task_id_hashes_ordered_run_keys(self):
        assert task_id_for(["a", "b"]) != task_id_for(["b", "a"])
        assert task_id_for(["a", "b"]).startswith("t-")


class TestScheduling:
    def test_schedule_counts_only_new(self, problem, cost):
        configs = [make_config(seed=s) for s in range(4)]
        scheduler = SweepScheduler(replicas=2)
        planned = scheduler.expand(problem, cost, configs)
        queue = TaskQueue()
        assert scheduler.schedule(queue, planned) == 2
        # Re-scheduling the same sweep is a no-op: the resume property.
        assert scheduler.schedule(queue, planned) == 0
        assert len(queue) == 2
