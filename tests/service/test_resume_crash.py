"""Crash/resume end to end: SIGKILL-grade death mid-sweep, then resume.

The child process runs a small durable sweep with
``REPRO_SERVICE_KILL_AFTER=N`` so the dispatcher hard-exits
(``os._exit(17)``) right after journalling its N-th box — the worst
survivable instant. The resumed run must re-execute only the unfinished
boxes and produce a ``merged.jsonl`` identical to an uninterrupted run
modulo the host fields.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.cache import HOST_FIELDS
from repro.service.dispatcher import KILL_AFTER_ENV, KILL_EXIT_CODE

REPO = Path(__file__).resolve().parents[2]

# One sweep, three cohort boxes (replicas=2), with a diverging replica in
# the middle box so resume must preserve mixed statuses bitwise.
CHILD = """
import json, sys
from repro.core.problem import QuadraticProblem
from repro.harness.config import RunConfig
from repro.service import ExperimentService
from repro.sim.cost import CostModel

problem = QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)
cost = CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)

def cfg(seed, eta=0.05, m=2):
    return RunConfig(algorithm="ASYNC", m=m, eta=eta, seed=seed,
                     epsilons=(0.5, 0.1), target_epsilon=0.1,
                     max_updates=400, max_virtual_time=10.0)

configs = [cfg(0), cfg(1),           # box 1: healthy
           cfg(2), cfg(2, eta=50.0),  # box 2: healthy + diverging
           cfg(0, m=4), cfg(1, m=4)]  # box 3: healthy
with ExperimentService(sys.argv[1], workers=1, replicas=2,
                       manifest={"step": "crash-test",
                                 "profile": "quick"}) as service:
    service.map(problem, cost, configs)
    summary = service.finalize()
print(json.dumps({"fingerprint": summary["merged_fingerprint"],
                  "stats": summary["service"]}))
"""


def run_child(run_dir, *, kill_after=None):
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    env.pop(KILL_AFTER_ENV, None)
    if kill_after is not None:
        env[KILL_AFTER_ENV] = str(kill_after)
    return subprocess.run(
        [sys.executable, "-c", CHILD, str(run_dir)],
        env=env, capture_output=True, text=True, timeout=300,
    )


def merged_rows(run_dir):
    """merged.jsonl rows with the host fields stripped."""
    rows = []
    for line in (Path(run_dir) / "merged.jsonl").read_text().splitlines():
        row = json.loads(line)
        for field in HOST_FIELDS:
            row.pop(field, None)
        rows.append(json.dumps(row, sort_keys=True))
    return rows


@pytest.mark.slow
class TestCrashResume:
    def test_kill_after_one_box_then_resume(self, tmp_path):
        full_dir = tmp_path / "full"
        out = run_child(full_dir)
        assert out.returncode == 0, out.stderr
        full = json.loads(out.stdout.strip().splitlines()[-1])
        assert full["stats"]["tasks_executed"] == 3

        killed_dir = tmp_path / "killed"
        out = run_child(killed_dir, kill_after=1)
        assert out.returncode == KILL_EXIT_CODE, (out.returncode, out.stderr)
        # The crash point is after the first box's journal fsync: its
        # rows and its DONE line are on disk, nothing else is.
        journal = (killed_dir / "queue.jsonl").read_text()
        assert journal.count('"op":"done"') == 1
        assert not (killed_dir / "merged.jsonl").exists()

        out = run_child(killed_dir)
        assert out.returncode == 0, out.stderr
        resumed = json.loads(out.stdout.strip().splitlines()[-1])
        # Only the two unfinished boxes re-execute.
        assert resumed["stats"]["tasks_executed"] == 2
        assert resumed["stats"]["tasks_from_journal"] == 1
        assert resumed["stats"]["runs_executed"] == 4
        assert resumed["stats"]["runs_from_journal"] == 2
        # Identical science, down to the merged rows (host fields aside).
        assert resumed["fingerprint"] == full["fingerprint"]
        assert merged_rows(killed_dir) == merged_rows(full_dir)

    def test_kill_twice_then_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        assert run_child(run_dir, kill_after=1).returncode == KILL_EXIT_CODE
        assert run_child(run_dir, kill_after=1).returncode == KILL_EXIT_CODE
        out = run_child(run_dir)
        assert out.returncode == 0, out.stderr
        resumed = json.loads(out.stdout.strip().splitlines()[-1])
        assert resumed["stats"]["tasks_executed"] == 1
        assert resumed["stats"]["tasks_from_journal"] == 2

        full = run_child(tmp_path / "full")
        reference = json.loads(full.stdout.strip().splitlines()[-1])
        assert resumed["fingerprint"] == reference["fingerprint"]
        # Mixed statuses survived the crash/resume cycles.
        statuses = {json.loads(row)["status"]
                    for row in merged_rows(run_dir)}
        assert len(statuses) == 2
