"""The durable task queue: transitions, journal replay, leases, lock."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.service.queue import TaskQueue, TaskState, acquire_run_lock
from repro.telemetry.bus import ProbeBus


def keys(n):
    return tuple(f"wk:{i:02d}" for i in range(n))


class TestTransitions:
    def test_enqueue_lease_done(self):
        q = TaskQueue()
        assert q.enqueue("t-1", keys(2))
        assert q.get("t-1").state is TaskState.PENDING
        task = q.lease("t-1", owner="me", timeout=60)
        assert task.state is TaskState.LEASED
        assert task.attempts == 1
        assert task.owner == "me"
        q.mark_done("t-1", source="executed")
        assert q.get("t-1").state is TaskState.DONE
        assert q.get("t-1").source == "executed"

    def test_enqueue_known_id_is_noop(self):
        q = TaskQueue()
        assert q.enqueue("t-1", keys(2))
        q.lease("t-1", owner="me", timeout=60)
        q.mark_done("t-1", source="cache")
        assert not q.enqueue("t-1", keys(2))
        assert q.get("t-1").state is TaskState.DONE

    def test_lease_requires_pending(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="me", timeout=60)
        with pytest.raises(ConfigurationError, match="cannot lease"):
            q.lease("t-1", owner="me", timeout=60)

    def test_done_requires_leased(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        with pytest.raises(ConfigurationError, match="cannot complete"):
            q.mark_done("t-1", source="executed")

    def test_fail_then_requeue_then_lease_again(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="me", timeout=60)
        q.mark_failed("t-1", error="RuntimeError('boom')")
        assert q.get("t-1").state is TaskState.FAILED
        assert "boom" in q.get("t-1").error
        q.requeue("t-1", reason="retry-failed")
        task = q.lease("t-1", owner="me", timeout=60)
        assert task.attempts == 2

    def test_requeue_pending_is_noop(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        q.requeue("t-1", reason="whatever")
        assert q.get("t-1").state is TaskState.PENDING
        assert q.get("t-1").attempts == 0

    def test_counts_and_len(self):
        q = TaskQueue()
        for i in range(3):
            q.enqueue(f"t-{i}", keys(1))
        q.lease("t-0", owner="me", timeout=60)
        q.mark_done("t-0", source="executed")
        q.lease("t-1", owner="me", timeout=60)
        tally = q.counts()
        assert tally == {"PENDING": 1, "LEASED": 1, "DONE": 1, "FAILED": 0}
        assert len(q) == 3

    def test_tasks_iterates_in_enqueue_order(self):
        q = TaskQueue()
        for name in ("t-b", "t-a", "t-c"):
            q.enqueue(name, keys(1))
        assert [t.task_id for t in q.tasks()] == ["t-b", "t-a", "t-c"]


class TestRecovery:
    def test_foreign_owner_is_orphaned(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="dead-pid", timeout=3600)
        assert q.recover("live-pid") == ["t-1"]
        assert q.get("t-1").state is TaskState.PENDING

    def test_expired_own_lease_is_requeued(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        task = q.lease("t-1", owner="me", timeout=60)
        assert q.recover("me", now=task.lease_deadline + 1) == ["t-1"]
        assert q.get("t-1").state is TaskState.PENDING

    def test_live_own_lease_is_kept(self):
        q = TaskQueue()
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="me", timeout=3600)
        assert q.recover("me") == []
        assert q.get("t-1").state is TaskState.LEASED


class TestJournal:
    def test_replay_restores_state(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        q = TaskQueue(path)
        q.enqueue("t-1", keys(2))
        q.enqueue("t-2", keys(1))
        q.lease("t-1", owner="me", timeout=60)
        q.mark_done("t-1", source="executed")
        q.lease("t-2", owner="me", timeout=60)
        q.close()

        replayed = TaskQueue(path)
        assert replayed.get("t-1").state is TaskState.DONE
        assert replayed.get("t-1").source == "executed"
        assert replayed.get("t-1").run_keys == keys(2)
        assert replayed.get("t-2").state is TaskState.LEASED
        assert replayed.get("t-2").owner == "me"
        replayed.close()

    def test_torn_final_line_dropped_with_warning(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        q = TaskQueue(path)
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="me", timeout=60)
        q.close()
        with path.open("a") as fh:
            fh.write('{"op": "done", "task": "t-1", "sou')  # kill -9 mid-write
        with pytest.warns(RuntimeWarning, match="torn final journal line"):
            replayed = TaskQueue(path)
        # The lost transition re-happens: still LEASED, recoverable.
        assert replayed.get("t-1").state is TaskState.LEASED
        replayed.close()

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        q = TaskQueue(path)
        q.enqueue("t-1", keys(1))
        q.close()
        lines = path.read_text().splitlines()
        lines.insert(0, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt at line 1"):
            TaskQueue(path)

    def test_journal_appends_not_rewrites(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        q = TaskQueue(path)
        q.enqueue("t-1", keys(1))
        q.lease("t-1", owner="me", timeout=60)
        q.mark_done("t-1", source="cache")
        q.close()
        ops = [json.loads(line)["op"] for line in path.read_text().splitlines()]
        assert ops == ["enqueue", "lease", "done"]


class TestBusEvents:
    def test_lifecycle_events_emitted(self):
        bus = ProbeBus()
        seen = []

        class Probe:
            def on_task_enqueued(self, time, task_id, n_runs):
                seen.append(("enqueued", task_id, n_runs))

            def on_task_leased(self, time, task_id, attempt):
                seen.append(("leased", task_id, attempt))

            def on_task_done(self, time, task_id, n_runs, source):
                seen.append(("done", task_id, source))

            def on_task_requeued(self, time, task_id, reason):
                seen.append(("requeued", task_id, reason))

        bus.attach(Probe())
        q = TaskQueue(bus=bus)
        q.enqueue("t-1", keys(2))
        q.lease("t-1", owner="a", timeout=0)
        q.recover("b")
        q.lease("t-1", owner="b", timeout=60)
        q.mark_done("t-1", source="executed")
        assert seen == [
            ("enqueued", "t-1", 2),
            ("leased", "t-1", 1),
            ("requeued", "t-1", "orphaned"),
            ("leased", "t-1", 2),
            ("done", "t-1", "executed"),
        ]


class TestRunLock:
    def test_acquire_and_release(self, tmp_path):
        lock = acquire_run_lock(tmp_path, "owner-a")
        assert lock.exists()
        holder = json.loads(lock.read_text())
        assert holder["pid"] == os.getpid()
        assert holder["owner"] == "owner-a"

    def test_live_pid_conflicts(self, tmp_path, monkeypatch):
        (tmp_path / "LOCK").write_text(json.dumps({"pid": 1, "owner": "x"}))
        monkeypatch.setattr(os, "kill", lambda pid, sig: None)  # pid 1 "alive"
        with pytest.raises(ConfigurationError, match="locked by live pid"):
            acquire_run_lock(tmp_path, "owner-b")

    def test_dead_pid_lock_is_stolen(self, tmp_path):
        (tmp_path / "LOCK").write_text(
            json.dumps({"pid": 2 ** 22 + 12345, "owner": "ghost"})
        )
        lock = acquire_run_lock(tmp_path, "owner-b")
        assert json.loads(lock.read_text())["owner"] == "owner-b"

    def test_torn_lock_is_stolen(self, tmp_path):
        (tmp_path / "LOCK").write_text('{"pid": 123')  # writer died mid-write
        lock = acquire_run_lock(tmp_path, "owner-b")
        assert json.loads(lock.read_text())["owner"] == "owner-b"
