"""Shared fixtures for the service tests: a tiny quadratic workload."""

from __future__ import annotations

import pytest

from repro.core.problem import QuadraticProblem
from repro.harness.config import RunConfig
from repro.sim.cost import CostModel


@pytest.fixture(scope="package")
def problem():
    return QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)


@pytest.fixture(scope="package")
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


def make_config(seed=0, algorithm="ASYNC", m=2, eta=0.05, max_updates=400):
    return RunConfig(
        algorithm=algorithm, m=m, eta=eta, seed=seed,
        epsilons=(0.5, 0.1), target_epsilon=0.1,
        max_updates=max_updates, max_virtual_time=10.0,
    )
