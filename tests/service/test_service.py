"""ExperimentService: the map contract, durable mode, cache interplay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.cache import RunCache, simulation_fingerprint
from repro.harness.parallel import map_runs
from repro.service import ExperimentService, load_manifest
from repro.service.queue import TaskState

from tests.service.conftest import make_config


def fingerprints(results):
    return [simulation_fingerprint(r) for r in results]


class TestMapContract:
    def test_matches_map_runs_bitwise(self, problem, cost):
        configs = [make_config(seed=s, algorithm=a)
                   for a in ("ASYNC", "LSH_ps0") for s in (0, 1)]
        base = map_runs(problem, cost, configs, workers=1, replicas=1)
        with ExperimentService(workers=1, replicas=2) as service:
            got = service.map(problem, cost, configs)
        assert fingerprints(got) == fingerprints(base)

    def test_results_in_submission_order(self, problem, cost):
        configs = [make_config(seed=s) for s in (2, 0, 1)]
        with ExperimentService(workers=1, replicas=2) as service:
            got = service.map(problem, cost, configs)
        assert [r.config.seed for r in got] == [2, 0, 1]

    def test_empty_batch(self, problem, cost):
        with ExperimentService() as service:
            assert service.map(problem, cost, []) == []

    def test_duplicate_configs_run_once(self, problem, cost):
        config = make_config(seed=0)
        with ExperimentService(workers=1, replicas=1) as service:
            got = service.map(problem, cost, [config, config])
            assert service.stats.runs_executed == 1
        assert simulation_fingerprint(got[0]) == simulation_fingerprint(got[1])

    def test_second_map_reuses_journal(self, problem, cost):
        configs = [make_config(seed=s) for s in (0, 1)]
        with ExperimentService(workers=1, replicas=1) as service:
            service.map(problem, cost, configs)
            service.map(problem, cost, configs)
            assert service.stats.runs_executed == 2
            assert service.stats.tasks_from_journal == 2

    def test_mixed_outcomes_preserved(self, problem, cost):
        # One healthy replica, one diverging one, in the same cohort box.
        configs = [make_config(seed=0, eta=0.05),
                   make_config(seed=0, eta=50.0)]
        base = map_runs(problem, cost, configs, workers=1, replicas=1)
        with ExperimentService(workers=1, replicas=2) as service:
            got = service.map(problem, cost, configs)
        assert fingerprints(got) == fingerprints(base)
        assert {r.status.value for r in got} == {r.status.value for r in base}
        assert len({r.status.value for r in got}) == 2


class TestDurableMode:
    def test_run_dir_layout_after_finalize(self, tmp_path, problem, cost):
        configs = [make_config(seed=s) for s in (0, 1)]
        with ExperimentService(
            tmp_path / "run", workers=1, replicas=2,
            manifest={"step": "s1", "profile": "quick"},
        ) as service:
            service.map(problem, cost, configs)
            summary = service.finalize()
        run_dir = tmp_path / "run"
        for name in ("manifest.json", "queue.jsonl", "merged.jsonl",
                     "summary.json", "service_timeline.json"):
            assert (run_dir / name).exists(), name
        assert not (run_dir / "LOCK").exists()  # released on close
        stored = json.loads((run_dir / "summary.json").read_text())
        assert stored["merged_fingerprint"] == summary["merged_fingerprint"]
        assert stored["n_runs"] == 2
        assert stored["queue"]["DONE"] == 1
        # run_keys align 1:1 with merged.jsonl lines (the store's
        # ingester relies on this to attach natural keys).
        assert len(stored["run_keys"]) == 2
        assert all(":" in key for key in stored["run_keys"])

    def test_resume_executes_nothing_when_complete(self, tmp_path, problem,
                                                   cost):
        configs = [make_config(seed=s) for s in (0, 1, 2)]
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            service.map(problem, cost, configs)
            first = service.finalize()
        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            service.map(problem, cost, configs)
            second = service.finalize()
            assert service.stats.runs_executed == 0
            assert service.stats.tasks_from_journal == 2
        assert second["merged_fingerprint"] == first["merged_fingerprint"]

    def test_resume_preserves_service_timeline(self, tmp_path, problem, cost):
        # Journal-served boxes make no queue transitions, so a resume's
        # finalize would otherwise overwrite the trace with an empty
        # recording; finalize must merge with the prior export instead.
        from repro.observe.timeline import validate_chrome_trace

        configs = [make_config(seed=s) for s in (0, 1, 2)]
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            service.map(problem, cost, configs)
            service.finalize()
        trace_path = run_dir / "service_timeline.json"
        first = json.loads(trace_path.read_text())
        spans = [e for e in first["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2  # one lease->done span per box

        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            service.map(problem, cost, configs)
            service.finalize()
            assert service.stats.runs_executed == 0
        second = json.loads(trace_path.read_text())
        assert [e for e in second["traceEvents"] if e["ph"] == "X"] == spans
        validate_chrome_trace(second)

    def test_resume_executes_only_missing_boxes(self, tmp_path, problem,
                                                cost):
        configs = [make_config(seed=s) for s in range(4)]
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            # First session only sees half the sweep.
            service.map(problem, cost, configs[:2])
        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            service.map(problem, cost, configs)
            assert service.stats.runs_executed == 2
            assert service.stats.tasks_from_journal == 1
            assert service.stats.tasks_executed == 1

    def test_interrupted_lease_is_recovered(self, tmp_path, problem, cost):
        configs = [make_config(seed=s) for s in (0, 1)]
        run_dir = tmp_path / "run"
        # Simulate a dispatcher that died mid-lease: enqueue + lease by a
        # foreign owner, no results.
        from repro.service.queue import TaskQueue
        from repro.service.scheduler import SweepScheduler

        run_dir.mkdir()
        queue = TaskQueue(run_dir / "queue.jsonl")
        planned = SweepScheduler(replicas=2).expand(problem, cost, configs)
        SweepScheduler(replicas=2).schedule(queue, planned)
        queue.lease(planned[0].task_id, owner="dead-dispatcher", timeout=3600)
        queue.close()

        with ExperimentService(run_dir, workers=1, replicas=2) as service:
            got = service.map(problem, cost, configs)
            assert service.stats.tasks_requeued == 1
            assert service.stats.runs_executed == 2
        base = map_runs(problem, cost, configs, workers=1, replicas=1)
        assert fingerprints(got) == fingerprints(base)

    def test_manifest_mismatch_refuses_resume(self, tmp_path, problem, cost):
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir, manifest={"step": "s1",
                                                  "profile": "quick"}):
            pass
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            ExperimentService(run_dir, manifest={"step": "s5",
                                                 "profile": "quick"})

    def test_load_manifest_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no manifest.json"):
            load_manifest(tmp_path)
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(ConfigurationError, match="corrupt"):
            load_manifest(tmp_path)

    def test_second_live_dispatcher_is_rejected(self, tmp_path):
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir):
            with pytest.raises(ConfigurationError, match="locked by live pid"):
                ExperimentService(run_dir)


class TestCacheInterplay:
    def test_cache_serves_second_service(self, tmp_path, problem, cost):
        configs = [make_config(seed=s) for s in (0, 1)]
        cache = RunCache(tmp_path / "cache")
        with ExperimentService(workers=1, replicas=1, cache=cache) as service:
            base = service.map(problem, cost, configs)
            assert service.stats.runs_executed == 2
        assert cache.stats.tasks_executed == 2
        with ExperimentService(workers=1, replicas=1, cache=cache) as service:
            got = service.map(problem, cost, configs)
            assert service.stats.runs_executed == 0
            assert service.stats.runs_from_cache == 2
            assert service.stats.tasks_from_cache == 2
        assert cache.stats.tasks_served == 2
        assert fingerprints(got) == fingerprints(base)

    def test_stats_line_mentions_tasks(self, tmp_path, problem, cost):
        cache = RunCache(tmp_path / "cache")
        with ExperimentService(workers=1, replicas=1, cache=cache) as service:
            service.map(problem, cost, [make_config()])
        line = str(cache.stats)
        assert "tasks: 0 served / 1 executed" in line

    def test_journal_wins_over_cache(self, tmp_path, problem, cost):
        # A durable resume should count as journal, not cache, even when
        # both could serve the run.
        configs = [make_config(seed=0)]
        cache = RunCache(tmp_path / "cache")
        run_dir = tmp_path / "run"
        with ExperimentService(run_dir, workers=1, replicas=1,
                               cache=cache) as service:
            service.map(problem, cost, configs)
        with ExperimentService(run_dir, workers=1, replicas=1,
                               cache=cache) as service:
            service.map(problem, cost, configs)
            assert service.stats.tasks_from_journal == 1
            assert service.stats.tasks_from_cache == 0

    def test_queue_records_completion_source(self, tmp_path, problem, cost):
        cache = RunCache(tmp_path / "cache")
        config = make_config(seed=0)
        with ExperimentService(workers=1, replicas=1, cache=cache) as service:
            service.map(problem, cost, [config])
            task = next(service.queue.tasks())
            assert task.state is TaskState.DONE
            assert task.source == "executed"
        with ExperimentService(workers=1, replicas=1, cache=cache) as service:
            service.map(problem, cost, [config])
            task = next(service.queue.tasks())
            assert task.source == "cache"
