"""Progress heartbeats: reporter rendering modes and the map_runs
callback contract (ticks observe, never perturb)."""

from __future__ import annotations

import io

import numpy as np

from repro.harness.parallel import map_runs
from repro.harness.progress import ProgressReporter

from tests.conftest import make_run_config
from tests.test_determinism import assert_identical


class _FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestProgressReporter:
    def test_non_tty_emits_plain_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0)
        reporter(1, 4, "ASYNC/m=2/seed=0")
        reporter(4, 4, "ASYNC/m=2/seed=3")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("progress: 1/4 runs")
        assert "ASYNC/m=2/seed=3" in lines[1]
        assert "\r" not in stream.getvalue()

    def test_non_tty_throttles_to_min_interval(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=3600.0)
        reporter(1, 100)
        reporter(2, 100)  # throttled: an hour hasn't passed
        reporter(3, 100)
        assert len(stream.getvalue().splitlines()) == 1

    def test_final_tick_always_lands(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=3600.0)
        reporter(1, 2)
        reporter(2, 2)  # final: bypasses the throttle
        assert len(stream.getvalue().splitlines()) == 2

    def test_tty_rewrites_one_line(self):
        stream = _FakeTty()
        with ProgressReporter(stream, min_interval=0.0) as reporter:
            reporter(1, 2, "a")
            reporter(2, 2, "b")
        text = stream.getvalue()
        assert text.count("\r") >= 2
        assert "2/2" in text and "100%" in text
        assert text.endswith("\n")  # close() terminated the status line

    def test_streams_without_isatty_are_non_tty(self):
        class Bare:
            def write(self, s):
                self.last = s

            def flush(self):
                pass

        reporter = ProgressReporter(Bare(), min_interval=0.0)
        assert reporter._is_tty is False


class TestMapRunsHeartbeat:
    def test_serial_ticks_once_per_run(self, quadratic, cost_model):
        configs = [make_run_config(m=2, seed=s) for s in range(3)]
        ticks = []
        map_runs(quadratic, cost_model, configs,
                 progress=lambda d, t, lab: ticks.append((d, t, lab)))
        assert [(d, t) for d, t, _ in ticks] == [(1, 3), (2, 3), (3, 3)]
        assert ticks[0][2] == "LSH_psinf/m=2/seed=0"

    def test_cohort_ticks_per_chunk(self, quadratic, cost_model):
        configs = [make_run_config(m=2, seed=s) for s in range(4)]
        ticks = []
        map_runs(quadratic, cost_model, configs, replicas=2,
                 progress=lambda d, t, lab: ticks.append((d, t)))
        assert ticks == [(2, 4), (4, 4)]

    def test_callback_does_not_perturb_results(self, quadratic, cost_model):
        configs = [make_run_config(m=2, seed=s) for s in range(3)]
        plain = map_runs(quadratic, cost_model, configs)
        ticked = map_runs(quadratic, cost_model, configs,
                          progress=lambda *a: None)
        for a, b in zip(plain, ticked):
            assert_identical(a, b)
            np.testing.assert_array_equal(a.staleness_values, b.staleness_values)

    def test_experiment_threads_progress(self, tiny_workloads):
        from repro.harness.experiments import s1_scalability

        ticks = []
        result = s1_scalability(
            tiny_workloads, algorithms=("ASYNC",), thread_counts=(2,),
            repeats=2, progress=lambda d, t, lab: ticks.append((d, t)),
        )
        assert len(result.runs) == 2
        assert ticks[-1] == (2, 2)
