"""Tests for result aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.results import (
    convergence_boxes,
    failure_breakdown,
    failure_counts,
    group_by,
    median_progress_curve,
    pooled_staleness,
    staleness_boxes,
    statistical_efficiency_boxes,
    time_per_update_boxes,
)
from repro.harness.runner import run_repeated

from tests.conftest import make_run_config


@pytest.fixture(scope="module")
def mixed_results(request):
    """A small pool of converged + diverged runs over two algorithms."""
    from repro.core.problem import QuadraticProblem
    from repro.sim.cost import CostModel

    problem = QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05)
    cost = CostModel(tc=5e-3, tu=1e-3, t_copy=0.5e-3)
    results = []
    for alg in ("ASYNC", "LSH_ps0"):
        results += run_repeated(
            problem, cost, make_run_config(algorithm=alg, m=4), repeats=2
        )
    # Two runs that cannot converge in budget -> DIVERGED.
    results += run_repeated(
        problem, cost,
        make_run_config(algorithm="HOG", m=2, eta=1e-10, max_updates=30,
                        epsilons=(0.5,), target_epsilon=0.5),
        repeats=2,
    )
    return results


class TestGrouping:
    def test_group_by_algorithm(self, mixed_results):
        groups = group_by(mixed_results, lambda r: r.config.algorithm)
        assert set(groups) == {"ASYNC", "LSH_ps0", "HOG"}
        assert all(len(v) == 2 for v in groups.values())


class TestBoxes:
    def test_convergence_boxes_exclude_failures(self, mixed_results):
        boxes, failures = convergence_boxes(mixed_results, 0.5)
        assert len(boxes["ASYNC"]) == 2
        assert boxes["HOG"] == []
        n_div, n_crash = failures["HOG"]
        assert n_div == 2 and n_crash == 0

    def test_statistical_efficiency(self, mixed_results):
        eff = statistical_efficiency_boxes(mixed_results, 0.5)
        assert all(v > 0 for v in eff["ASYNC"])

    def test_time_per_update(self, mixed_results):
        tpu = time_per_update_boxes(mixed_results)
        assert all(v > 0 for v in tpu["LSH_ps0"])

    def test_staleness_boxes(self, mixed_results):
        boxes = staleness_boxes(mixed_results)
        assert all(v >= 0 for v in boxes["ASYNC"])

    def test_failure_counts(self, mixed_results):
        counts = failure_counts(mixed_results)
        assert counts["HOG"] == (2, 0)
        assert counts["ASYNC"] == (0, 0)

    def test_failure_breakdown_splits_stopped_from_diverged(self, mixed_results):
        breakdown = failure_breakdown(mixed_results)
        assert list(breakdown) == sorted(breakdown)  # deterministic order
        assert breakdown["ASYNC"] == {
            "converged": 2, "diverged": 0, "stopped": 0, "crashed": 0,
        }
        hog = breakdown["HOG"]
        assert hog["converged"] == 0 and hog["crashed"] == 0
        # The budget-capped runs land in exactly one of the two classes
        # failure_counts pools together — and the split is visible.
        assert hog["diverged"] + hog["stopped"] == 2
        pooled, _ = failure_counts(mixed_results)["HOG"]
        assert pooled == hog["diverged"] + hog["stopped"]


class TestCurves:
    def test_median_progress_monotone_time(self, mixed_results):
        groups = group_by(mixed_results, lambda r: r.config.algorithm)
        t, loss = median_progress_curve(groups["ASYNC"])
        assert t.size > 0
        assert np.all(np.diff(t) >= 0)
        assert loss[-1] < loss[0]  # training descends

    def test_median_progress_empty(self):
        t, loss = median_progress_curve([])
        assert t.size == 0

    def test_pooled_staleness(self, mixed_results):
        groups = group_by(mixed_results, lambda r: r.config.algorithm)
        pooled = pooled_staleness(groups["ASYNC"])
        expected = sum(r.staleness_values.size for r in groups["ASYNC"])
        assert pooled.size == expected
