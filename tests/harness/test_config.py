"""Tests for run configuration, profiles and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.config import (
    PROFILE_PAPER,
    PROFILE_QUICK,
    Profile,
    RunConfig,
    Workloads,
    get_profile,
)


class TestRunConfig:
    def test_defaults_valid(self):
        cfg = RunConfig(algorithm="ASYNC", m=4)
        assert cfg.eta > 0

    def test_seq_requires_m1(self):
        with pytest.raises(ConfigurationError):
            RunConfig(algorithm="SEQ", m=2)
        RunConfig(algorithm="SEQ", m=1)  # fine

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            RunConfig(algorithm="ASYNC", m=0)

    def test_invalid_eta(self):
        with pytest.raises(ConfigurationError):
            RunConfig(algorithm="ASYNC", m=2, eta=0.0)

    def test_target_must_be_member(self):
        with pytest.raises(ConfigurationError):
            RunConfig(algorithm="ASYNC", m=2, epsilons=(0.5,), target_epsilon=0.1)

    def test_with_seed(self):
        cfg = RunConfig(algorithm="ASYNC", m=2, seed=1)
        cfg2 = cfg.with_seed(99)
        assert cfg2.seed == 99 and cfg2.algorithm == "ASYNC"
        assert cfg.seed == 1  # frozen original untouched


class TestProfiles:
    def test_quick_smaller_than_paper(self):
        assert PROFILE_QUICK.n_train < PROFILE_PAPER.n_train
        assert PROFILE_QUICK.repeats < PROFILE_PAPER.repeats

    def test_paper_matches_paper_parameters(self):
        assert PROFILE_PAPER.n_train == 60_000
        assert PROFILE_PAPER.batch_size == 512
        assert PROFILE_PAPER.repeats == 11
        assert 68 in PROFILE_PAPER.thread_counts
        assert PROFILE_PAPER.mlp_epsilons[-1] == 0.025  # the 2.5% target

    def test_get_profile_by_name(self):
        assert get_profile("quick") is PROFILE_QUICK
        assert get_profile("paper") is PROFILE_PAPER

    def test_get_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "paper")
        assert get_profile() is PROFILE_PAPER
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile() is PROFILE_QUICK

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            get_profile("gigantic")

    def test_invalid_profile_fields(self):
        with pytest.raises(ConfigurationError):
            Profile(
                name="x", n_train=0, n_eval=1, batch_size=1, cnn_batch_size=1,
                repeats=1, thread_counts=(1,), high_parallelism=(1,),
                max_updates=1, max_virtual_time=1.0, max_wall_seconds=1.0,
                step_sizes=(0.1,), mlp_epsilons=(0.5,), cnn_epsilons=(0.5,),
            )


class TestWorkloads:
    def test_problem_kinds(self, tiny_workloads):
        assert tiny_workloads.problem("quadratic").d == 256
        with pytest.raises(ConfigurationError):
            tiny_workloads.problem("transformer")

    def test_mlp_problem_shapes(self, tiny_workloads):
        p = tiny_workloads.mlp_problem
        assert p.d == 134_794
        assert p.train_x.shape == (tiny_workloads.profile.n_train, 784)
        assert p.batch_size == tiny_workloads.profile.batch_size

    def test_cnn_problem_shapes(self, tiny_workloads):
        p = tiny_workloads.cnn_problem
        assert p.d == 27_354
        assert p.train_x.shape[1:] == (1, 28, 28)
        assert p.batch_size == tiny_workloads.profile.cnn_batch_size

    def test_problems_cached(self, tiny_workloads):
        assert tiny_workloads.mlp_problem is tiny_workloads.mlp_problem

    def test_cost_regimes(self, tiny_workloads):
        assert tiny_workloads.cost("cnn").ratio > tiny_workloads.cost("mlp").ratio
        with pytest.raises(ConfigurationError):
            tiny_workloads.cost("gpu")
