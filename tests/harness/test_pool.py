"""Tests for the persistent worker pool and shm problem broadcast."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.harness.cache import simulation_fingerprint
from repro.harness.config import RunConfig
from repro.harness.parallel import map_runs
from repro.harness.pool import (
    MIN_SHM_BYTES,
    WorkerPool,
    load_broadcast_payload,
    make_broadcast,
)
from repro.harness.runner import run_once
from repro.sim.cost import CostModel


@pytest.fixture(scope="module")
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


@pytest.fixture
def two_cores(monkeypatch):
    """Pretend the host has two cores so the pool path engages (the CI
    host may be single-core, where resolve_workers caps at serial)."""
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)


def make_config(seed=0, algorithm="ASYNC", m=2, max_updates=60):
    return RunConfig(
        algorithm=algorithm, m=m, eta=0.05, seed=seed,
        epsilons=(0.5, 0.1), max_updates=max_updates, max_virtual_time=10.0,
    )


class BigArrayProblem(QuadraticProblem):
    """A problem whose curvature array is large enough for the shm hoist."""

    def __init__(self):
        d = MIN_SHM_BYTES // 8 + 16  # h is float64: nbytes > MIN_SHM_BYTES
        super().__init__(d, h=1.0, b=1.0, noise_sigma=0.1)


class CrashOnceProblem(QuadraticProblem):
    """Kills the first worker process that initializes it, exactly once.

    ``flag_path`` makes the crash one-shot across respawned workers;
    the parent pid guard keeps the serial reference runs alive.
    """

    def __init__(self, flag_path):
        super().__init__(32, h=1.0, b=1.0, noise_sigma=0.1)
        self.flag_path = str(flag_path)
        self.parent_pid = os.getpid()

    def init_theta(self, rng):
        if os.getpid() != self.parent_pid and not os.path.exists(self.flag_path):
            open(self.flag_path, "w").close()
            os._exit(3)
        return super().init_theta(rng)


class TestBroadcast:
    def test_shm_round_trip_is_bitwise(self, cost):
        problem = BigArrayProblem()
        broadcast = make_broadcast(problem, cost)
        try:
            assert broadcast.mode == "shm"
            assert len(broadcast.segments) >= 1
            assert broadcast.shm_bytes >= MIN_SHM_BYTES
            loaded, loaded_cost, attached = load_broadcast_payload(broadcast.payload)
            try:
                np.testing.assert_array_equal(loaded.h, problem.h)
                assert not loaded.h.flags.writeable
                config = make_config()
                assert simulation_fingerprint(
                    run_once(loaded, loaded_cost, config)
                ) == simulation_fingerprint(run_once(problem, cost, config))
            finally:
                for handle in attached:
                    handle.close()
        finally:
            broadcast.close()

    def test_small_arrays_stay_inline(self, cost):
        broadcast = make_broadcast(QuadraticProblem(32), cost)
        try:
            assert broadcast.mode == "shm" and broadcast.segments == []
        finally:
            broadcast.close()

    def test_shm_unavailable_degrades_to_pickle(self, cost, monkeypatch):
        monkeypatch.setattr("repro.harness.pool._shm_module", lambda: None)
        problem = BigArrayProblem()
        broadcast = make_broadcast(problem, cost)
        assert broadcast.mode == "pickle" and broadcast.segments == []
        loaded, loaded_cost = pickle.loads(broadcast.payload)
        config = make_config()
        assert simulation_fingerprint(
            run_once(loaded, loaded_cost, config)
        ) == simulation_fingerprint(run_once(problem, cost, config))

    def test_shm_oserror_degrades_to_pickle(self, cost, monkeypatch):
        class _NoShm:
            class SharedMemory:
                def __init__(self, *args, **kwargs):
                    raise OSError("no /dev/shm")

        monkeypatch.setattr("repro.harness.pool._shm_module", lambda: _NoShm)
        broadcast = make_broadcast(BigArrayProblem(), cost)
        assert broadcast.mode == "pickle"

    def test_unpicklable_payload_warns_and_returns_none(self, cost):
        problem = QuadraticProblem(32)
        problem.bad_closure = lambda: None
        with pytest.warns(RuntimeWarning, match="payload not picklable"):
            assert make_broadcast(problem, cost) is None


class TestWorkerPool:
    def test_pool_matches_serial(self, cost, two_cores):
        problem = BigArrayProblem()
        configs = [make_config(seed=s) for s in range(4)]
        serial = [run_once(problem, cost, c) for c in configs]
        with WorkerPool(2) as pool:
            results = map_runs(problem, cost, configs, pool=pool)
        for got, want in zip(results, serial):
            assert simulation_fingerprint(got) == simulation_fingerprint(want)

    def test_pool_reused_across_map_runs(self, cost, two_cores):
        problem = BigArrayProblem()
        configs = [make_config(seed=s) for s in range(4)]
        with WorkerPool(2) as pool:
            map_runs(problem, cost, configs, pool=pool)
            map_runs(problem, cost, configs, pool=pool)
            assert pool.stats.spawns == 1
            assert pool.stats.broadcasts == 1
            assert pool.stats.chunks_completed == 8

    def test_ping(self, two_cores):
        with WorkerPool(2) as pool:
            assert pool.ping()
        assert not pool.ping()  # closed
        assert not WorkerPool(1).ping()  # serial: no processes to answer

    def test_unpicklable_problem_falls_back_to_serial(self, cost, two_cores):
        problem = QuadraticProblem(32)
        problem.bad_closure = lambda: None
        configs = [make_config(seed=s) for s in range(3)]
        reference = QuadraticProblem(32)
        serial = [run_once(reference, cost, c) for c in configs]
        with pytest.warns(RuntimeWarning, match="payload not picklable"):
            results = map_runs(problem, cost, configs, workers=2)
        for got, want in zip(results, serial):
            assert simulation_fingerprint(got) == simulation_fingerprint(want)

    def test_worker_crash_respawns_and_completes(self, cost, two_cores, tmp_path):
        problem = CrashOnceProblem(tmp_path / "crashed-once")
        configs = [make_config(seed=s) for s in range(4)]
        serial = [run_once(problem, cost, c) for c in configs]
        with WorkerPool(2) as pool:
            with pytest.warns(RuntimeWarning, match="respawning"):
                results = map_runs(problem, cost, configs, pool=pool)
            assert pool.stats.respawns >= 1
        for got, want in zip(results, serial):
            assert simulation_fingerprint(got) == simulation_fingerprint(want)

    def test_crash_beyond_respawn_budget_finishes_serially(
        self, cost, two_cores, monkeypatch, tmp_path
    ):
        # A flag path that never exists makes every worker crash; after
        # max_respawns the serial pass must still deliver every result.
        problem = CrashOnceProblem(tmp_path / "never-created")
        monkeypatch.setattr(
            CrashOnceProblem, "init_theta",
            lambda self, rng: (
                os._exit(3) if os.getpid() != self.parent_pid
                else QuadraticProblem.init_theta(self, rng)
            ),
        )
        configs = [make_config(seed=s) for s in range(3)]
        serial = [run_once(problem, cost, c) for c in configs]
        with WorkerPool(2, max_respawns=1) as pool:
            with pytest.warns(RuntimeWarning):
                results = map_runs(problem, cost, configs, pool=pool)
            assert pool.stats.respawns >= 1
        for got, want in zip(results, serial):
            assert simulation_fingerprint(got) == simulation_fingerprint(want)

    def test_close_releases_segments(self, cost, two_cores):
        pool = WorkerPool(2)
        broadcast = pool.broadcast_for(BigArrayProblem(), cost)
        assert broadcast.mode == "shm" and pool.stats.shm_bytes > 0
        pool.close()
        assert pool.stats.shm_bytes == 0
        assert broadcast.segments == []


class TestFinalizers:
    """Abnormal exits must not leak /dev/shm segments (the GC backstop
    behind ``close()``)."""

    def test_broadcast_finalizer_releases_segments(self, cost):
        import gc

        from multiprocessing import shared_memory

        broadcast = make_broadcast(BigArrayProblem(), cost)
        assert broadcast.mode == "shm"
        names = [segment.name for segment in broadcast.segments]
        assert names
        del broadcast  # dropped without close(): the crash/exception path
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pool_finalizer_releases_broadcasts(self, cost, two_cores):
        import gc

        from multiprocessing import shared_memory

        pool = WorkerPool(2)
        broadcast = pool.broadcast_for(BigArrayProblem(), cost)
        names = [segment.name for segment in broadcast.segments]
        assert names
        del broadcast
        del pool  # never close()d — e.g. a KeyboardInterrupt unwound past it
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_then_finalizer_is_idempotent(self, cost):
        import gc

        broadcast = make_broadcast(BigArrayProblem(), cost)
        broadcast.close()
        assert broadcast.segments == []
        del broadcast
        gc.collect()  # the detached finalizer must not double-unlink
