"""Tests for the process-parallel experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.errors import ConfigurationError
from repro.harness.config import RunConfig
from repro.harness.grid import SweepGrid
from repro.harness.parallel import ParallelRunner, map_runs, resolve_workers
from repro.harness.runner import repeated_configs
from repro.sim.cost import CostModel


@pytest.fixture(scope="module")
def problem():
    return QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)


@pytest.fixture(scope="module")
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


def make_config(seed=0, algorithm="ASYNC", m=2):
    return RunConfig(
        algorithm=algorithm, m=m, eta=0.05, seed=seed,
        epsilons=(0.5, 0.1), target_epsilon=0.1,
        max_updates=500, max_virtual_time=10.0,
    )


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    @pytest.mark.parametrize("value", [0, 1])
    def test_zero_and_one_mean_serial(self, value):
        assert resolve_workers(value) == 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 8)
        assert resolve_workers(3) == 3

    def test_minus_one_is_cpu_count(self):
        import os

        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="capping at 2"):
            assert resolve_workers(8) == 2

    def test_env_request_also_capped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "16")
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 4)
        with pytest.warns(RuntimeWarning, match="capping at 4"):
            assert resolve_workers() == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 8)
        assert resolve_workers() == 5

    def test_env_zero_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers() == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()

    def test_below_minus_one_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 8)
        assert resolve_workers(2) == 2


class TestMapRuns:
    def test_ordered_results(self, problem, cost):
        configs = [make_config(seed=s) for s in (3, 1, 2)]
        results = map_runs(problem, cost, configs, workers=2)
        assert [r.config.seed for r in results] == [3, 1, 2]

    def test_single_task_stays_serial(self, problem, cost):
        results = map_runs(problem, cost, [make_config()], workers=4)
        assert len(results) == 1

    def test_parallel_equals_serial(self, problem, cost):
        configs = repeated_configs(make_config(seed=11), repeats=3)
        serial = map_runs(problem, cost, configs, workers=1)
        parallel = map_runs(problem, cost, configs, workers=2)
        for s, p in zip(serial, parallel):
            assert s.virtual_time == p.virtual_time
            assert s.n_updates == p.n_updates
            np.testing.assert_array_equal(s.staleness_values, p.staleness_values)

    def test_empty_config_list(self, problem, cost):
        assert map_runs(problem, cost, [], workers=4) == []


class TestParallelRunner:
    def test_run_repeated(self, problem, cost):
        runner = ParallelRunner(problem, cost, workers=2)
        results = runner.run_repeated(make_config(seed=5), repeats=3)
        assert [r.config.seed for r in results] == [5, 1005, 2005]

    def test_map(self, problem, cost):
        runner = ParallelRunner(problem, cost, workers=1)
        results = runner.map([make_config(seed=9)])
        assert results[0].config.seed == 9


class TestGridParallel:
    def test_grid_parallel_equals_serial(self, problem, cost):
        grid = SweepGrid(
            algorithms=("ASYNC", "LSH_ps0"),
            thread_counts=(2,),
            etas=(0.05,),
            repeats=2,
            epsilons=(0.5, 0.1),
            max_updates=400,
            max_virtual_time=10.0,
            max_wall_seconds=60.0,
        )
        serial = grid.run(problem, cost, workers=1)
        parallel = grid.run(problem, cost, workers=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.config == p.config
            assert s.virtual_time == p.virtual_time
            assert s.n_updates == p.n_updates

    def test_grid_configs_order(self):
        grid = SweepGrid(
            algorithms=("ASYNC",), thread_counts=(2, 4), etas=(0.05,), repeats=2
        )
        configs = grid.configs()
        assert [(c.m, c.seed) for c in configs] == [(2, 0), (2, 1000), (4, 0), (4, 1000)]
