"""Integration tests for the S1-S5 experiment functions (micro scale:
quadratic-speed problems would be ideal, but the experiments are wired
to the MLP/CNN workloads, so we use a miniature profile and few
algorithms/repeats to keep this fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.experiments import (
    TABLE_I,
    render_table_i,
    s1_scalability,
    s1_stepsize,
    s2_high_precision,
    s3_cnn,
    s5_memory,
)


@pytest.fixture(scope="module")
def micro_workloads():
    from repro.harness.config import Profile, Workloads

    profile = Profile(
        name="quick",
        n_train=512,
        n_eval=128,
        batch_size=64,
        cnn_batch_size=32,
        repeats=1,
        thread_counts=(1, 4),
        high_parallelism=(4,),
        max_updates=400,
        max_virtual_time=20.0,
        max_wall_seconds=20.0,
        step_sizes=(0.02, 0.05),
        mlp_epsilons=(0.75, 0.5),
        cnn_epsilons=(0.75, 0.5),
        default_eta=0.02,
    )
    return Workloads(profile)


class TestS1Scalability:
    def test_produces_boxes_and_text(self, micro_workloads):
        res = s1_scalability(
            micro_workloads, algorithms=("SEQ", "LSH_ps0"), thread_counts=(1, 4)
        )
        assert "Fig 3" in res.text
        assert any("LSH_ps0/m=4" in k for k in res.data["boxes"])
        assert len(res.runs) == 3  # SEQ@1 + LSH@1 + LSH@4

    def test_parallel_beats_sequential(self, micro_workloads):
        res = s1_scalability(
            micro_workloads, algorithms=("SEQ", "LSH_psinf"), thread_counts=(4,)
        )
        seq = res.data["boxes"]["SEQ/m=1"]
        par = res.data["boxes"]["LSH_psinf/m=4"]
        assert seq and par
        assert np.median(par) < np.median(seq)


class TestS1Stepsize:
    def test_sweeps_etas(self, micro_workloads):
        res = s1_stepsize(
            micro_workloads, algorithms=("ASYNC",), etas=(0.02, 0.05), m=4, repeats=1
        )
        assert set(res.data["boxes"]) == {"ASYNC/eta=0.02", "ASYNC/eta=0.05"}
        assert "statistical efficiency" in res.text


class TestS2S3:
    def test_s2_structure(self, micro_workloads):
        res = s2_high_precision(
            micro_workloads, m=4, algorithms=("ASYNC", "LSH_ps0"), repeats=1
        )
        assert 0.5 in res.data["per_eps"]
        assert "ASYNC" in res.data["curves"]
        assert res.data["staleness"]["LSH_ps0"].size > 0
        assert "Staleness distribution" in res.text

    def test_s3_runs_cnn(self, micro_workloads):
        res = s3_cnn(micro_workloads, m=2, algorithms=("LSH_ps0",), repeats=1)
        assert res.runs[0].config.algorithm == "LSH_ps0"
        assert "CNN" in res.text


class TestS5Memory:
    def test_memory_table(self, micro_workloads):
        res = s5_memory(
            micro_workloads, thread_counts=(4,), kinds=("mlp",),
            algorithms=("ASYNC", "LSH_psinf"), max_updates=60,
        )
        async_stats = res.data[("mlp", 4, "ASYNC")]
        lsh_stats = res.data[("mlp", 4, "LSH_psinf")]
        assert async_stats["peak_count"] == 2 * 4 + 1
        assert lsh_stats["peak_count"] <= 3 * 4 + 1
        assert "memory consumption" in res.text


class TestTableI:
    def test_covers_all_steps(self):
        assert [row["step"] for row in TABLE_I] == ["S1", "S2", "S3", "S4", "S5"]

    def test_render(self):
        text = render_table_i()
        assert "Table I" in text and "s3_cnn" in text
