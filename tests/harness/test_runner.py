"""Tests for run_once / run_repeated and RunResult metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.convergence import RunStatus
from repro.harness.config import RunConfig
from repro.harness.runner import default_eval_interval, run_once, run_repeated
from repro.sim.cost import CostModel

from tests.conftest import make_run_config


@pytest.fixture
def problem(quadratic):
    return quadratic


class TestRunOnce:
    def test_converged_result_fields(self, problem, cost_model):
        result = run_once(problem, cost_model, make_run_config(m=4))
        assert result.status is RunStatus.CONVERGED
        assert result.n_updates > 0
        assert result.virtual_time > 0
        assert result.wall_seconds > 0
        assert np.isfinite(result.time_to(0.1))
        assert result.time_per_update == pytest.approx(
            result.virtual_time / result.n_updates
        )
        assert result.label == "LSH_psinf(m=4)"

    def test_deterministic(self, problem, cost_model):
        cfg = make_run_config(m=4, seed=77)
        a = run_once(problem, cost_model, cfg)
        b = run_once(problem, cost_model, cfg)
        assert a.virtual_time == b.virtual_time
        assert a.n_updates == b.n_updates
        np.testing.assert_array_equal(a.staleness_values, b.staleness_values)

    def test_memory_timeline_populated(self, problem, cost_model):
        result = run_once(problem, cost_model, make_run_config(m=2))
        t, b, c = result.memory_timeline
        assert t.size > 0 and b.max() > 0 and c.max() >= 3

    def test_updates_per_thread_sums(self, problem, cost_model):
        result = run_once(problem, cost_model, make_run_config(m=4))
        assert result.updates_per_thread.sum() == result.n_updates

    def test_seq_runs(self, problem, cost_model):
        result = run_once(problem, cost_model, make_run_config(algorithm="SEQ", m=1))
        assert result.status is RunStatus.CONVERGED
        assert result.staleness["max"] == 0

    def test_lock_waits_only_for_async(self, problem, cost_model):
        locked = run_once(problem, cost_model, make_run_config(algorithm="ASYNC", m=8))
        lockfree = run_once(problem, cost_model, make_run_config(algorithm="LSH_psinf", m=8))
        assert locked.mean_lock_wait > 0
        # Lock-free runs never wait on a lock: not-applicable, not zero.
        assert np.isnan(lockfree.mean_lock_wait)

    def test_final_accuracy_nan_for_quadratic(self, problem, cost_model):
        result = run_once(problem, cost_model, make_run_config(m=2))
        assert np.isnan(result.final_accuracy)

    def test_update_budget_stops(self, problem, cost_model):
        cfg = make_run_config(m=2, eta=1e-9, max_updates=40)
        result = run_once(problem, cost_model, cfg)
        assert result.status is RunStatus.STOPPED
        # Budget enforced with the monitor's sampling granularity
        # (default cadence ~ every 8 updates).
        assert result.n_updates <= 40 + 16 * cfg.m


class TestRunRepeated:
    def test_repeats_produce_distinct_seeds(self, problem, cost_model):
        results = run_repeated(problem, cost_model, make_run_config(m=2), repeats=3)
        assert len(results) == 3
        seeds = [r.config.seed for r in results]
        assert len(set(seeds)) == 3
        times = [r.virtual_time for r in results]
        assert len(set(times)) == 3  # independent executions

    def test_invalid_repeats(self, problem, cost_model):
        with pytest.raises(ValueError):
            run_repeated(problem, cost_model, make_run_config(), repeats=0)


class TestEvalInterval:
    def test_scales_down_with_threads(self):
        cost = CostModel(tc=10e-3, tu=1e-3, t_copy=1e-3)
        assert default_eval_interval(cost, 64) < default_eval_interval(cost, 1)

    def test_floor_at_half_tc(self):
        cost = CostModel(tc=10e-3, tu=1e-3, t_copy=1e-3)
        assert default_eval_interval(cost, 10_000) == pytest.approx(0.5 * cost.tc)
