"""Tests for the content-addressed run cache."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core.convergence import RunStatus
from repro.core.problem import QuadraticProblem
from repro.harness.cache import (
    CACHE_ENV,
    RunCache,
    cache_key,
    problem_fingerprint,
    resolve_cache_dir,
    simulation_fingerprint,
)
from repro.harness.config import RunConfig
from repro.harness.parallel import map_runs
from repro.harness.runner import run_once
from repro.sim.cost import CostModel
from repro.telemetry.bus import ProbeBus


@pytest.fixture(scope="module")
def problem():
    return QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)


@pytest.fixture(scope="module")
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


def make_config(seed=0, eta=0.05, **kwargs):
    kwargs.setdefault("max_updates", 60)
    kwargs.setdefault("max_virtual_time", 10.0)
    kwargs.setdefault("epsilons", (0.5, 0.1))
    return RunConfig(algorithm="ASYNC", m=2, eta=eta, seed=seed, **kwargs)


class TestCacheKey:
    def test_stable_across_calls(self, problem, cost):
        config = make_config()
        assert cache_key(problem, cost, config) == cache_key(problem, cost, config)

    @pytest.mark.parametrize("other", [make_config(seed=1), make_config(eta=0.06)])
    def test_config_changes_key(self, problem, cost, other):
        assert cache_key(problem, cost, make_config()) != cache_key(problem, cost, other)

    def test_problem_data_changes_key(self, cost):
        config = make_config()
        one = QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)
        two = QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.1)
        assert cache_key(one, cost, config) != cache_key(two, cost, config)

    def test_cost_changes_key(self, problem):
        config = make_config()
        assert cache_key(
            problem, CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4), config
        ) != cache_key(problem, CostModel(tc=3e-3, tu=1e-3, t_copy=5e-4), config)

    def test_fingerprint_memoized_per_object(self, problem):
        assert problem_fingerprint(problem) == problem_fingerprint(problem)
        clone = QuadraticProblem(32, h=1.0, b=1.0, noise_sigma=0.1)
        assert problem_fingerprint(problem) == problem_fingerprint(clone)


class TestRoundTrip:
    def test_put_get_bitwise(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        config = make_config()
        result = run_once(problem, cost, config)
        assert cache.put(problem, cost, config, result)
        served = cache.get(problem, cost, config)
        assert served is not None
        assert simulation_fingerprint(served) == simulation_fingerprint(result)
        assert served.config == result.config
        assert served.status is result.status
        assert served.report.final_loss == result.report.final_loss
        assert served.report.threshold_times == result.report.threshold_times
        assert served.n_updates == result.n_updates
        assert served.virtual_time == result.virtual_time
        np.testing.assert_array_equal(served.staleness_values, result.staleness_values)

    def test_miss_on_empty_cache(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get(problem, cost, make_config()) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_a_warned_miss(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        config = make_config()
        cache.put(problem, cost, config, run_once(problem, cost, config))
        path = cache._path(cache_key(problem, cost, config))
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get(problem, cost, config) is None

    def test_foreign_schema_is_a_miss(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        config = make_config()
        cache.put(problem, cost, config, run_once(problem, cost, config))
        path = cache._path(cache_key(problem, cost, config))
        row = json.loads(path.read_text())
        row["schema_version"] = 99
        path.write_text(json.dumps(row))
        assert cache.get(problem, cost, config) is None

    def test_stopped_under_wall_cap_refused(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        # A huge update budget guarantees n_updates < max_updates, so a
        # STOPPED status can only mean the host wall clock fired.
        config = make_config(max_wall_seconds=30.0, max_updates=10_000_000)
        result = run_once(problem, cost, config)
        stopped = dataclasses.replace(result, status=RunStatus.STOPPED)
        assert not cache.put(problem, cost, config, stopped)
        assert cache.stats.bypasses == 1
        assert cache.stats.stores == 0

    def test_stopped_at_update_cap_is_cacheable(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        # Even with a finite wall cap, hitting the update cap is a
        # deterministic simulation outcome and may be served back.
        config = make_config(
            max_wall_seconds=30.0, max_updates=5, eta=0.001,
            epsilons=(1e-9,),
        )
        result = run_once(problem, cost, config)
        assert result.status is RunStatus.STOPPED
        assert result.n_updates >= config.max_updates
        assert cache.put(problem, cost, config, result)
        served = cache.get(problem, cost, config)
        assert served is not None
        assert simulation_fingerprint(served) == simulation_fingerprint(result)


class TestMapRunsIntegration:
    def test_second_pass_is_all_hits_and_bitwise(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        configs = [make_config(seed=s) for s in range(3)]
        serial = [run_once(problem, cost, c) for c in configs]
        first = map_runs(problem, cost, configs, cache=cache)
        assert cache.stats.misses == 3 and cache.stats.stores == 3
        second = map_runs(problem, cost, configs, cache=cache)
        assert cache.stats.hits == 3
        for a, b, c in zip(first, second, serial):
            assert simulation_fingerprint(a) == simulation_fingerprint(c)
            assert simulation_fingerprint(b) == simulation_fingerprint(c)

    def test_hit_labels_progress(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        configs = [make_config(seed=7)]
        map_runs(problem, cost, configs, cache=cache)
        labels = []
        map_runs(
            problem, cost, configs, cache=cache,
            progress=lambda done, total, label: labels.append(label),
        )
        assert labels and labels[0].endswith(" [cache]")

    def test_self_profile_bypasses(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        config = make_config(self_profile=True)
        map_runs(problem, cost, [config], cache=cache)
        assert cache.stats.bypasses == 1
        assert cache.stats.stores == 0 and cache.stats.hits == 0

    def test_cohort_path_uses_cache(self, problem, cost, tmp_path):
        cache = RunCache(tmp_path)
        configs = [make_config(seed=s) for s in range(4)]
        serial = [run_once(problem, cost, c) for c in configs]
        map_runs(problem, cost, configs, replicas=2, cache=cache)
        results = map_runs(problem, cost, configs, replicas=2, cache=cache)
        assert cache.stats.hits == 4
        for got, want in zip(results, serial):
            assert simulation_fingerprint(got) == simulation_fingerprint(want)


class _BusRecorder:
    def __init__(self):
        self.events = []

    def on_cache_hit(self, key):
        self.events.append(("hit", key))

    def on_cache_miss(self, key):
        self.events.append(("miss", key))

    def on_cache_bypass(self, reason):
        self.events.append(("bypass", reason))


class TestBusEvents:
    def test_hit_miss_bypass_events(self, problem, cost, tmp_path):
        bus = ProbeBus()
        recorder = _BusRecorder()
        bus.attach(recorder)
        cache = RunCache(tmp_path, bus=bus)
        config = make_config()
        key = cache_key(problem, cost, config)
        assert cache.get(problem, cost, config) is None
        cache.put(problem, cost, config, run_once(problem, cost, config))
        assert cache.get(problem, cost, config) is not None
        cache.note_bypass("self_profile")
        assert recorder.events == [
            ("miss", key), ("hit", key), ("bypass", "self_profile")
        ]


class TestResolveCacheDir:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert resolve_cache_dir() is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "/tmp/cache-from-env")
        assert resolve_cache_dir() == "/tmp/cache-from-env"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "/tmp/cache-from-env")
        assert resolve_cache_dir("/tmp/explicit") == "/tmp/explicit"

    def test_no_cache_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "/tmp/cache-from-env")
        assert resolve_cache_dir("/tmp/explicit", no_cache=True) is None
