"""Tests for the sweep-grid utility."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.errors import ConfigurationError
from repro.harness.grid import SweepGrid, archive, summarize
from repro.sim.cost import CostModel


@pytest.fixture
def problem():
    return QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05)


@pytest.fixture
def cost():
    return CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3)


class TestCells:
    def test_cartesian_product(self):
        grid = SweepGrid(algorithms=("ASYNC", "HOG"), thread_counts=(2, 4), etas=(0.01, 0.1))
        assert len(grid.cells()) == 8

    def test_seq_pinned_and_deduplicated(self):
        grid = SweepGrid(algorithms=("SEQ",), thread_counts=(2, 4, 8), etas=(0.05,))
        assert grid.cells() == [("SEQ", 1, 0.05)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepGrid(algorithms=())
        with pytest.raises(ConfigurationError):
            SweepGrid(algorithms=("SEQ",), repeats=0)
        with pytest.raises(ConfigurationError):
            SweepGrid(algorithms=("SEQ",), thread_counts=())


class TestRun:
    def test_runs_every_cell_with_repeats(self, problem, cost):
        grid = SweepGrid(
            algorithms=("ASYNC", "LSH_ps0"), thread_counts=(2, 4), etas=(0.05,),
            repeats=2, epsilons=(0.5, 0.1), max_wall_seconds=30.0,
        )
        results = grid.run(problem, cost)
        assert len(results) == 4 * 2
        labels = {(r.config.algorithm, r.config.m) for r in results}
        assert labels == {("ASYNC", 2), ("ASYNC", 4), ("LSH_ps0", 2), ("LSH_ps0", 4)}

    def test_progress_callback_invoked(self, problem, cost):
        grid = SweepGrid(algorithms=("HOG",), thread_counts=(2,), etas=(0.05,), repeats=1)
        seen = []
        grid.run(problem, cost, progress=seen.append)
        assert seen == ["HOG m=2 eta=0.05"]

    def test_deterministic(self, problem, cost):
        grid = SweepGrid(algorithms=("LSH_psinf",), thread_counts=(3,), etas=(0.05,),
                         repeats=1, seed=9)
        a = grid.run(problem, cost)[0]
        b = grid.run(problem, cost)[0]
        assert a.virtual_time == b.virtual_time


class TestSummarizeArchive:
    @pytest.fixture
    def results(self, problem, cost):
        grid = SweepGrid(algorithms=("SEQ", "LSH_ps0"), thread_counts=(4,), etas=(0.05,),
                         repeats=1, epsilons=(0.5, 0.1))
        return grid.run(problem, cost)

    def test_summarize_table(self, results):
        text = summarize(results, 0.1)
        assert "SEQ" in text and "LSH_ps0" in text and "median t(0.1)" in text

    def test_archive_roundtrip(self, results, tmp_path):
        path = archive(results, tmp_path / "grid.json")
        payload = json.loads(path.read_text())
        assert len(payload) == len(results)
        assert payload[0]["status"] in ("converged", "diverged", "crashed")
