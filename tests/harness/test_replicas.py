"""Harness-level tests for lockstep replica batching: resolution of the
cohort size, cohort planning, and end-to-end equality between the
replica-batched entry points and the serial loop."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.problem import QuadraticProblem
from repro.errors import ConfigurationError
from repro.harness.config import RunConfig
from repro.harness.parallel import (
    REPLICAS_ENV,
    map_runs,
    plan_cohorts,
    resolve_replicas,
)
from repro.harness.runner import repeated_configs, run_once, run_repeated
from repro.sim.cost import CostModel


@pytest.fixture(scope="module")
def problem():
    return QuadraticProblem(24, h=1.0, b=1.0, noise_sigma=0.1)


COST = CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4)


def make_config(**overrides) -> RunConfig:
    defaults = dict(
        algorithm="LSH_ps1",
        m=2,
        eta=0.05,
        seed=11,
        epsilons=(0.5, 0.25),
        max_updates=60,
        max_virtual_time=40.0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def identity_of(result):
    return (
        result.n_updates,
        float(result.virtual_time),
        float(result.report.final_loss),
        result.status.value,
    )


# ---------------------------------------------------------------------------
class TestResolveReplicas:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(REPLICAS_ENV, raising=False)
        assert resolve_replicas() == 1

    def test_explicit_count(self):
        assert resolve_replicas(11) == 11

    def test_zero_means_serial(self):
        assert resolve_replicas(0) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(REPLICAS_ENV, "7")
        assert resolve_replicas() == 7

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(REPLICAS_ENV, "7")
        assert resolve_replicas(3) == 3

    def test_not_capped_by_core_count(self, monkeypatch):
        # A cohort is one process however many replicas it advances.
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 2)
        assert resolve_replicas(64) == 64

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_replicas(-1)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(REPLICAS_ENV, "eleven")
        with pytest.raises(ConfigurationError):
            resolve_replicas()


# ---------------------------------------------------------------------------
class TestPlanCohorts:
    def test_same_shape_configs_chunked(self):
        configs = repeated_configs(make_config(), repeats=7)
        assert plan_cohorts(configs, 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_seed_and_eta_are_the_only_ignored_fields(self):
        # η never enters the batched gradient math (each replica applies
        # its own in step_from), so an η straggler joins the cohort.
        a = make_config(seed=1)
        b = make_config(seed=2)
        c = make_config(seed=3, eta=0.01)  # same shape, different η
        assert plan_cohorts([a, b, c], 11) == [[0, 1, 2]]

    def test_grid_column_merges_into_one_super_cohort(self):
        # A sweep's full η column at fixed (algorithm, m): K seeds ×
        # |η| step sizes, one compatibility group.
        etas = (0.01, 0.05, 0.1)
        configs = [
            make_config(seed=seed, eta=eta) for eta in etas for seed in (1, 2)
        ]
        assert plan_cohorts(configs, 11) == [[0, 1, 2, 3, 4, 5]]
        # The chunk cap still applies to the merged column.
        assert plan_cohorts(configs, 4) == [[0, 1, 2, 3], [4, 5]]

    def test_interleaved_groups_keep_first_appearance_order(self):
        small = make_config(m=2)
        large = make_config(m=4)
        configs = [small, large, small.with_seed(2), large.with_seed(2)]
        assert plan_cohorts(configs, 11) == [[0, 2], [1, 3]]

    def test_all_distinct_yields_singletons(self):
        configs = [make_config(m=m) for m in (1, 2, 3)]
        # SEQ-style m=1 still builds: LSH_ps1 allows any m.
        assert plan_cohorts(configs, 11) == [[0], [1], [2]]

    def test_empty(self):
        assert plan_cohorts([], 11) == []


# ---------------------------------------------------------------------------
class TestReplicaHarness:
    def test_run_repeated_with_replicas_matches_serial(self, problem):
        config = make_config()
        serial = run_repeated(problem, COST, config, repeats=5)
        batched = run_repeated(problem, COST, config, repeats=5, replicas=3)
        assert [identity_of(r) for r in serial] == [identity_of(r) for r in batched]

    def test_map_runs_with_replicas_matches_serial(self, problem):
        configs = repeated_configs(make_config(), repeats=4)
        # A different-η straggler now merges into the cohort (same
        # shape); results must still scatter back identically.
        configs.append(replace(configs[0], eta=0.02))
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        batched = [
            identity_of(r)
            for r in map_runs(problem, COST, configs, replicas=3)
        ]
        assert serial == batched

    def test_replicas_env_var_drives_map_runs(self, problem, monkeypatch):
        monkeypatch.setenv(REPLICAS_ENV, "3")
        configs = repeated_configs(make_config(), repeats=3)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        batched = [identity_of(r) for r in map_runs(problem, COST, configs)]
        assert serial == batched

    def test_replicas_compose_with_workers(self, problem, monkeypatch):
        # Two chunks over two processes; fallbacks (pool failure) still
        # produce identical results, so this holds on any host.
        monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 4)
        configs = repeated_configs(make_config(), repeats=6)
        serial = [identity_of(run_once(problem, COST, c)) for c in configs]
        batched = [
            identity_of(r)
            for r in map_runs(problem, COST, configs, workers=2, replicas=3)
        ]
        assert serial == batched
