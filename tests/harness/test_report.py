"""Tests for the reproduction-report builder."""

from __future__ import annotations

import pytest

from repro.harness.report import (
    PAPER_EXPECTATIONS,
    build_report,
    collect_sections,
    write_report,
)


class TestCollectSections:
    def test_all_expectations_present(self, tmp_path):
        sections = collect_sections(tmp_path)
        assert {s.experiment_id for s in sections} == set(PAPER_EXPECTATIONS)

    def test_missing_render_placeholder(self, tmp_path):
        sections = collect_sections(tmp_path)
        assert all("not regenerated" in s.rendered for s in sections)

    def test_render_picked_up(self, tmp_path):
        (tmp_path / "S1_Fig3.txt").write_text("measured stuff")
        sections = {s.experiment_id: s for s in collect_sections(tmp_path)}
        assert sections["S1/Fig3"].rendered == "measured stuff"


class TestBuildReport:
    def test_contains_every_section(self, tmp_path):
        text = build_report(tmp_path)
        for experiment_id in PAPER_EXPECTATIONS:
            assert experiment_id in text

    def test_profile_name_mentioned(self, tmp_path):
        assert "paper" in build_report(tmp_path, profile_name="paper")

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")


class TestExpectations:
    def test_expectations_mention_key_claims(self):
        joined = " ".join(PAPER_EXPECTATIONS.values())
        assert "2m+1" in joined
        assert "65 s" in joined  # the paper's S2 headline number
        assert "17%" in joined  # the CNN memory claim
        assert "4x" in joined  # the CNN speedup claim
