"""Tests for the synthetic MNIST stand-in and IDX loaders."""

from __future__ import annotations

import gzip
import struct

import numpy as np
import pytest

from repro.data.synthetic_mnist import (
    IMAGE_SIZE,
    N_CLASSES,
    _base_glyph,
    generate_synthetic_mnist,
    load_idx_images,
    load_idx_labels,
)
from repro.errors import ConfigurationError


class TestBaseGlyphs:
    def test_shape_and_range(self):
        for digit in range(10):
            glyph = _base_glyph(digit)
            assert glyph.shape == (IMAGE_SIZE, IMAGE_SIZE)
            assert 0.0 <= glyph.min() and glyph.max() <= 1.0 + 1e-6

    def test_glyphs_are_distinct(self):
        glyphs = [_base_glyph(d) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(glyphs[i] - glyphs[j]).sum() > 1.0


class TestGeneration:
    def test_shapes_and_dtypes(self):
        c = generate_synthetic_mnist(n_train=256, n_eval=64, seed=1)
        assert c.train.images.shape == (256, 28, 28)
        assert c.train.images.dtype == np.float32
        assert c.train.labels.dtype == np.int64
        assert len(c.eval) == 64

    def test_pixel_range(self):
        c = generate_synthetic_mnist(n_train=128, n_eval=32, seed=1)
        assert c.train.images.min() >= 0.0 and c.train.images.max() <= 1.0

    def test_all_classes_present(self):
        c = generate_synthetic_mnist(n_train=500, n_eval=32, seed=1)
        assert set(np.unique(c.train.labels)) == set(range(N_CLASSES))

    def test_deterministic_per_seed(self):
        a = generate_synthetic_mnist(n_train=64, n_eval=16, seed=9)
        b = generate_synthetic_mnist(n_train=64, n_eval=16, seed=9)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_seed_changes_data(self):
        a = generate_synthetic_mnist(n_train=64, n_eval=16, seed=1)
        b = generate_synthetic_mnist(n_train=64, n_eval=16, seed=2)
        assert not np.array_equal(a.train.images, b.train.images)

    def test_train_eval_independent(self):
        c = generate_synthetic_mnist(n_train=64, n_eval=64, seed=1)
        assert not np.array_equal(c.train.images, c.eval.images)

    def test_zero_shift_zero_noise_gives_templates(self):
        c = generate_synthetic_mnist(n_train=64, n_eval=16, seed=1, max_shift=0, noise_std=0.0)
        for i in range(8):
            base = _base_glyph(int(c.train.labels[i]))
            img = c.train.images[i]
            # only intensity scaling applied -> proportional to the glyph
            scale = img.max() / max(base.max(), 1e-9)
            np.testing.assert_allclose(img, base * scale, atol=1e-5)

    def test_classes_statistically_separable(self):
        c = generate_synthetic_mnist(n_train=2000, n_eval=16, seed=3)
        # nearest-template classification must beat 10-class chance by a
        # wide margin (shifts keep it well below 100% — the task is not
        # trivially linear, by design)
        templates = np.stack([_base_glyph(d).ravel() for d in range(10)])
        x = c.train.images.reshape(len(c.train), -1)
        pred = np.argmax(x @ templates.T, axis=1)
        assert (pred == c.train.labels).mean() > 0.3

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_sizes(self, bad):
        with pytest.raises(ConfigurationError):
            generate_synthetic_mnist(n_train=bad, n_eval=16)

    def test_invalid_shift(self):
        with pytest.raises(ConfigurationError):
            generate_synthetic_mnist(n_train=16, n_eval=16, max_shift=14)


class TestIdxLoaders:
    def _write_idx3(self, path, images):
        n, rows, cols = images.shape
        with open(path, "wb") as fh:
            fh.write(struct.pack(">IIII", 0x00000803, n, rows, cols))
            fh.write(images.astype(np.uint8).tobytes())

    def _write_idx1(self, path, labels):
        with open(path, "wb") as fh:
            fh.write(struct.pack(">II", 0x00000801, len(labels)))
            fh.write(labels.astype(np.uint8).tobytes())

    def test_roundtrip_images(self, tmp_path):
        images = np.random.default_rng(0).integers(0, 256, size=(4, 5, 6)).astype(np.uint8)
        path = tmp_path / "img.idx3"
        self._write_idx3(path, images)
        loaded = load_idx_images(path)
        assert loaded.shape == (4, 5, 6)
        np.testing.assert_allclose(loaded, images / 255.0, atol=1e-7)

    def test_roundtrip_labels(self, tmp_path):
        labels = np.array([3, 1, 4, 1, 5], dtype=np.uint8)
        path = tmp_path / "lab.idx1"
        self._write_idx1(path, labels)
        np.testing.assert_array_equal(load_idx_labels(path), labels)

    def test_gzip_supported(self, tmp_path):
        labels = np.array([1, 2], dtype=np.uint8)
        path = tmp_path / "lab.idx1.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(struct.pack(">II", 0x00000801, 2))
            fh.write(labels.tobytes())
        np.testing.assert_array_equal(load_idx_labels(path), labels)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(struct.pack(">IIII", 0xDEADBEEF, 1, 1, 1))
        with pytest.raises(ConfigurationError):
            load_idx_images(path)
        path2 = tmp_path / "bad2"
        path2.write_bytes(struct.pack(">II", 0xDEADBEEF, 1))
        with pytest.raises(ConfigurationError):
            load_idx_labels(path2)
