"""Tests for Dataset and MiniBatcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.batcher import Dataset, MiniBatcher
from repro.errors import ConfigurationError, ShapeError


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return Dataset(images=rng.normal(size=(20, 4, 4)).astype(np.float32),
                   labels=rng.integers(0, 3, size=20))


class TestDataset:
    def test_len(self, dataset):
        assert len(dataset) == 20

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ShapeError):
            Dataset(images=np.zeros((3, 2, 2)), labels=np.zeros(4, dtype=int))

    def test_labels_must_be_1d(self):
        with pytest.raises(ShapeError):
            Dataset(images=np.zeros((3, 2, 2)), labels=np.zeros((3, 1), dtype=int))

    def test_n_classes(self, dataset):
        assert dataset.n_classes == int(dataset.labels.max()) + 1

    def test_as_flat(self, dataset):
        flat = dataset.as_flat()
        assert flat.shape == (20, 16)

    def test_as_images_adds_channel(self, dataset):
        imgs = dataset.as_images()
        assert imgs.shape == (20, 1, 4, 4)

    def test_as_images_wrong_channels(self, dataset):
        with pytest.raises(ShapeError):
            dataset.as_images(channels=3)

    def test_as_images_passthrough_4d(self):
        ds = Dataset(images=np.zeros((5, 2, 3, 3)), labels=np.zeros(5, dtype=int))
        assert ds.as_images().shape == (5, 2, 3, 3)

    def test_subset(self, dataset):
        sub = dataset.subset(5)
        assert len(sub) == 5
        with pytest.raises(ConfigurationError):
            dataset.subset(0)
        with pytest.raises(ConfigurationError):
            dataset.subset(21)


class TestMiniBatcher:
    def test_batch_shapes(self, dataset):
        b = MiniBatcher(dataset.as_flat(), dataset.labels, 8, np.random.default_rng(1))
        x, y = b.next_batch()
        assert x.shape == (8, 16) and y.shape == (8,)

    def test_batch_capped_at_dataset_size(self, dataset):
        b = MiniBatcher(dataset.as_flat(), dataset.labels, 100, np.random.default_rng(1))
        x, _ = b.next_batch()
        assert x.shape[0] == 20

    def test_deterministic_stream(self, dataset):
        b1 = MiniBatcher(dataset.as_flat(), dataset.labels, 4, np.random.default_rng(5))
        b2 = MiniBatcher(dataset.as_flat(), dataset.labels, 4, np.random.default_rng(5))
        for _ in range(3):
            x1, y1 = b1.next_batch()
            x2, y2 = b2.next_batch()
            np.testing.assert_array_equal(x1, x2)
            np.testing.assert_array_equal(y1, y2)

    def test_streams_with_different_rngs_differ(self, dataset):
        b1 = MiniBatcher(dataset.as_flat(), dataset.labels, 8, np.random.default_rng(1))
        b2 = MiniBatcher(dataset.as_flat(), dataset.labels, 8, np.random.default_rng(2))
        x1, _ = b1.next_batch()
        x2, _ = b2.next_batch()
        assert not np.array_equal(x1, x2)

    def test_labels_match_images(self, dataset):
        flat = dataset.as_flat()
        b = MiniBatcher(flat, dataset.labels, 6, np.random.default_rng(3))
        x, y = b.next_batch()
        for xi, yi in zip(x, y):
            idx = np.flatnonzero((flat == xi).all(axis=1))[0]
            assert dataset.labels[idx] == yi

    def test_invalid_args(self, dataset):
        with pytest.raises(ConfigurationError):
            MiniBatcher(dataset.as_flat(), dataset.labels, 0, np.random.default_rng(0))
        with pytest.raises(ShapeError):
            MiniBatcher(dataset.as_flat(), dataset.labels[:-1], 4, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            MiniBatcher(np.zeros((0, 3)), np.zeros(0, dtype=int), 4, np.random.default_rng(0))

    def test_n_samples(self, dataset):
        b = MiniBatcher(dataset.as_flat(), dataset.labels, 4, np.random.default_rng(0))
        assert b.n_samples == 20


class TestBlockedIndexStream:
    """next_batch_indices / next_batch_into: the blocked index stream
    used by the replica-stacked gradient kernel."""

    def test_indices_match_into_gather(self, dataset):
        flat = dataset.as_flat()
        b1 = MiniBatcher(flat, dataset.labels, 4, np.random.default_rng(9))
        b2 = MiniBatcher(flat, dataset.labels, 4, np.random.default_rng(9))
        x_out = np.empty((4, flat.shape[1]), dtype=flat.dtype)
        y_out = np.empty(4, dtype=dataset.labels.dtype)
        for _ in range(5):
            idx = b1.next_batch_indices()
            x, y = b2.next_batch_into(x_out, y_out)
            np.testing.assert_array_equal(flat[idx], x)
            np.testing.assert_array_equal(dataset.labels[idx], y)

    def test_blocked_stream_matches_per_call_draws(self, dataset):
        """One block draw equals the concatenation of per-batch draws
        from the same seed (bounded integer sampling is element-wise)."""
        flat = dataset.as_flat()
        blocked = MiniBatcher(flat, dataset.labels, 4, np.random.default_rng(3))
        percall = MiniBatcher(flat, dataset.labels, 4, np.random.default_rng(3))
        for _ in range(MiniBatcher._INDEX_BLOCK_BATCHES + 2):  # cross a refill
            idx = blocked.next_batch_indices()
            x, y = percall.next_batch()
            np.testing.assert_array_equal(flat[idx], x)
            np.testing.assert_array_equal(dataset.labels[idx], y)

    def test_indices_are_a_view_into_the_block(self, dataset):
        """The documented caveat: returned indices alias the internal
        block — use before the next draw or copy."""
        b = MiniBatcher(dataset.as_flat(), dataset.labels, 4, np.random.default_rng(1))
        first = b.next_batch_indices()
        assert np.shares_memory(first, b._idx_block)
