"""Tests for the SQLite result store: content addressing, dedup
semantics, and the typed query API."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.store import FailureCounts, GroupKey, ResultStore, ingest_path, row_digest
from repro.telemetry.jsonl import read_jsonl


@pytest.fixture
def store(sweep_jsonl):
    with ResultStore(":memory:") as s:
        ingest_path(s, sweep_jsonl)
        yield s


class TestRowDigest:
    def test_stable_across_encode_decode(self, sweep_jsonl):
        (row,) = read_jsonl(sweep_jsonl)[:1]
        assert row_digest(row) == row_digest(dict(row))

    def test_wall_clock_fields_excluded(self, sweep_jsonl):
        # Re-running the same config costs different wall time but is
        # the same sample — the address must not move.
        (row,) = read_jsonl(sweep_jsonl)[:1]
        jittered = dict(row)
        jittered["wall_seconds"] = 123.456
        jittered["profile"] = {"totals": {"simulate": 9.9}}
        assert row_digest(jittered) == row_digest(row)

    def test_provenance_included(self, sweep_jsonl):
        # Same config from a different tree/host is a *new* sample.
        (row,) = read_jsonl(sweep_jsonl)[:1]
        foreign = dict(row)
        foreign["provenance"] = {**(row.get("provenance") or {}),
                                 "hostname": "elsewhere"}
        assert row_digest(foreign) != row_digest(row)

    def test_simulation_fields_included(self, sweep_jsonl):
        (row,) = read_jsonl(sweep_jsonl)[:1]
        changed = dict(row)
        changed["n_updates"] = int(row["n_updates"]) + 1
        assert row_digest(changed) != row_digest(row)


class TestInsert:
    def test_reinsert_is_noop(self, store, sweep_jsonl):
        before = store.count()
        for row in read_jsonl(sweep_jsonl):
            assert store.insert_row(row, source="again") is False
        assert store.count() == before

    def test_rejects_non_result_rows(self, store):
        with pytest.raises(ConfigurationError, match="config/report"):
            store.insert_row({"n_updates": 3}, source="junk")

    def test_nan_stored_as_null(self, store):
        # HOGWILD is lock-free: mean_lock_wait is NaN in the row, and
        # sqlite must see NULL, not a poisoned float.
        rows = store._conn.execute(
            "SELECT mean_lock_wait FROM runs WHERE algorithm = 'HOG'"
        ).fetchall()
        assert rows and all(v is None for (v,) in rows)

    def test_run_key_backfill_on_duplicate(self, store, sweep_jsonl):
        (row,) = read_jsonl(sweep_jsonl)[:1]
        assert store.insert_row(row, source="x", run_key="wk:abc") is False
        keys = [k for (k,) in store._conn.execute(
            "SELECT run_key FROM runs WHERE run_key IS NOT NULL")]
        assert keys == ["wk:abc"]


class TestQueries:
    def test_counts_and_enums(self, store):
        assert store.count() == 8
        assert store.algorithms() == ["ASYNC", "HOG"]
        assert store.epsilons() == [0.1, 0.5]
        assert store.default_epsilon() == 0.1

    def test_group_keys(self, store):
        assert store.group_keys() == [
            GroupKey(algorithm="ASYNC", m=4, eta=0.05),
            GroupKey(algorithm="HOG", m=4, eta=0.05),
        ]

    def test_group_stats_times(self, store, sweep_results):
        groups = {g.key.algorithm: g for g in store.group_stats(0.1)}
        for algorithm in ("ASYNC", "HOG"):
            want = sorted(
                r.time_to(0.1) for r in sweep_results
                if r.config.algorithm == algorithm
            )
            got = sorted(groups[algorithm].times)
            assert got == pytest.approx(want)
            assert all(math.isfinite(t) for t in got)

    def test_failure_counts_all_converged(self, store):
        assert store.failure_counts() == {
            "ASYNC": FailureCounts(converged=4),
            "HOG": FailureCounts(converged=4),
        }

    def test_aggregates_sorted_per_algorithm(self, store):
        aggs = store.aggregates()
        assert [a["algorithm"] for a in aggs] == ["ASYNC", "HOG"]
        for agg in aggs:
            assert agg["n_runs"] == 4
            assert agg["kernel_fallbacks"] == 0
            assert agg["mean_staleness"] > 0

    def test_run_rows_round_trip(self, store):
        rows = list(store.run_rows(algorithm="HOG"))
        assert len(rows) == 4
        for row in rows:
            assert row["config"]["algorithm"] == "HOG"
            assert "report" in row and "threshold_times" in row["report"]

    def test_default_epsilon_empty_store(self):
        with ResultStore(":memory:") as empty:
            assert empty.default_epsilon() is None
            assert empty.group_stats(0.1) == []


class TestPersistence:
    def test_on_disk_store_survives_reopen(self, sweep_jsonl, tmp_path):
        db = tmp_path / "results.sqlite"
        with ResultStore(db) as store:
            ingest_path(store, sweep_jsonl)
        with ResultStore(db) as store:
            assert store.count() == 8
            # ... and the dedup index survives with it.
            report = ingest_path(store, sweep_jsonl)
            assert report.inserted == 0
            assert report.duplicates == 8
