"""Shared fixtures for the result-store tests: one small two-algorithm
sweep, run once per session and reused by every store/report test."""

from __future__ import annotations

import pytest

from repro.harness.grid import SweepGrid
from repro.telemetry.jsonl import write_jsonl

from tests.conftest import make_run_config  # noqa: F401  (re-exported)


@pytest.fixture(scope="session")
def sweep_results():
    """8 converged runs: {ASYNC, HOG} x m=4 x eta=0.05 x 4 seeds."""
    from repro.core.problem import QuadraticProblem
    from repro.sim.cost import CostModel

    grid = SweepGrid(
        algorithms=("ASYNC", "HOG"),
        thread_counts=(4,),
        etas=(0.05,),
        repeats=4,
        seed=7,
        epsilons=(0.5, 0.1),
        max_wall_seconds=30.0,
    )
    return grid.run(
        QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05),
        CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3),
    )


@pytest.fixture
def sweep_jsonl(sweep_results, tmp_path):
    return write_jsonl(sweep_results, tmp_path / "sweep.jsonl")
