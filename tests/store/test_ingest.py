"""Tests for the tolerant ingester: dispatch across artifact kinds,
migration chains through the store, and the warned-skip contract for
torn/corrupt/foreign rows."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.store import ResultStore, ingest_path, ingest_paths
from repro.telemetry.jsonl import read_jsonl
from repro.telemetry.metrics import SCHEMA_VERSION


@pytest.fixture
def store():
    with ResultStore(":memory:") as s:
        yield s


class TestPlainJsonl:
    def test_ingest_and_idempotent_reingest(self, store, sweep_jsonl):
        first = ingest_path(store, sweep_jsonl)
        assert (first.inserted, first.duplicates, first.skipped) == (8, 0, 0)
        again = ingest_path(store, sweep_jsonl)
        assert (again.inserted, again.duplicates, again.skipped) == (0, 8, 0)
        assert store.count() == 8

    def test_missing_path_raises(self, store, tmp_path):
        with pytest.raises(ConfigurationError, match="no such file"):
            ingest_path(store, tmp_path / "absent.jsonl")

    def test_non_run_dir_raises(self, store, tmp_path):
        with pytest.raises(ConfigurationError, match="not a service run dir"):
            ingest_path(store, tmp_path)


class TestMigrationChain:
    """v1 and v2 rows ingest through the same migrate path as
    read_jsonl — and land identically to their migrated v3 twins."""

    def _downgrade(self, row: dict, version: int) -> dict:
        row = dict(row)
        if version == 1:
            for key in ("wall_phases", "profile", "provenance",
                        "kernel_fallbacks"):
                row.pop(key, None)
        elif version == 2:
            row.pop("kernel_fallbacks", None)
        row["schema_version"] = version
        return row

    def test_v1_rows_ingest_with_migrated_defaults(self, store, sweep_jsonl, tmp_path):
        from repro.telemetry.jsonl import result_to_line

        rows = read_jsonl(sweep_jsonl)
        path = tmp_path / "v1.jsonl"
        path.write_text("".join(
            result_to_line(self._downgrade(r, 1)) + "\n" for r in rows
        ))
        report = ingest_path(store, path)
        assert report.inserted == len(rows)
        assert report.skipped == 0
        # The schema_version *column* keeps the original (which build
        # wrote this sample); the stored row itself is migrated.
        versions = {v for (v,) in store._conn.execute(
            "SELECT schema_version FROM runs")}
        assert versions == {1}
        for stored in store.run_rows():
            assert stored["schema_version"] == SCHEMA_VERSION
            assert stored["kernel_fallbacks"] == 0
            assert stored["provenance"] == {}

    def test_v1_v3_round_trip_same_sample(self, store, sweep_jsonl, tmp_path):
        """A v1 archive of the same runs groups into the same
        ε-convergence sample the v3 rows produce."""
        from repro.telemetry.jsonl import result_to_line

        rows = read_jsonl(sweep_jsonl)
        path = tmp_path / "v1.jsonl"
        path.write_text("".join(
            result_to_line(self._downgrade(r, 1)) + "\n" for r in rows
        ))
        ingest_path(store, path)
        v1_times = {g.key.algorithm: sorted(g.times)
                    for g in store.group_stats(0.1)}
        with ResultStore(":memory:") as v3_store:
            ingest_path(v3_store, sweep_jsonl)
            v3_times = {g.key.algorithm: sorted(g.times)
                        for g in v3_store.group_stats(0.1)}
        assert v1_times == pytest.approx(v3_times)

    def test_forward_version_rows_are_warned_skips(self, store, sweep_jsonl, tmp_path):
        good = json.loads(sweep_jsonl.read_text().splitlines()[0])
        future = dict(good)
        future["schema_version"] = SCHEMA_VERSION + 7
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps(future) + "\n" + json.dumps(good) + "\n"
        )
        with pytest.warns(UserWarning, match="schema_version"):
            report = ingest_path(store, path)
        assert report.skipped == 1
        assert report.inserted == 1
        assert store.count() == 1


class TestTornRows:
    def test_torn_and_corrupt_lines_degrade_to_warned_skips(
        self, store, sweep_jsonl, tmp_path
    ):
        lines = sweep_jsonl.read_text().splitlines()
        path = tmp_path / "torn.jsonl"
        path.write_text(
            lines[0] + "\n"
            + lines[1][: len(lines[1]) // 2] + "\n"   # torn mid-write
            + "not json at all\n"                      # corrupt
            + "[1, 2, 3]\n"                            # wrong shape
            + lines[2] + "\n"
        )
        with pytest.warns(UserWarning):
            report = ingest_path(store, path)
        assert report.inserted == 2
        assert report.skipped == 3
        assert store.count() == 2


class TestBenchHistory:
    def test_trajectory_entries_ingest_per_metric(self, store, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        entries = [
            {"label": "a", "metrics": {"engine.events_per_sec": 100.0,
                                       "sweep.runs_per_sec": 5.0},
             "provenance": {"git_sha": "abc", "hostname": "h",
                            "pool_mode": "fork"}},
            {"label": "b", "metrics": {"engine.events_per_sec": 120.0},
             "provenance": {"git_sha": "def"}},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in entries))
        report = ingest_path(store, path)
        assert report.bench_entries == 3
        assert store.bench_entry_count() == 2
        trajectory = store.bench_trajectory()
        assert trajectory["engine.events_per_sec"] == [
            (0, "a", 100.0), (1, "b", 120.0)
        ]
        # Idempotent like everything else.
        again = ingest_path(store, path)
        assert again.bench_entries == 0

    def test_repo_history_file_is_recognized(self, store):
        from pathlib import Path

        history = Path(__file__).resolve().parents[2] / "BENCH_history.jsonl"
        report = ingest_path(store, history)
        assert report.bench_entries > 0
        assert report.inserted == 0


class TestServiceRunDir:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        from repro.core.problem import QuadraticProblem
        from repro.service import ExperimentService
        from repro.sim.cost import CostModel

        from tests.conftest import make_run_config

        run_dir = tmp_path_factory.mktemp("svc") / "run"
        configs = [
            make_run_config(algorithm=a, seed=s, max_updates=5_000)
            for a in ("ASYNC", "HOG") for s in range(2)
        ]
        with ExperimentService(run_dir, workers=1) as service:
            service.map(
                QuadraticProblem(32, h=1.0, b=1.5, noise_sigma=0.05),
                CostModel(tc=2e-3, tu=1e-3, t_copy=0.5e-3),
                configs,
            )
            service.finalize()
        return run_dir

    def test_journals_and_merge_dedup_to_one_row_per_run(self, store, run_dir):
        report = ingest_path(store, run_dir)
        assert store.count() == 4
        assert report.inserted == 4
        assert report.duplicates == 4  # journal copies of the merged rows
        assert report.traces == 1

    def test_rows_carry_run_key_and_workload(self, store, run_dir):
        ingest_path(store, run_dir)
        summary = json.loads((run_dir / "summary.json").read_text())
        stored = {
            key for (key,) in store._conn.execute(
                "SELECT run_key FROM runs WHERE run_key IS NOT NULL")
        }
        assert stored == set(summary["run_keys"])
        workloads = store.workloads()
        assert len(workloads) == 1 and workloads[0] is not None
        # run_key prefix is the workload key: the natural-key contract.
        assert all(key.startswith(f"{workloads[0]}:") for key in stored)

    def test_reingest_run_dir_is_noop(self, store, run_dir):
        ingest_path(store, run_dir)
        again = ingest_path(store, run_dir)
        assert again.inserted == 0
        assert again.traces == 0

    def test_summary_run_keys_align_with_merged(self, run_dir):
        summary = json.loads((run_dir / "summary.json").read_text())
        merged = read_jsonl(run_dir / "merged.jsonl")
        assert len(summary["run_keys"]) == len(merged) == 4


class TestMultiplePaths:
    def test_ingest_paths_merges_tallies(self, store, sweep_jsonl, tmp_path):
        other = tmp_path / "copy.jsonl"
        other.write_text(sweep_jsonl.read_text())
        report = ingest_paths(store, [sweep_jsonl, other])
        assert report.inserted == 8
        assert report.duplicates == 8
        assert len(report.files) == 2
