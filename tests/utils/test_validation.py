"""Tests for repro.utils.validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.utils.validation import (
    check_array_1d,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)

    def test_inf_rejected_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", math.inf)

    def test_inf_allowed_when_opted_in(self):
        assert check_positive("x", math.inf, allow_inf=True) == math.inf


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", bad)

    def test_inf_toggle(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", math.inf)
        assert check_non_negative("x", math.inf, allow_inf=True) == math.inf


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan"), None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckArray1d:
    def test_accepts_list(self):
        out = check_array_1d("v", [1.0, 2.0])
        assert out.shape == (2,)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            check_array_1d("v", np.zeros((2, 2)))

    def test_size_enforced(self):
        with pytest.raises(ShapeError):
            check_array_1d("v", np.zeros(3), size=4)
        assert check_array_1d("v", np.zeros(4), size=4).size == 4


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("k", "a", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="k"):
            check_in_choices("k", "c", ("a", "b"))
