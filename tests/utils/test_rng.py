"""Tests for repro.utils.rng: determinism and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngFactory, spawn_rng


class TestSpawnRng:
    def test_returns_requested_count(self):
        assert len(spawn_rng(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rng(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(0, -1)

    def test_same_seed_same_streams(self):
        a = spawn_rng(42, 3)
        b = spawn_rng(42, 3)
        for ga, gb in zip(a, b):
            assert ga.integers(1 << 40) == gb.integers(1 << 40)

    def test_children_are_independent(self):
        a, b = spawn_rng(42, 2)
        # Independent streams should produce (almost surely) different draws.
        assert not np.array_equal(a.normal(size=16), b.normal(size=16))

    def test_accepts_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        gens = spawn_rng(ss, 2)
        assert len(gens) == 2


class TestRngFactory:
    def test_named_is_deterministic(self):
        x = RngFactory(1).named("a").normal(size=8)
        y = RngFactory(1).named("a").normal(size=8)
        np.testing.assert_array_equal(x, y)

    def test_named_streams_differ_by_name(self):
        f = RngFactory(1)
        assert not np.array_equal(f.named("a").normal(size=8), f.named("b").normal(size=8))

    def test_named_streams_differ_by_seed(self):
        assert not np.array_equal(
            RngFactory(1).named("a").normal(size=8),
            RngFactory(2).named("a").normal(size=8),
        )

    def test_named_fresh_instance_each_call(self):
        f = RngFactory(3)
        g1 = f.named("x")
        g2 = f.named("x")
        assert g1 is not g2
        assert g1.integers(1 << 40) == g2.integers(1 << 40)

    def test_adding_name_does_not_shift_existing(self):
        # The point of named streams: creating extra consumers must not
        # perturb an existing stream.
        f1 = RngFactory(9)
        before = f1.named("scheduler").normal(size=4)
        f2 = RngFactory(9)
        _ = f2.named("new-consumer")
        after = f2.named("scheduler").normal(size=4)
        np.testing.assert_array_equal(before, after)

    def test_sequence_yields_distinct_streams(self):
        f = RngFactory(5)
        it = f.sequence()
        a, b = next(it), next(it)
        assert not np.array_equal(a.normal(size=8), b.normal(size=8))

    def test_child_factories_differ(self):
        f = RngFactory(11)
        c0, c1 = f.child(0), f.child(1)
        assert not np.array_equal(c0.named("a").normal(size=8), c1.named("a").normal(size=8))

    def test_child_deterministic(self):
        a = RngFactory(11).child(4).named("z").normal(size=4)
        b = RngFactory(11).child(4).named("z").normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_seed_property(self):
        assert RngFactory(77).seed == 77
