"""Tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import WallTimer, time_callable


class TestWallTimer:
    def test_accumulates(self):
        t = WallTimer()
        with t:
            sum(range(10_000))
        first = t.elapsed
        with t:
            sum(range(10_000))
        assert t.elapsed > first > 0

    def test_exit_without_enter_raises(self):
        t = WallTimer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)


class TestTimeCallable:
    def test_returns_all_stats(self):
        stats = time_callable(lambda: sum(range(1000)), repeats=3, warmup=0)
        assert set(stats) == {"min", "median", "mean", "max"}
        assert 0 <= stats["min"] <= stats["median"] <= stats["max"]

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_warmup_calls_made(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5
