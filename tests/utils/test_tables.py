"""Tests for repro.utils.tables rendering helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.tables import (
    five_number_summary,
    render_boxes,
    render_series,
    render_table,
    sparkline,
)


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].endswith("bb")

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456789e-7]])
        assert "e-07" in out

    def test_nan_rendering(self):
        out = render_table(["x"], [[float("nan")]])
        assert "nan" in out


class TestFiveNumberSummary:
    def test_known_values(self):
        s = five_number_summary([1, 2, 3, 4, 5])
        assert s["min"] == 1 and s["max"] == 5 and s["median"] == 3 and s["n"] == 5

    def test_empty_gives_nan(self):
        s = five_number_summary([])
        assert s["n"] == 0 and np.isnan(s["median"])

    def test_nan_and_none_filtered(self):
        s = five_number_summary([1.0, float("nan"), None, 3.0])
        assert s["n"] == 2 and s["min"] == 1.0 and s["max"] == 3.0

    def test_quartiles_order(self):
        s = five_number_summary(list(range(100)))
        assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]


class TestRenderBoxes:
    def test_contains_groups_and_failures(self):
        out = render_boxes(
            {"ASYNC": [1.0, 2.0], "LSH": [0.5]},
            failures={"ASYNC": (1, 2)},
            title="demo",
            unit="s",
        )
        assert "ASYNC" in out and "LSH" in out
        assert "demo" in out and "[s]" in out

    def test_empty_group(self):
        out = render_boxes({"X": []})
        assert "X" in out


class TestRenderSeries:
    def test_downsamples(self):
        xs = np.linspace(0, 1, 100)
        out = render_series({"curve": (xs, xs**2)}, points=5)
        # 5 sample rows plus header/rule/label lines
        assert out.count("\n") <= 9

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series({"c": ([1, 2], [1])})

    def test_empty_series_handled(self):
        out = render_series({"c": ([], [])})
        assert "empty" in out


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert set(sparkline([5, 5, 5])) == {"▁"}

    def test_no_finite_data(self):
        assert "no finite" in sparkline([float("nan")])

    def test_width_limit(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40
