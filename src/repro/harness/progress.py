"""Live progress heartbeats for long experiment sweeps.

A paper-profile sweep fans hundreds of runs out over a process pool and
then goes silent for minutes — indistinguishable, from the terminal,
from a hung pool. :class:`ProgressReporter` is the harness's heartbeat:
:func:`repro.harness.parallel.map_runs` (and everything layered on it)
accepts a ``progress`` callback invoked as ``progress(done, total,
label)`` after every completed run, and the reporter renders those
ticks either as

* a single in-place updating status line (``\\r``) when the output
  stream is a TTY, or
* one plain timestamped log line every ``min_interval`` seconds (and
  always on the final tick) when it is not — so CI logs and piped
  output get a bounded number of lines instead of a carriage-return
  soup.

The callback contract is deliberately tiny (any ``(done, total, label)``
callable works; tests pass a list-appender) and the reporter is pure
stdout cosmetics: it never touches run results, so sweeps remain
bitwise-deterministic with or without it.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

__all__ = ["ProgressCallback", "ProgressReporter"]

#: The callback shape ``map_runs`` invokes: ``progress(done, total, label)``.
ProgressCallback = Callable[[int, int, str], None]


class ProgressReporter:
    """Render ``(done, total, label)`` ticks as a terminal heartbeat.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``sys.stderr`` so progress noise
        never mixes with piped report/JSONL output on stdout.
    min_interval:
        Minimum seconds between repaints. TTY repaints are cheap but
        non-TTY streams emit one *line* per repaint, so the default
        (2 s) bounds a long sweep's log to a few dozen heartbeats.
    bar_width:
        Width of the TTY progress bar in characters.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        min_interval: float = 2.0,
        bar_width: int = 24,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.bar_width = int(bar_width)
        self._start = time.monotonic()
        self._last_paint = float("-inf")
        self._painted = False
        try:
            self._is_tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._is_tty = False

    # ------------------------------------------------------------------
    def __call__(self, done: int, total: int, label: str = "") -> None:
        """One tick. Repaints at most every ``min_interval`` seconds,
        except the final tick (``done >= total``), which always lands."""
        now = time.monotonic()
        final = done >= total
        if not final and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        elapsed = now - self._start
        if self._is_tty:
            self._paint_tty(done, total, label, elapsed, final)
        else:
            self._paint_line(done, total, label, elapsed)

    def close(self) -> None:
        """Terminate an in-place TTY status line with a newline."""
        if self._is_tty and self._painted:
            self.stream.write("\n")
            self.stream.flush()
            self._painted = False

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _eta(self, done: int, total: int, elapsed: float) -> str:
        if done <= 0 or done >= total:
            return ""
        remaining = elapsed * (total - done) / done
        return f" eta {remaining:.0f}s"

    def _paint_tty(
        self, done: int, total: int, label: str, elapsed: float, final: bool
    ) -> None:
        frac = done / total if total else 1.0
        filled = int(round(self.bar_width * min(frac, 1.0)))
        bar = "#" * filled + "-" * (self.bar_width - filled)
        suffix = f" {label}" if label else ""
        line = (
            f"\r[{bar}] {done}/{total} ({frac:.0%}) "
            f"{elapsed:.0f}s{self._eta(done, total, elapsed)}{suffix}"
        )
        # Pad over any longer previous paint, then rewind to line start.
        self.stream.write(f"{line:<79}")
        self.stream.flush()
        self._painted = True
        if final:
            self.close()

    def _paint_line(self, done: int, total: int, label: str, elapsed: float) -> None:
        suffix = f" {label}" if label else ""
        self.stream.write(
            f"progress: {done}/{total} runs {elapsed:.0f}s"
            f"{self._eta(done, total, elapsed)}{suffix}\n"
        )
        self.stream.flush()
