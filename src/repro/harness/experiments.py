"""The paper's experiment suite (Table I, steps S1-S5).

Each function regenerates the data behind one group of figures and
returns an :class:`ExperimentResult` holding both the structured data
(for assertions / further analysis) and a rendered text report (the
plain-text counterpart of the paper's plots, quoted in EXPERIMENTS.md).

| Step | Figures    | Function                |
|------|------------|-------------------------|
| S1   | Fig 3      | :func:`s1_scalability`  |
| S1   | Fig 8      | :func:`s1_stepsize`     |
| S2   | Fig 4-6    | :func:`s2_high_precision` |
| S3   | Fig 7      | :func:`s3_cnn`          |
| S4   | Fig 4-6    | :func:`s4_high_parallelism` |
| S5   | Fig 10     | :func:`s5_memory`       |
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.harness.config import Profile, RunConfig, Workloads
from repro.harness.results import (
    convergence_boxes,
    median_progress_curve,
    pooled_staleness,
    statistical_efficiency_boxes,
    staleness_boxes,
    time_per_update_boxes,
)
from repro.harness.parallel import map_runs
from repro.harness.runner import RunResult, repeated_configs
from repro.utils.tables import five_number_summary, render_boxes, render_series, render_table

#: The algorithm set of Section V (SEQ is run only at m=1).
DEFAULT_ALGORITHMS = ("SEQ", "ASYNC", "HOG", "LSH_psinf", "LSH_ps1", "LSH_ps0")
PARALLEL_ALGORITHMS = ("ASYNC", "HOG", "LSH_psinf", "LSH_ps1", "LSH_ps0")


def _dispatch(
    problem, cost, configs, *, workers=None, replicas=None, progress=None,
    pool=None, cache=None, service=None,
):
    """Route one config batch to the execution plane.

    With a :class:`~repro.service.experiment.ExperimentService` the
    batch goes through the durable queue (the service owns workers /
    replicas / pool / cache, so those arguments are ignored); without
    one it is the classic direct :func:`map_runs` fan-out. Both return
    the same results in the same order — the service is a routing
    change, not a semantic one."""
    if service is not None:
        return service.map(problem, cost, configs, progress=progress)
    return map_runs(
        problem, cost, configs, workers=workers, replicas=replicas,
        progress=progress, pool=pool, cache=cache,
    )


@dataclass
class ExperimentResult:
    """One experiment's structured outcome + rendered report."""

    experiment_id: str
    title: str
    data: dict = field(default_factory=dict)
    text: str = ""
    runs: list[RunResult] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


def _base_config(workloads: Workloads, kind: str, *, m: int, eta: float, seed: int) -> RunConfig:
    profile = workloads.profile
    epsilons = profile.mlp_epsilons if kind != "cnn" else profile.cnn_epsilons
    return RunConfig(
        algorithm="SEQ" if m == 1 else "ASYNC",  # placeholder; callers replace()
        m=m,
        eta=eta,
        seed=seed,
        epsilons=epsilons,
        target_epsilon=min(epsilons),
        max_updates=profile.max_updates,
        max_virtual_time=profile.max_virtual_time,
        max_wall_seconds=profile.max_wall_seconds,
    )


def _sweep(
    workloads: Workloads,
    kind: str,
    algorithms: Sequence[str],
    thread_counts: Sequence[int],
    *,
    eta: float,
    seed: int,
    repeats: int | None = None,
    epsilons: tuple[float, ...] | None = None,
    max_updates: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> list[RunResult]:
    """Run every (algorithm, m) cell ``repeats`` times.

    All cells × seeds are fanned out over one process pool when
    ``workers`` (or ``REPRO_WORKERS``) asks for parallelism, and each
    cell's repeat seeds are batched into lockstep replica cohorts when
    ``replicas`` (or ``REPRO_REPLICAS``) asks for vectorization; the
    result list is identical to the serial one either way. ``pool``
    reuses one persistent :class:`~repro.harness.pool.WorkerPool`
    across the whole experiment suite (one spawn, one problem
    broadcast per workload), ``cache`` serves already-computed cells
    from a :class:`~repro.harness.cache.RunCache` — neither changes a
    single result bit. ``service`` routes the batch through a durable
    :class:`~repro.service.experiment.ExperimentService` queue instead
    (crash/resume support; same results)."""
    problem = workloads.problem(kind)
    cost = workloads.cost(kind)
    repeats = repeats or workloads.profile.repeats
    configs = []
    for alg in algorithms:
        ms = (1,) if alg == "SEQ" else thread_counts
        for m in ms:
            cfg = _base_config(workloads, kind, m=m, eta=eta, seed=seed)
            cfg = replace(cfg, algorithm=alg)
            if epsilons is not None:
                cfg = replace(cfg, epsilons=epsilons, target_epsilon=min(epsilons))
            if max_updates is not None:
                cfg = replace(cfg, max_updates=max_updates)
            configs.extend(repeated_configs(cfg, repeats=repeats))
    return _dispatch(
        problem, cost, configs, workers=workers, replicas=replicas, progress=progress,
        pool=pool, cache=cache, service=service,
    )


# ----------------------------------------------------------------------
# S1 — Fig 3: scalability sweep at eps = 50%.
# ----------------------------------------------------------------------
def s1_scalability(
    workloads: Workloads,
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    thread_counts: Sequence[int] | None = None,
    eta: float | None = None,
    seed: int = 100,
    repeats: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """Fig. 3: MLP 50%-convergence wall-clock time (left) and time per
    SGD iteration (right), under varying parallelism."""
    thread_counts = tuple(thread_counts or workloads.profile.thread_counts)
    eta = eta if eta is not None else workloads.profile.default_eta
    runs = _sweep(
        workloads,
        "mlp",
        algorithms,
        thread_counts,
        eta=eta,
        seed=seed,
        repeats=repeats,
        epsilons=(0.75, 0.5),
        workers=workers,
        replicas=replicas,
        progress=progress,
        pool=pool,
        cache=cache,
        service=service,
    )
    key = lambda r: f"{r.config.algorithm}/m={r.config.m}"  # noqa: E731
    boxes, failures = convergence_boxes(runs, 0.5, key=key)
    tpu = time_per_update_boxes(runs, key=key)
    text = render_boxes(
        boxes, title="Fig 3 (left): time to 50%-convergence, MLP", unit="virtual s", failures=failures
    )
    text += "\n\n" + render_boxes(
        tpu, title="Fig 3 (right): computation time per SGD iteration", unit="virtual s/iter"
    )
    return ExperimentResult(
        "S1/Fig3",
        "MLP scalability sweep (eps=50%)",
        data={"boxes": boxes, "failures": failures, "time_per_update": tpu},
        text=text,
        runs=runs,
    )


# ----------------------------------------------------------------------
# S1 — Fig 8: step-size tuning and statistical efficiency.
# ----------------------------------------------------------------------
def s1_stepsize(
    workloads: Workloads,
    *,
    algorithms: Sequence[str] = PARALLEL_ALGORITHMS,
    etas: Sequence[float] | None = None,
    m: int = 16,
    seed: int = 200,
    repeats: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """Fig. 8: 50%-convergence time vs step size (left) and statistical
    efficiency — iterations to 50% (right), MLP at m=16."""
    etas = tuple(etas or workloads.profile.step_sizes)
    problem = workloads.problem("mlp")
    cost = workloads.cost("mlp")
    repeats = repeats or workloads.profile.repeats
    configs = []
    for alg in algorithms:
        for eta in etas:
            cfg = replace(
                _base_config(workloads, "mlp", m=m, eta=eta, seed=seed),
                algorithm=alg,
                epsilons=(0.75, 0.5),
                target_epsilon=0.5,
            )
            configs.extend(repeated_configs(cfg, repeats=repeats))
    runs = _dispatch(
        problem, cost, configs, workers=workers, replicas=replicas, progress=progress,
        pool=pool, cache=cache, service=service,
    )
    key = lambda r: f"{r.config.algorithm}/eta={r.config.eta:g}"  # noqa: E731
    boxes, failures = convergence_boxes(runs, 0.5, key=key)
    stat_eff = statistical_efficiency_boxes(runs, 0.5, key=key)
    text = render_boxes(
        boxes, title=f"Fig 8 (left): time to 50%-convergence vs eta, MLP m={m}",
        unit="virtual s", failures=failures,
    )
    text += "\n\n" + render_boxes(
        stat_eff, title="Fig 8 (right): statistical efficiency (iterations to 50%)", unit="iterations"
    )
    return ExperimentResult(
        "S1/Fig8",
        f"Step-size tuning, MLP m={m}",
        data={"boxes": boxes, "failures": failures, "statistical_efficiency": stat_eff},
        text=text,
        runs=runs,
    )


# ----------------------------------------------------------------------
# S2/S4 shared machinery — Figs 4, 5, 6 at one thread count.
# ----------------------------------------------------------------------
def _precision_staleness_progress(
    workloads: Workloads,
    kind: str,
    *,
    m: int,
    eta: float,
    algorithms: Sequence[str],
    seed: int,
    repeats: int | None,
    fig_prefix: str,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    profile = workloads.profile
    epsilons = profile.mlp_epsilons if kind != "cnn" else profile.cnn_epsilons
    runs = _sweep(
        workloads, kind, algorithms, (m,), eta=eta, seed=seed, repeats=repeats,
        epsilons=epsilons, workers=workers, replicas=replicas, progress=progress,
        pool=pool, cache=cache, service=service,
    )
    sections = []
    per_eps = {}
    for eps in sorted(epsilons, reverse=True):
        boxes, failures = convergence_boxes(runs, eps)
        per_eps[eps] = {"boxes": boxes, "failures": failures}
        sections.append(
            render_boxes(
                boxes,
                title=f"{fig_prefix}: time to {eps:.1%}-convergence ({kind.upper()}, m={m})",
                unit="virtual s",
                failures=failures,
            )
        )
    # Progress curves (Fig 5 / Fig 7 middle).
    curves = {}
    from repro.harness.results import group_by

    for alg, alg_runs in group_by(runs, lambda r: r.config.algorithm).items():
        t, loss = median_progress_curve(alg_runs)
        curves[str(alg)] = (t, loss)
    sections.append(
        render_series(
            {k: v for k, v in curves.items() if v[0].size},
            title=f"Training progress over time ({kind.upper()}, m={m}; median loss)",
            x_label="virtual s",
            y_label="loss",
        )
    )
    # Staleness distributions (Fig 6 / Fig 7 right).
    stale = {}
    for alg, alg_runs in group_by(runs, lambda r: r.config.algorithm).items():
        pooled = pooled_staleness(alg_runs)
        stale[str(alg)] = pooled
    stale_rows = [
        [alg, v.size, float(v.mean()) if v.size else float("nan"),
         float(np.median(v)) if v.size else float("nan"),
         float(np.percentile(v, 90)) if v.size else float("nan"),
         int(v.max()) if v.size else 0]
        for alg, v in stale.items()
    ]
    sections.append(
        render_table(
            ["algorithm", "n", "mean tau", "median", "p90", "max"],
            stale_rows,
            title=f"Staleness distribution ({kind.upper()}, m={m})",
        )
    )
    return ExperimentResult(
        fig_prefix,
        f"{kind.upper()} convergence/progress/staleness at m={m}",
        data={"per_eps": per_eps, "curves": curves, "staleness": stale},
        text="\n\n".join(sections),
        runs=runs,
    )


def s2_high_precision(
    workloads: Workloads,
    *,
    m: int = 16,
    eta: float | None = None,
    algorithms: Sequence[str] = PARALLEL_ALGORITHMS,
    seed: int = 300,
    repeats: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """S2 — Figs 4 (left), 5 (left), 6 (left): MLP high-precision
    convergence at m=16."""
    eta = eta if eta is not None else workloads.profile.default_eta
    return _precision_staleness_progress(
        workloads, "mlp", m=m, eta=eta, algorithms=algorithms, seed=seed,
        repeats=repeats, fig_prefix="S2/Fig4-6", workers=workers, replicas=replicas,
        progress=progress, pool=pool, cache=cache, service=service,
    )


def s3_cnn(
    workloads: Workloads,
    *,
    m: int = 16,
    eta: float | None = None,
    algorithms: Sequence[str] = PARALLEL_ALGORITHMS,
    seed: int = 400,
    repeats: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """S3 — Fig 7: CNN convergence rate / progress / staleness at m=16."""
    eta = eta if eta is not None else workloads.profile.default_eta
    return _precision_staleness_progress(
        workloads, "cnn", m=m, eta=eta, algorithms=algorithms, seed=seed,
        repeats=repeats, fig_prefix="S3/Fig7", workers=workers, replicas=replicas,
        progress=progress, pool=pool, cache=cache, service=service,
    )


def s4_high_parallelism(
    workloads: Workloads,
    *,
    thread_counts: Sequence[int] | None = None,
    eta: float | None = None,
    algorithms: Sequence[str] = PARALLEL_ALGORITHMS,
    seed: int = 500,
    repeats: int | None = None,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """S4 — Figs 4-6 (middle/right): MLP stress test at m in {24,34,68}."""
    thread_counts = tuple(thread_counts or workloads.profile.high_parallelism)
    eta = eta if eta is not None else workloads.profile.default_eta
    parts = [
        _precision_staleness_progress(
            workloads, "mlp", m=m, eta=eta, algorithms=algorithms,
            seed=seed + 10 * m, repeats=repeats, fig_prefix=f"S4/m={m}",
            workers=workers, replicas=replicas, progress=progress,
            pool=pool, cache=cache, service=service,
        )
        for m in thread_counts
    ]
    return ExperimentResult(
        "S4/Fig4-6",
        f"MLP high parallelism m={thread_counts}",
        data={p.experiment_id: p.data for p in parts},
        text="\n\n".join(p.text for p in parts),
        runs=[r for p in parts for r in p.runs],
    )


# ----------------------------------------------------------------------
# S5 — Fig 10: memory consumption.
# ----------------------------------------------------------------------
def s5_memory(
    workloads: Workloads,
    *,
    thread_counts: Sequence[int] = (16, 24, 34),
    kinds: Sequence[str] = ("mlp", "cnn"),
    eta: float | None = None,
    algorithms: Sequence[str] = PARALLEL_ALGORITHMS,
    seed: int = 600,
    repeats: int = 1,
    max_updates: int = 400,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool=None,
    cache=None,
    service=None,
) -> ExperimentResult:
    """S5 — Fig 10: continuous memory measurement; Leashed-SGD's dynamic
    allocation vs the baselines' constant 2m+1 instances."""
    eta = eta if eta is not None else workloads.profile.default_eta
    rows = []
    data: dict = {}
    runs_all: list[RunResult] = []
    for kind in kinds:
        for m in thread_counts:
            runs = _sweep(
                workloads, kind, algorithms, (m,), eta=eta, seed=seed,
                repeats=repeats, max_updates=max_updates, workers=workers,
                replicas=replicas, progress=progress, pool=pool, cache=cache,
                service=service,
            )
            runs_all.extend(runs)
            base_mean = np.mean(
                [r.mean_pv_bytes for r in runs if r.config.algorithm in ("ASYNC", "HOG")]
            )
            for r in runs:
                saving = 1.0 - r.mean_pv_bytes / base_mean if base_mean else float("nan")
                rows.append(
                    [kind.upper(), m, r.config.algorithm,
                     r.peak_pv_count, round(r.peak_pv_bytes / 1e6, 3),
                     round(r.mean_pv_bytes / 1e6, 3), f"{saving:+.1%}"]
                )
                data[(kind, m, r.config.algorithm)] = {
                    "peak_count": r.peak_pv_count,
                    "peak_bytes": r.peak_pv_bytes,
                    "mean_bytes": r.mean_pv_bytes,
                    "timeline": r.memory_timeline,
                }
    text = render_table(
        ["arch", "m", "algorithm", "peak #PV", "peak MB", "mean MB", "saving vs lock/HOG"],
        rows,
        title="Fig 10: memory consumption (exact ParameterVector accounting)",
    )
    return ExperimentResult(
        "S5/Fig10", "Memory consumption", data=data, text=text, runs=runs_all
    )


#: Table I of the paper: the experiment matrix, mapping steps to the
#: functions above and the paper's parameters.
TABLE_I = (
    {"step": "S1", "arch": "MLP", "description": "Hyper-parameter selection",
     "threads": "1-68", "epsilon": "50%", "eta": "0.001-0.09", "outcome": "Fig 3, Fig 8",
     "function": "s1_scalability / s1_stepsize"},
    {"step": "S2", "arch": "MLP", "description": "High-precision convergence",
     "threads": "16", "epsilon": "50,10,5,2.5%", "eta": "0.005", "outcome": "Fig 4-6",
     "function": "s2_high_precision"},
    {"step": "S3", "arch": "CNN", "description": "Convergence rate",
     "threads": "16", "epsilon": "75,50,25,10%", "eta": "0.005", "outcome": "Fig 7",
     "function": "s3_cnn"},
    {"step": "S4", "arch": "MLP", "description": "High parallelism",
     "threads": "24,34,68", "epsilon": "75,50,25,10%", "eta": "0.005", "outcome": "Fig 4-6",
     "function": "s4_high_parallelism"},
    {"step": "S5", "arch": "MLP,CNN", "description": "Memory consumption",
     "threads": "16,24,34", "epsilon": "any", "eta": "0.005", "outcome": "Fig 10",
     "function": "s5_memory"},
)


def render_table_i() -> str:
    """Render the paper's Table I with our implementing functions."""
    headers = ["step", "arch", "description", "threads", "epsilon", "eta", "outcome", "function"]
    return render_table(
        headers, [[row[h] for h in headers] for row in TABLE_I],
        title="Table I: summary of experiments",
    )
