"""Execute configured runs and collect structured results.

:func:`run_once` wires one full simulated execution: scheduler, probe
bus (with the trace / memory built-ins plus any configured probes),
algorithm shared state, m workers and the convergence-monitor thread;
:func:`run_repeated` executes the same configuration under independent
seeds (the paper uses 11) and returns all results.

Measurement flows through :mod:`repro.telemetry`: the algorithms emit
protocol events on the run's :class:`~repro.telemetry.bus.ProbeBus`,
and after the run :func:`~repro.telemetry.metrics.collect_run_metrics`
assembles one schema-versioned :class:`RunMetrics` mapping from the
subscribers. :class:`RunResult` is a thin, picklable view over that
mapping — the legacy flat attributes (``n_updates``,
``cas_failure_rate``, ...) are properties delegating into it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Algorithm, SGDContext, make_algorithm
from repro.core.convergence import ConvergenceMonitor, ConvergenceReport, RunStatus
from repro.core.problem import Problem
from repro.harness.config import RunConfig
from repro.observe import profiler as _profiler
from repro.observe.provenance import collect_provenance
from repro.sim.arena import BufferArena
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.trace import TraceRecorder
from repro.telemetry.bus import ProbeBus
from repro.telemetry.metrics import RunMetrics, collect_run_metrics, nan_wall_phases
from repro.telemetry.probes import make_probe, run_info_for
from repro.utils.rng import RngFactory
from repro.utils.timing import WallTimer


@dataclass
class RunResult:
    """One execution: its config, outcome, curve, and measurements.

    All numbers live in ``metrics`` (see
    :mod:`repro.telemetry.metrics` for the schema); the attribute-style
    accessors below keep every existing call site and report working.
    """

    config: RunConfig
    status: RunStatus
    report: ConvergenceReport
    metrics: RunMetrics

    # -- flat accessors over the metrics mapping -------------------------
    @property
    def virtual_time(self) -> float:
        return self.metrics["virtual_time"]

    @property
    def wall_seconds(self) -> float:
        return self.metrics["wall_seconds"]

    @property
    def n_updates(self) -> int:
        return self.metrics["n_updates"]

    @property
    def n_dropped(self) -> int:
        return self.metrics["n_dropped"]

    @property
    def cas_failure_rate(self) -> float:
        return self.metrics["cas_failure_rate"]

    @property
    def mean_lock_wait(self) -> float:
        return self.metrics["mean_lock_wait"]

    @property
    def staleness(self) -> dict[str, float]:
        return self.metrics["staleness"]

    @property
    def staleness_values(self) -> np.ndarray:
        return self.metrics["staleness_values"]

    @property
    def updates_per_thread(self) -> np.ndarray:
        return self.metrics["updates_per_thread"]

    @property
    def peak_pv_count(self) -> int:
        return self.metrics["peak_pv_count"]

    @property
    def peak_pv_bytes(self) -> int:
        return self.metrics["peak_pv_bytes"]

    @property
    def mean_pv_bytes(self) -> float:
        return self.metrics["mean_pv_bytes"]

    @property
    def pool_hits(self) -> int:
        return self.metrics["pool_hits"]

    @property
    def pool_misses(self) -> int:
        return self.metrics["pool_misses"]

    @property
    def reclaim_events(self) -> int:
        return self.metrics["reclaim_events"]

    @property
    def memory_timeline(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.metrics["memory_timeline"]

    @property
    def retry_occupancy(self) -> tuple[np.ndarray, np.ndarray]:
        return self.metrics["retry_occupancy"]

    @property
    def final_accuracy(self) -> float:
        return self.metrics["final_accuracy"]

    @property
    def wall_phases(self) -> dict[str, float]:
        """Host seconds split into setup / simulate / teardown (NaN for
        phases that never ran)."""
        return self.metrics["wall_phases"]

    @property
    def profile(self) -> dict:
        """Self-profiler span summary (``{}`` unless the config opted
        in via ``self_profile=True``)."""
        return self.metrics["profile"]

    @property
    def provenance(self) -> dict:
        """The run's provenance manifest (git SHA, config hash,
        environment facts; see :mod:`repro.observe.provenance`)."""
        return self.metrics["provenance"]

    # -- derived metrics -------------------------------------------------
    def time_to(self, eps: float) -> float:
        """Virtual seconds to eps-convergence (NaN if not reached)."""
        return self.report.time_to(eps)

    def updates_to(self, eps: float) -> float:
        """Statistical efficiency: updates to eps-convergence."""
        return self.report.updates_to(eps)

    @property
    def time_per_update(self) -> float:
        """Computational efficiency: virtual seconds per published
        update (the paper's Fig. 3 right)."""
        return self.virtual_time / self.n_updates if self.n_updates else float("nan")

    @property
    def label(self) -> str:
        """Short identifier for reports."""
        return f"{self.config.algorithm}(m={self.config.m})"


def default_eval_interval(cost: CostModel, m: int) -> float:
    """Monitor period: about every 8 global updates at steady state,
    but never finer than half a gradient computation.

    The monitor's held-out evaluation is *real* compute (it costs host
    time even though it is free on the virtual clock), so the cadence
    trades timing resolution of the convergence thresholds against
    wall-clock cost; +-8 updates is far below the paper's box-plot
    spread."""
    per_update = (cost.tc + cost.tu) / max(m, 1)
    return max(8.0 * per_update, 0.5 * cost.tc)


@dataclass
class _PreparedRun:
    """One fully wired run, paused just before its scheduler runs.

    :func:`run_once` prepares, runs, and finalizes one of these;
    :func:`run_cohort` prepares several, drives their schedulers in
    lockstep (:class:`repro.sim.replica.LockstepCohort`), and finalizes
    each. Both paths build identical object graphs from identical RNG
    streams, which is what makes their results interchangeable.
    """

    config: RunConfig
    scheduler: Scheduler
    trace: TraceRecorder
    memory: MemoryAccountant
    arena: BufferArena | None
    ctx: SGDContext
    algorithm: Algorithm
    monitor: ConvergenceMonitor
    probes: tuple


def _prepare_run(problem: Problem, cost: CostModel, config: RunConfig) -> _PreparedRun:
    """Wire scheduler, probes, algorithm, workers, and monitor."""
    factory = RngFactory(config.seed)
    scheduler = Scheduler(
        factory.named("scheduler"),
        SchedulerConfig(
            jitter_sigma=config.jitter_sigma,
            speed_spread_sigma=config.speed_spread_sigma,
        ),
    )
    trace = TraceRecorder()
    memory = MemoryAccountant(lambda: scheduler.now)
    arena = BufferArena(poison=config.arena_poison) if config.use_arena else None
    bus = ProbeBus()
    ctx = SGDContext(
        problem=problem,
        cost=cost,
        eta=config.eta,
        scheduler=scheduler,
        trace=trace,
        memory=memory,
        rng_factory=factory,
        dtype=config.dtype,
        arena=arena,
        probes=bus,
    )
    info = run_info_for(config, cost)
    probes = tuple(make_probe(name) for name in config.probes)
    for probe in probes:
        probe.bind(info)
        bus.attach(probe)
    algorithm = make_algorithm(config.algorithm)
    theta0 = problem.init_theta(factory.named("init"))
    algorithm.setup(ctx, theta0)

    def eval_fn() -> float:
        # Held-out evaluation is the run's dominant *host* cost outside
        # the step loop; span-profile it so a slow sweep is explainable.
        prof = _profiler.ACTIVE
        t0 = prof.start()
        loss = problem.eval_loss(algorithm.snapshot_theta(ctx))
        prof.stop("monitor.eval", t0)
        return loss

    monitor = ConvergenceMonitor(
        eval_fn=eval_fn,
        n_updates_fn=lambda: trace.n_updates,
        epsilons=config.epsilons,
        target_epsilon=config.target_epsilon,
        eval_interval=config.eval_interval or default_eval_interval(cost, config.m),
        max_virtual_time=config.max_virtual_time,
        max_updates=config.max_updates,
        max_wall_seconds=config.max_wall_seconds,
        stop_fn=scheduler.stop,
        now_fn=lambda: scheduler.now,
    )

    algorithm.spawn_workers(ctx, config.m)
    scheduler.spawn("monitor", lambda thread: monitor.body())
    return _PreparedRun(
        config=config,
        scheduler=scheduler,
        trace=trace,
        memory=memory,
        arena=arena,
        ctx=ctx,
        algorithm=algorithm,
        monitor=monitor,
        probes=probes,
    )


def _finalize_run(
    problem: Problem,
    prepared: _PreparedRun,
    wall_seconds: float,
    *,
    wall_phases: dict[str, float] | None = None,
    profiler: "_profiler.SpanProfiler | None" = None,
) -> RunResult:
    """Close a run's scheduler and assemble its :class:`RunResult`.

    ``wall_phases`` carries the already-measured ``setup`` / ``simulate``
    host seconds; this function times the teardown phase (snapshot,
    held-out evaluation, arena trim, metric assembly) and completes the
    split. ``profiler`` is the run-scoped span profiler whose summary
    lands in ``metrics["profile"]`` (None when the run did not opt in).
    """
    scheduler = prepared.scheduler
    config = prepared.config
    phases = dict(wall_phases) if wall_phases is not None else nan_wall_phases()
    teardown = WallTimer()
    with teardown:
        scheduler.close()

        report = prepared.monitor.report
        # A report still RUNNING means the scheduler stopped before the
        # monitor classified the run (e.g. the event queue drained): the
        # harness halted it, not the algorithm's convergence behaviour.
        status = report.status if report.status is not RunStatus.RUNNING else RunStatus.STOPPED
        theta_final = prepared.algorithm.snapshot_theta(prepared.ctx)
        accuracy = problem.eval_accuracy(theta_final)
        if prepared.arena is not None:
            # Teardown trim: release the free-lists' high water and account
            # for the parked buffers the run never re-used.
            prepared.memory.record_pool_trim(prepared.arena.trim())
    phases["teardown"] = teardown.elapsed

    metrics = collect_run_metrics(
        prepared.trace,
        prepared.memory,
        m=config.m,
        virtual_time=scheduler.now,
        wall_seconds=wall_seconds,
        final_accuracy=accuracy,
        probes=prepared.probes,
        wall_phases=phases,
        profile=profiler.summary() if profiler is not None else {},
        provenance=collect_provenance(config),
    )
    return RunResult(config=config, status=status, report=report, metrics=metrics)


def run_once(problem: Problem, cost: CostModel, config: RunConfig) -> RunResult:
    """Execute one configured run; deterministic given ``config.seed``.

    ``config.probes`` names pluggable probes (see
    :data:`repro.telemetry.probes.PROBES`) attached to the run's bus;
    probes observe without perturbing, so results are bitwise-identical
    for any probe set. ``config.self_profile`` additionally activates
    the engine span profiler for the duration of the run (host-time
    observation only — results stay bitwise-identical).

    ``wall_seconds`` keeps its historical meaning (the simulate phase);
    the full setup / simulate / teardown split is in
    ``metrics["wall_phases"]``.
    """
    profiler = _profiler.SpanProfiler() if config.self_profile else None
    if profiler is not None:
        _profiler.activate(profiler)
    try:
        setup = WallTimer()
        with setup:
            prepared = _prepare_run(problem, cost, config)
        simulate = WallTimer()
        with simulate:
            prepared.scheduler.run()
        phases = nan_wall_phases()
        phases["setup"] = setup.elapsed
        phases["simulate"] = simulate.elapsed
        return _finalize_run(
            problem, prepared, simulate.elapsed,
            wall_phases=phases, profiler=profiler,
        )
    finally:
        if profiler is not None:
            _profiler.deactivate()


def run_cohort(problem: Problem, cost: CostModel, configs: list[RunConfig]) -> list[RunResult]:
    """Execute several same-shape configs as one lockstep cohort.

    The configs typically come from :func:`repeated_configs` — the same
    workload and algorithm under different seeds — or from a sweep's
    merged grid column (different η too: η scales each replica's own
    updates, never the batched gradient math, so same-shape boxes fuse
    into one K×|η| super-cohort — see ``parallel.plan_cohorts``). Each
    run keeps its own scheduler, RNG streams, and model state; only the
    gradient *arithmetic* is batched across replicas
    (:class:`repro.nn.replica.ReplicaKernel`), so every result is
    bitwise identical to its :func:`run_once` counterpart — except
    ``wall_seconds``, which reports the shared cohort wall time (as with
    process-parallel runs, wall time is an execution property, not a
    simulation result). For the same reason a ``max_wall_seconds`` cap
    applies to the cohort's shared wall clock rather than per replica.

    Wall-phase accounting follows the same rule: ``setup`` and
    ``teardown`` are measured per replica, while ``simulate`` is the
    shared lockstep time. The span profiler (when any config opts in
    via ``self_profile``) is likewise cohort-scoped — every opted-in
    replica carries the same shared span summary.
    """
    if not configs:
        return []
    if len(configs) == 1:
        return [run_once(problem, cost, configs[0])]
    from repro.sim.replica import LockstepCohort  # local import avoids a cycle

    profiler = _profiler.SpanProfiler() if any(c.self_profile for c in configs) else None
    if profiler is not None:
        _profiler.activate(profiler)
    try:
        prepared = []
        setup_times = []
        for config in configs:
            setup = WallTimer()
            with setup:
                prepared.append(_prepare_run(problem, cost, config))
            setup_times.append(setup.elapsed)
        cohort = LockstepCohort([p.scheduler for p in prepared])
        timer = WallTimer()
        with timer:
            cohort.run()
        results = []
        for p, setup_elapsed in zip(prepared, setup_times):
            phases = nan_wall_phases()
            phases["setup"] = setup_elapsed
            phases["simulate"] = timer.elapsed
            results.append(_finalize_run(
                problem, p, timer.elapsed,
                wall_phases=phases,
                profiler=profiler if p.config.self_profile else None,
            ))
        return results
    finally:
        if profiler is not None:
            _profiler.deactivate()


def repeated_configs(
    config: RunConfig, *, repeats: int, seed_stride: int = 1_000
) -> list[RunConfig]:
    """The seed-derived configs of a repeated experiment (seeds
    ``seed + i * seed_stride``), shared by the serial and parallel paths
    so both produce identical per-seed runs."""
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    return [config.with_seed(config.seed + i * seed_stride) for i in range(repeats)]


def run_repeated(
    problem: Problem,
    cost: CostModel,
    config: RunConfig,
    *,
    repeats: int,
    seed_stride: int = 1_000,
    workers: int | None = None,
    replicas: int | None = None,
    pool=None,
    cache=None,
) -> list[RunResult]:
    """Run ``repeats`` independent executions (seeds
    ``seed + i * seed_stride``), as the paper does 11 times per box.

    ``workers`` fans the repeats out over processes (default: serial,
    or the ``REPRO_WORKERS`` environment variable); ``replicas`` groups
    same-shape repeats into lockstep cohorts of up to that many replicas
    with stacked gradient kernels (default: 1, or ``REPRO_REPLICAS``;
    see :mod:`repro.harness.parallel`). The two compose — cohorts batch
    *within* a worker process while configs spread *across* workers.
    ``pool`` reuses a persistent :class:`~repro.harness.pool.WorkerPool`
    across calls; ``cache`` serves already-computed seeds from a
    :class:`~repro.harness.cache.RunCache`. Results are returned in
    seed order and are identical whatever the worker count, replica
    grouping, pool reuse, or cache state.
    """
    from repro.harness.parallel import map_runs

    configs = repeated_configs(config, repeats=repeats, seed_stride=seed_stride)
    return map_runs(
        problem, cost, configs, workers=workers, replicas=replicas,
        pool=pool, cache=cache,
    )
