"""Execute configured runs and collect structured results.

:func:`run_once` wires one full simulated execution: scheduler, trace,
memory accountant, algorithm shared state, m workers and the
convergence-monitor thread; :func:`run_repeated` executes the same
configuration under independent seeds (the paper uses 11) and returns
all results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import SGDContext, make_algorithm
from repro.core.convergence import ConvergenceMonitor, ConvergenceReport, RunStatus
from repro.core.problem import Problem
from repro.harness.config import RunConfig
from repro.sim.arena import BufferArena
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.trace import TraceRecorder
from repro.utils.rng import RngFactory
from repro.utils.timing import WallTimer


@dataclass
class RunResult:
    """Everything measured in one execution."""

    config: RunConfig
    status: RunStatus
    report: ConvergenceReport
    virtual_time: float
    wall_seconds: float
    n_updates: int
    n_dropped: int
    cas_failure_rate: float
    mean_lock_wait: float
    staleness: dict[str, float]
    staleness_values: np.ndarray
    updates_per_thread: np.ndarray
    peak_pv_count: int
    peak_pv_bytes: int
    mean_pv_bytes: float
    pool_hits: int
    pool_misses: int
    memory_timeline: tuple[np.ndarray, np.ndarray, np.ndarray]
    retry_occupancy: tuple[np.ndarray, np.ndarray]
    final_accuracy: float = float("nan")

    # -- derived metrics -------------------------------------------------
    def time_to(self, eps: float) -> float:
        """Virtual seconds to eps-convergence (NaN if not reached)."""
        return self.report.time_to(eps)

    def updates_to(self, eps: float) -> float:
        """Statistical efficiency: updates to eps-convergence."""
        return self.report.updates_to(eps)

    @property
    def time_per_update(self) -> float:
        """Computational efficiency: virtual seconds per published
        update (the paper's Fig. 3 right)."""
        return self.virtual_time / self.n_updates if self.n_updates else float("nan")

    @property
    def label(self) -> str:
        """Short identifier for reports."""
        return f"{self.config.algorithm}(m={self.config.m})"


def default_eval_interval(cost: CostModel, m: int) -> float:
    """Monitor period: about every 8 global updates at steady state,
    but never finer than half a gradient computation.

    The monitor's held-out evaluation is *real* compute (it costs host
    time even though it is free on the virtual clock), so the cadence
    trades timing resolution of the convergence thresholds against
    wall-clock cost; +-8 updates is far below the paper's box-plot
    spread."""
    per_update = (cost.tc + cost.tu) / max(m, 1)
    return max(8.0 * per_update, 0.5 * cost.tc)


def run_once(problem: Problem, cost: CostModel, config: RunConfig) -> RunResult:
    """Execute one configured run; deterministic given ``config.seed``."""
    factory = RngFactory(config.seed)
    scheduler = Scheduler(
        factory.named("scheduler"),
        SchedulerConfig(
            jitter_sigma=config.jitter_sigma,
            speed_spread_sigma=config.speed_spread_sigma,
        ),
    )
    trace = TraceRecorder()
    memory = MemoryAccountant(lambda: scheduler.now)
    arena = BufferArena(poison=config.arena_poison) if config.use_arena else None
    ctx = SGDContext(
        problem=problem,
        cost=cost,
        eta=config.eta,
        scheduler=scheduler,
        trace=trace,
        memory=memory,
        rng_factory=factory,
        dtype=config.dtype,
        arena=arena,
    )
    algorithm = make_algorithm(config.algorithm)
    theta0 = problem.init_theta(factory.named("init"))
    algorithm.setup(ctx, theta0)

    monitor = ConvergenceMonitor(
        eval_fn=lambda: problem.eval_loss(algorithm.snapshot_theta(ctx)),
        n_updates_fn=lambda: trace.n_updates,
        epsilons=config.epsilons,
        target_epsilon=config.target_epsilon,
        eval_interval=config.eval_interval or default_eval_interval(cost, config.m),
        max_virtual_time=config.max_virtual_time,
        max_updates=config.max_updates,
        max_wall_seconds=config.max_wall_seconds,
        stop_fn=scheduler.stop,
        now_fn=lambda: scheduler.now,
    )

    algorithm.spawn_workers(ctx, config.m)
    scheduler.spawn("monitor", lambda thread: monitor.body())

    timer = WallTimer()
    with timer:
        scheduler.run()
    scheduler.close()

    report = monitor.report
    status = report.status if report.status is not RunStatus.RUNNING else RunStatus.DIVERGED
    theta_final = algorithm.snapshot_theta(ctx)
    accuracy = problem.eval_accuracy(theta_final)

    return RunResult(
        config=config,
        status=status,
        report=report,
        virtual_time=scheduler.now,
        wall_seconds=timer.elapsed,
        n_updates=trace.n_updates,
        n_dropped=len(trace.dropped),
        cas_failure_rate=trace.cas_failure_rate(),
        mean_lock_wait=trace.mean_lock_wait(),
        staleness=trace.staleness_summary(),
        staleness_values=trace.staleness_values(),
        updates_per_thread=trace.updates_per_thread(config.m),
        peak_pv_count=memory.peak_count,
        peak_pv_bytes=memory.peak_bytes,
        mean_pv_bytes=memory.mean_live_bytes(),
        pool_hits=memory.pool_hits,
        pool_misses=memory.pool_misses,
        memory_timeline=memory.timeline(resolution=100),
        retry_occupancy=trace.retry_loop_occupancy(resolution=100),
        final_accuracy=accuracy,
    )


def repeated_configs(
    config: RunConfig, *, repeats: int, seed_stride: int = 1_000
) -> list[RunConfig]:
    """The seed-derived configs of a repeated experiment (seeds
    ``seed + i * seed_stride``), shared by the serial and parallel paths
    so both produce identical per-seed runs."""
    if repeats <= 0:
        raise ValueError(f"repeats must be > 0, got {repeats}")
    return [config.with_seed(config.seed + i * seed_stride) for i in range(repeats)]


def run_repeated(
    problem: Problem,
    cost: CostModel,
    config: RunConfig,
    *,
    repeats: int,
    seed_stride: int = 1_000,
    workers: int | None = None,
) -> list[RunResult]:
    """Run ``repeats`` independent executions (seeds
    ``seed + i * seed_stride``), as the paper does 11 times per box.

    ``workers`` fans the repeats out over processes (default: serial,
    or the ``REPRO_WORKERS`` environment variable; see
    :mod:`repro.harness.parallel`). Results are returned in seed order
    and are identical whatever the worker count.
    """
    from repro.harness.parallel import map_runs

    configs = repeated_configs(config, repeats=repeats, seed_stride=seed_stride)
    return map_runs(problem, cost, configs, workers=workers)
