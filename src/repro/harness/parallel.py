"""Process-parallel and replica-batched experiment execution.

The paper's protocol multiplies every configuration by 11 seeds and
whole algorithm × thread-count grids; each of those runs is an
independent simulation, deterministic given its :class:`RunConfig`
seed. That makes the harness embarrassingly parallel: this module fans
a list of configs out over a ``ProcessPoolExecutor`` and collects the
results **in submission order**, so a parallel sweep returns exactly
the list a serial loop would have produced (bitwise-identical results,
since each ``run_once`` derives every RNG stream from its config's seed
via :class:`repro.utils.rng.RngFactory`).

Orthogonally to processes, **replica batching** groups same-shape
configs (identical except for their seed and step size η — η never
enters the gradient math, each replica applies its own in
``step_from``, so a sweep's whole η grid column at fixed m merges into
one super-cohort of K×|η| stacked replicas) into lockstep cohorts of
up to ``replicas`` runs that execute inside *one* process with stacked
gradient kernels (:func:`repro.harness.runner.run_cohort`). The two
compose: cohorts batch within a worker, chunks spread across workers.

Worker-count resolution (:func:`resolve_workers`):

* explicit ``workers`` argument wins (``-1`` means "all cores");
* else the ``REPRO_WORKERS`` environment variable, if set;
* else serial — parallelism is opt-in so unit tests and nested callers
  never fork surprisingly;
* the result is capped at ``os.cpu_count()`` (with a warning when the
  cap bites) — the simulations are CPU-bound, so oversubscription only
  adds scheduling overhead. In cohort mode the cap stays but the
  warning is suppressed: a cohort is one OS process however many
  replicas it advances, so a generous worker request is bounded by the
  chunk count rather than a sign of oversubscription.

Replica-count resolution (:func:`resolve_replicas`) mirrors the worker
rules with the ``REPRO_REPLICAS`` environment variable; ``0``/``1``
mean "no batching".

``0``/``1`` workers mean serial. The pool is also skipped, with a
serial fallback, when there is only one task, when the task payload
cannot be pickled (e.g. a user-defined problem holding a lambda), or
when the host cannot spawn processes at all.

Telemetry crosses the process boundary intact: ``RunConfig.probes``
carries probe *names* (resolved inside each worker's ``run_once``), and
the returned :class:`~repro.telemetry.metrics.RunMetrics` is a plain
picklable mapping — so a parallel sweep's JSONL export is byte-for-byte
the serial one's.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.core.problem import Problem
    from repro.harness.config import RunConfig
    from repro.harness.runner import RunResult
    from repro.sim.cost import CostModel

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable consulted when no explicit replica count is given.
REPLICAS_ENV = "REPRO_REPLICAS"

# Per-process state for pool workers: the (problem, cost) pair is
# shipped once per worker via the pool initializer instead of once per
# task — the problem carries the training corpus (tens of MB for the
# paper profile), the configs are a few hundred bytes each.
_WORKER_STATE: dict = {}


def _init_worker(payload: bytes) -> None:  # pragma: no cover - runs in subprocess
    problem, cost = pickle.loads(payload)
    _WORKER_STATE["problem"] = problem
    _WORKER_STATE["cost"] = cost


def _run_config(config):  # pragma: no cover - runs in subprocess
    from repro.harness.runner import run_once

    return run_once(_WORKER_STATE["problem"], _WORKER_STATE["cost"], config)


def _run_cohort_chunk(configs):  # pragma: no cover - runs in subprocess
    from repro.harness.runner import run_cohort

    return run_cohort(_WORKER_STATE["problem"], _WORKER_STATE["cost"], configs)


def resolve_workers(workers: int | None = None, *, cohort_replicas: int = 1) -> int:
    """Resolve an effective worker count (>= 1; 1 means serial).

    ``workers=None`` consults ``REPRO_WORKERS`` and defaults to serial;
    ``workers=-1`` (or ``REPRO_WORKERS=-1``) means one worker per CPU
    core; ``0`` is accepted as an explicit "serial" request. Requests
    beyond the host's core count are capped (with a warning): the runs
    are CPU-bound simulations, so oversubscribing cores only adds
    context-switch and fork overhead — on a 1-core host a 2-worker pool
    was measured *slower* than the serial loop (speedup 0.71).

    ``cohort_replicas`` marks the cohort-batched path: each worker is
    still one OS process no matter how many lockstep replicas it
    advances, so the cap applies as usual but silently — the caller's
    worker request is a chunk-level fan-out bound, not a claim on
    ``workers * replicas`` cores.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    n_cores = os.cpu_count() or 1
    if workers == -1:
        return n_cores
    if workers < -1:
        raise ConfigurationError(f"workers must be >= -1, got {workers}")
    if workers > n_cores:
        if cohort_replicas <= 1:
            warnings.warn(
                f"requested {workers} workers on a {n_cores}-core host; "
                f"capping at {n_cores} (oversubscription slows CPU-bound runs)",
                RuntimeWarning,
                stacklevel=2,
            )
        return n_cores
    return max(workers, 1)


def resolve_replicas(replicas: int | None = None) -> int:
    """Resolve an effective lockstep-cohort size (>= 1; 1 disables
    batching).

    ``replicas=None`` consults ``REPRO_REPLICAS`` and defaults to 1.
    Unlike workers, replicas are *not* capped by the core count: a
    cohort runs in one process, and its sweet spot (the paper protocol's
    11 seeds) is a property of the workload, not the host.
    """
    if replicas is None:
        env = os.environ.get(REPLICAS_ENV)
        if env is None:
            return 1
        try:
            replicas = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{REPLICAS_ENV} must be an integer, got {env!r}"
            ) from None
    replicas = int(replicas)
    if replicas < 0:
        raise ConfigurationError(f"replicas must be >= 0, got {replicas}")
    return max(replicas, 1)


def plan_cohorts(configs: Sequence["RunConfig"], replicas: int) -> list[list[int]]:
    """Group config *indices* into cohort chunks of at most ``replicas``.

    Configs are cohort-compatible when they differ only in seed (the
    repeated-seed protocol's shape) and/or step size η: every tensor
    shape of a run is fixed by the remaining fields, and η only scales
    each replica's own ``step_from`` — the stacked gradient kernels
    never see it. A sweep's grid column (all η at fixed algorithm/m)
    therefore merges into one compatibility group of K×|η| replicas.
    Each group is chunked in first-appearance order, so results scatter
    back into the caller's ordering deterministically. Singleton chunks
    are fine — the runner routes them through the plain serial path.
    """
    groups: dict = {}
    order = []
    for i, config in enumerate(configs):
        # Canonical seed/η: both fields are simulation inputs applied
        # privately per replica, never batch-shape inputs. eta=1.0 is
        # safe as the canonical value (RunConfig validates eta > 0).
        key = replace(config, seed=0, eta=1.0)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = []
            order.append(key)
        bucket.append(i)
    chunks: list[list[int]] = []
    for key in order:
        indices = groups[key]
        for start in range(0, len(indices), replicas):
            chunks.append(indices[start : start + replicas])
    return chunks


def _label(config) -> str:
    """The heartbeat label for a just-finished run."""
    return f"{config.algorithm}/m={config.m}/seed={config.seed}"


def _run_serial(problem, cost, configs, progress=None) -> list:
    from repro.harness.runner import run_once

    results = []
    for config in configs:
        results.append(run_once(problem, cost, config))
        if progress is not None:
            progress(len(results), len(configs), _label(config))
    return results


def _pickle_payload(problem, cost) -> bytes | None:
    """The worker-initializer payload, or None (with a warning) when it
    cannot cross a process boundary. The pickled bytes are shipped to
    every worker as-is — the (possibly tens-of-MB) problem graph is
    traversed once here instead of once per worker."""
    try:
        # Pre-flight doubling as the shipment: a problem holding
        # closures / generators (perfectly fine serially) cannot cross
        # a process boundary.
        return pickle.dumps((problem, cost))
    except Exception as exc:
        warnings.warn(
            f"parallel run falling back to serial: payload not picklable ({exc})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def map_runs(
    problem: "Problem",
    cost: "CostModel",
    configs: Sequence["RunConfig"],
    *,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
) -> list["RunResult"]:
    """Execute every config, fanning out over processes and batching
    same-shape configs into lockstep replica cohorts.

    Results come back in the order of ``configs`` and are identical to
    a serial loop's, whatever the worker count or replica grouping
    (``wall_seconds`` excepted — wall time measures the execution
    strategy, not the simulation). Falls back to serial execution (with
    a warning) when the payload cannot be pickled or the pool cannot be
    brought up; exceptions raised *inside* a simulation propagate
    unchanged either way.

    ``progress`` is an optional heartbeat callback invoked as
    ``progress(done, total, label)`` in the parent process after every
    completed run (or cohort chunk), in *completion* order — see
    :class:`repro.harness.progress.ProgressReporter`. It observes the
    sweep without participating in it: results are identical with or
    without the callback.
    """
    configs = list(configs)
    n_replicas = resolve_replicas(replicas)
    if n_replicas > 1 and len(configs) > 1:
        return _map_runs_cohorts(
            problem, cost, configs, workers=workers, replicas=n_replicas, progress=progress
        )
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(configs) <= 1:
        return _run_serial(problem, cost, configs, progress)
    payload = _pickle_payload(problem, cost)
    if payload is None:
        return _run_serial(problem, cost, configs, progress)
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    results: list = [None] * len(configs)
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(configs)),
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            # submit + wait (not pool.map) so heartbeats fire as runs
            # *complete*; results still scatter back in config order.
            pending = {pool.submit(_run_config, cfg): i for i, cfg in enumerate(configs)}
            done_count = 0
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    results[index] = future.result()
                    done_count += 1
                    if progress is not None:
                        progress(done_count, len(configs), _label(configs[index]))
        return results
    except (BrokenProcessPool, OSError) as exc:
        warnings.warn(
            f"parallel run falling back to serial: process pool failed ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(problem, cost, configs, progress)


def _map_runs_cohorts(
    problem, cost, configs: list, *, workers: int | None, replicas: int, progress=None
) -> list:
    """Cohort-batched :func:`map_runs`: chunks of same-shape configs run
    in lockstep within a process, chunks fan out across processes.
    Heartbeats fire once per completed *chunk*, counting its runs."""
    from repro.harness.runner import run_cohort

    chunks = plan_cohorts(configs, replicas)
    results: list = [None] * len(configs)
    done_runs = 0

    def _scatter(chunk: list[int], chunk_results: list) -> None:
        nonlocal done_runs
        for index, result in zip(chunk, chunk_results):
            results[index] = result
        done_runs += len(chunk)
        if progress is not None:
            progress(done_runs, len(configs), _label(configs[chunk[-1]]))

    def _serial_chunks() -> list:
        for chunk in chunks:
            _scatter(chunk, run_cohort(problem, cost, [configs[i] for i in chunk]))
        return results

    n_workers = resolve_workers(workers, cohort_replicas=replicas)
    if n_workers <= 1 or len(chunks) <= 1:
        return _serial_chunks()
    payload = _pickle_payload(problem, cost)
    if payload is None:
        return _serial_chunks()
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(chunks)),
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            pending = {
                pool.submit(_run_cohort_chunk, [configs[i] for i in chunk]): chunk
                for chunk in chunks
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    _scatter(pending.pop(future), future.result())
        return results
    except (BrokenProcessPool, OSError) as exc:
        warnings.warn(
            f"parallel run falling back to serial: process pool failed ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        # Chunks that already scattered keep their results; redo the rest.
        for chunk in chunks:
            if results[chunk[0]] is None:
                _scatter(chunk, run_cohort(problem, cost, [configs[i] for i in chunk]))
        return results


class ParallelRunner:
    """A bound (problem, cost, workers, replicas) tuple for repeated
    fan-outs.

    Thin convenience over :func:`map_runs` for callers that sweep many
    config batches against one workload::

        runner = ParallelRunner(problem, cost, workers=8, replicas=11)
        results = runner.map(configs)
    """

    def __init__(
        self,
        problem: "Problem",
        cost: "CostModel",
        *,
        workers: int | None = None,
        replicas: int | None = None,
    ) -> None:
        self.problem = problem
        self.cost = cost
        self.replicas = resolve_replicas(replicas)
        self.workers = resolve_workers(workers, cohort_replicas=self.replicas)

    def map(self, configs: Sequence["RunConfig"], *, progress=None) -> list["RunResult"]:
        """Run every config; ordered, deterministic results."""
        return map_runs(
            self.problem, self.cost, configs,
            workers=self.workers, replicas=self.replicas, progress=progress,
        )

    def run_repeated(
        self, config: "RunConfig", *, repeats: int, seed_stride: int = 1_000, progress=None
    ) -> list["RunResult"]:
        """The parallel counterpart of :func:`repro.harness.runner.run_repeated`."""
        from repro.harness.runner import repeated_configs

        return self.map(
            repeated_configs(config, repeats=repeats, seed_stride=seed_stride),
            progress=progress,
        )
