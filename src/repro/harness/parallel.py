"""Process-parallel and replica-batched experiment execution.

The paper's protocol multiplies every configuration by 11 seeds and
whole algorithm × thread-count grids; each of those runs is an
independent simulation, deterministic given its :class:`RunConfig`
seed. That makes the harness embarrassingly parallel: this module fans
a list of configs out over a process pool and collects the results
**in submission order**, so a parallel sweep returns exactly the list a
serial loop would have produced (bitwise-identical results, since each
``run_once`` derives every RNG stream from its config's seed via
:class:`repro.utils.rng.RngFactory`).

Orthogonally to processes, **replica batching** groups same-shape
configs (identical except for their seed and step size η — η never
enters the gradient math, each replica applies its own in
``step_from``, so a sweep's whole η grid column at fixed m merges into
one super-cohort of K×|η| stacked replicas) into lockstep cohorts of
up to ``replicas`` runs that execute inside *one* process with stacked
gradient kernels (:func:`repro.harness.runner.run_cohort`). The two
compose: cohorts batch within a worker, chunks spread across workers.

The data plane under a fan-out (see :mod:`repro.harness.pool` and
:mod:`repro.harness.cache`):

* ``pool`` — a persistent :class:`~repro.harness.pool.WorkerPool`
  reused across ``map_runs`` calls (one executor spawn, one
  shared-memory problem broadcast per workload). Without one, an
  ephemeral pool is created and torn down per call — the historical
  behaviour.
* ``cache`` — a content-addressed
  :class:`~repro.harness.cache.RunCache`; configs whose key is present
  skip execution entirely and scatter their archived result (bitwise-
  identical to recomputation by construction *and* by test).

Worker-count resolution (:func:`resolve_workers`):

* explicit ``workers`` argument wins (``-1`` means "all cores");
* else the ``REPRO_WORKERS`` environment variable, if set;
* else serial — parallelism is opt-in so unit tests and nested callers
  never fork surprisingly;
* the result is capped at ``os.cpu_count()`` (with a warning when the
  cap bites) — the simulations are CPU-bound, so oversubscription only
  adds scheduling overhead. In cohort mode the cap stays but the
  warning is suppressed: a cohort is one OS process however many
  replicas it advances, so a generous worker request is bounded by the
  chunk count rather than a sign of oversubscription.

Replica-count resolution (:func:`resolve_replicas`) mirrors the worker
rules with the ``REPRO_REPLICAS`` environment variable; ``0``/``1``
mean "no batching".

``0``/``1`` workers mean serial. The pool is also skipped, with a
serial fallback, when there is only one task, when the task payload
cannot be pickled (e.g. a user-defined problem holding a lambda), or
when the host cannot spawn processes at all. A worker crash mid-sweep
(``BrokenProcessPool``) respawns the pool and resubmits only the
unfinished chunks; chunks that already completed keep their results.

Telemetry crosses the process boundary intact: ``RunConfig.probes``
carries probe *names* (resolved inside each worker's ``run_once``), and
the returned :class:`~repro.telemetry.metrics.RunMetrics` is a plain
picklable mapping — so a parallel sweep's JSONL export is byte-for-byte
the serial one's.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.harness.pool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.core.problem import Problem
    from repro.harness.cache import RunCache
    from repro.harness.config import RunConfig
    from repro.harness.runner import RunResult
    from repro.sim.cost import CostModel

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable consulted when no explicit replica count is given.
REPLICAS_ENV = "REPRO_REPLICAS"


def resolve_workers(workers: int | None = None, *, cohort_replicas: int = 1) -> int:
    """Resolve an effective worker count (>= 1; 1 means serial).

    ``workers=None`` consults ``REPRO_WORKERS`` and defaults to serial;
    ``workers=-1`` (or ``REPRO_WORKERS=-1``) means one worker per CPU
    core; ``0`` is accepted as an explicit "serial" request. Requests
    beyond the host's core count are capped (with a warning): the runs
    are CPU-bound simulations, so oversubscribing cores only adds
    context-switch and fork overhead — on a 1-core host a 2-worker pool
    was measured *slower* than the serial loop (speedup 0.71).

    ``cohort_replicas`` marks the cohort-batched path: each worker is
    still one OS process no matter how many lockstep replicas it
    advances, so the cap applies as usual but silently — the caller's
    worker request is a chunk-level fan-out bound, not a claim on
    ``workers * replicas`` cores.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    n_cores = os.cpu_count() or 1
    if workers == -1:
        return n_cores
    if workers < -1:
        raise ConfigurationError(f"workers must be >= -1, got {workers}")
    if workers > n_cores:
        if cohort_replicas <= 1:
            warnings.warn(
                f"requested {workers} workers on a {n_cores}-core host; "
                f"capping at {n_cores} (oversubscription slows CPU-bound runs)",
                RuntimeWarning,
                stacklevel=2,
            )
        return n_cores
    return max(workers, 1)


def resolve_replicas(replicas: int | None = None) -> int:
    """Resolve an effective lockstep-cohort size (>= 1; 1 disables
    batching).

    ``replicas=None`` consults ``REPRO_REPLICAS`` and defaults to 1.
    Unlike workers, replicas are *not* capped by the core count: a
    cohort runs in one process, and its sweet spot (the paper protocol's
    11 seeds) is a property of the workload, not the host.
    """
    if replicas is None:
        env = os.environ.get(REPLICAS_ENV)
        if env is None:
            return 1
        try:
            replicas = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{REPLICAS_ENV} must be an integer, got {env!r}"
            ) from None
    replicas = int(replicas)
    if replicas < 0:
        raise ConfigurationError(f"replicas must be >= 0, got {replicas}")
    return max(replicas, 1)


def plan_cohorts(configs: Sequence["RunConfig"], replicas: int) -> list[list[int]]:
    """Group config *indices* into cohort chunks of at most ``replicas``.

    Configs are cohort-compatible when they differ only in seed (the
    repeated-seed protocol's shape) and/or step size η: every tensor
    shape of a run is fixed by the remaining fields, and η only scales
    each replica's own ``step_from`` — the stacked gradient kernels
    never see it. A sweep's grid column (all η at fixed algorithm/m)
    therefore merges into one compatibility group of K×|η| replicas.
    Each group is chunked in first-appearance order, so results scatter
    back into the caller's ordering deterministically. Singleton chunks
    are fine — the runner routes them through the plain serial path.
    """
    groups: dict = {}
    order = []
    for i, config in enumerate(configs):
        # Canonical seed/η: both fields are simulation inputs applied
        # privately per replica, never batch-shape inputs. eta=1.0 is
        # safe as the canonical value (RunConfig validates eta > 0).
        key = replace(config, seed=0, eta=1.0)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = []
            order.append(key)
        bucket.append(i)
    chunks: list[list[int]] = []
    for key in order:
        indices = groups[key]
        for start in range(0, len(indices), replicas):
            chunks.append(indices[start : start + replicas])
    return chunks


def _label(config) -> str:
    """The heartbeat label for a just-finished run."""
    return f"{config.algorithm}/m={config.m}/seed={config.seed}"


def _run_serial(problem, cost, configs, progress=None) -> list:
    """Plain in-process loop (no pool, no cohorts, no cache)."""
    from repro.harness.runner import run_once

    results = []
    for config in configs:
        results.append(run_once(problem, cost, config))
        if progress is not None:
            progress(len(results), len(configs), _label(config))
    return results


def map_runs(
    problem: "Problem",
    cost: "CostModel",
    configs: Sequence["RunConfig"],
    *,
    workers: int | None = None,
    replicas: int | None = None,
    progress=None,
    pool: "WorkerPool | None" = None,
    cache: "RunCache | None" = None,
) -> list["RunResult"]:
    """Execute every config, fanning out over processes and batching
    same-shape configs into lockstep replica cohorts.

    Results come back in the order of ``configs`` and are identical to
    a serial loop's, whatever the worker count, replica grouping, pool
    reuse, or cache state (``wall_seconds`` and the other host-side
    fields excepted — they measure the execution strategy, not the
    simulation). Falls back to serial execution (with a warning) when
    the payload cannot be pickled or the pool cannot be brought up;
    exceptions raised *inside* a simulation propagate unchanged either
    way.

    ``pool`` reuses a persistent :class:`~repro.harness.pool.WorkerPool`
    (its width wins over ``workers``); without one an ephemeral pool is
    created for this call when parallelism is requested. ``cache``
    consults a :class:`~repro.harness.cache.RunCache` before executing
    anything: hits scatter their archived result immediately (progress
    labels them ``[cache]``), misses execute normally and are stored.

    ``progress`` is an optional heartbeat callback invoked as
    ``progress(done, total, label)`` in the parent process after every
    completed run (or cohort chunk), in *completion* order — see
    :class:`repro.harness.progress.ProgressReporter`. It observes the
    sweep without participating in it: results are identical with or
    without the callback.
    """
    from repro.harness.runner import run_cohort, run_once

    configs = list(configs)
    if not configs:
        return []
    n_replicas = resolve_replicas(replicas)
    cohort = n_replicas > 1 and len(configs) > 1
    if pool is not None:
        n_workers = pool.workers
    else:
        n_workers = resolve_workers(
            workers, cohort_replicas=n_replicas if cohort else 1
        )

    total = len(configs)
    results: list = [None] * total
    done_runs = 0

    def _scatter(indices: list[int], chunk_results: list, note: str = "") -> None:
        nonlocal done_runs
        for index, result in zip(indices, chunk_results):
            results[index] = result
        done_runs += len(indices)
        if progress is not None:
            progress(done_runs, total, _label(configs[indices[-1]]) + note)

    # -- cache partition: hits scatter now, misses execute below -------
    pending = list(range(total))
    if cache is not None:
        missing = []
        for index in pending:
            config = configs[index]
            if not cache.eligible(config):
                cache.note_bypass("self_profile")
                missing.append(index)
                continue
            hit = cache.get(problem, cost, config)
            if hit is not None:
                _scatter([index], [hit], note=" [cache]")
            else:
                missing.append(index)
        pending = missing
    if not pending:
        return results

    # -- chunk plan: cohorts of same-shape configs, else singletons ----
    if cohort:
        chunks = [
            [pending[j] for j in chunk]
            for chunk in plan_cohorts([configs[i] for i in pending], n_replicas)
        ]
    else:
        chunks = [[index] for index in pending]

    def _finish(indices: list[int], chunk_results: list) -> None:
        if cache is not None:
            for index, result in zip(indices, chunk_results):
                if cache.eligible(configs[index]):
                    cache.put(problem, cost, configs[index], result)
        _scatter(indices, chunk_results)

    def _run_chunk_inline(indices: list[int]) -> list:
        chunk_configs = [configs[i] for i in indices]
        if len(chunk_configs) > 1:
            return run_cohort(problem, cost, chunk_configs)
        return [run_once(problem, cost, chunk_configs[0])]

    # -- execution: pool for what it can take, serial for the rest -----
    use_pool = len(chunks) > 1 and n_workers > 1
    owned = None
    if use_pool and pool is None:
        owned = pool = WorkerPool(min(n_workers, len(chunks)))
    try:
        if use_pool:
            pool.run_chunks(
                problem, cost,
                [[configs[i] for i in chunk] for chunk in chunks],
                cohort=cohort,
                on_done=lambda chunk_index, chunk_results: _finish(
                    chunks[chunk_index], chunk_results
                ),
            )
        # Serial pass covers everything the pool did not deliver: the
        # whole plan when serial, the unfinished chunks after a pool
        # failure mid-sweep, nothing on a clean parallel run.
        for indices in chunks:
            if results[indices[0]] is None:
                _finish(indices, _run_chunk_inline(indices))
    finally:
        if owned is not None:
            owned.close()
    return results


class ParallelRunner:
    """A bound (problem, cost, workers, replicas) tuple for repeated
    fan-outs.

    Thin convenience over :func:`map_runs` for callers that sweep many
    config batches against one workload — and the natural owner of a
    persistent :class:`~repro.harness.pool.WorkerPool`: the first
    parallel ``map`` spawns it, every later call reuses it (one problem
    broadcast, one executor), and :meth:`close` (or the context manager)
    releases it::

        with ParallelRunner(problem, cost, workers=8, replicas=11) as runner:
            for batch in batches:
                results = runner.map(batch)

    ``cache`` (optional) is consulted on every ``map`` — see
    :class:`~repro.harness.cache.RunCache`.
    """

    def __init__(
        self,
        problem: "Problem",
        cost: "CostModel",
        *,
        workers: int | None = None,
        replicas: int | None = None,
        cache: "RunCache | None" = None,
    ) -> None:
        self.problem = problem
        self.cost = cost
        self.replicas = resolve_replicas(replicas)
        self.workers = resolve_workers(workers, cohort_replicas=self.replicas)
        self.cache = cache
        self._pool: WorkerPool | None = None

    @property
    def pool(self) -> WorkerPool | None:
        """The persistent worker pool (spawned lazily; None when
        serial)."""
        if self._pool is None and self.workers > 1:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def close(self) -> None:
        """Release the pool's workers and shared-memory segments."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        # Runs on KeyboardInterrupt/SIGINT unwinds too (the `with`
        # statement guarantees it): closing the pool unlinks every
        # broadcast shm segment, so an interrupted sweep leaves nothing
        # behind in /dev/shm. Runners abandoned *without* the context
        # manager are backstopped by WorkerPool's GC/exit finalizer —
        # see :func:`repro.harness.pool._close_broadcasts`.
        self.close()

    def map(self, configs: Sequence["RunConfig"], *, progress=None) -> list["RunResult"]:
        """Run every config; ordered, deterministic results."""
        return map_runs(
            self.problem, self.cost, configs,
            workers=self.workers, replicas=self.replicas, progress=progress,
            pool=self.pool, cache=self.cache,
        )

    def run_repeated(
        self, config: "RunConfig", *, repeats: int, seed_stride: int = 1_000, progress=None
    ) -> list["RunResult"]:
        """The parallel counterpart of :func:`repro.harness.runner.run_repeated`."""
        from repro.harness.runner import repeated_configs

        return self.map(
            repeated_configs(config, repeats=repeats, seed_stride=seed_stride),
            progress=progress,
        )
