"""Process-parallel experiment execution.

The paper's protocol multiplies every configuration by 11 seeds and
whole algorithm × thread-count grids; each of those runs is an
independent simulation, deterministic given its :class:`RunConfig`
seed. That makes the harness embarrassingly parallel: this module fans
a list of configs out over a ``ProcessPoolExecutor`` and collects the
results **in submission order**, so a parallel sweep returns exactly
the list a serial loop would have produced (bitwise-identical results,
since each ``run_once`` derives every RNG stream from its config's seed
via :class:`repro.utils.rng.RngFactory`).

Worker-count resolution (:func:`resolve_workers`):

* explicit ``workers`` argument wins (``-1`` means "all cores");
* else the ``REPRO_WORKERS`` environment variable, if set;
* else serial — parallelism is opt-in so unit tests and nested callers
  never fork surprisingly;
* the result is capped at ``os.cpu_count()`` (with a warning when the
  cap bites) — the simulations are CPU-bound, so oversubscription only
  adds scheduling overhead.

``0``/``1`` mean serial. The pool is also skipped, with a serial
fallback, when there is only one task, when the task payload cannot be
pickled (e.g. a user-defined problem holding a lambda), or when the
host cannot spawn processes at all.

Telemetry crosses the process boundary intact: ``RunConfig.probes``
carries probe *names* (resolved inside each worker's ``run_once``), and
the returned :class:`~repro.telemetry.metrics.RunMetrics` is a plain
picklable mapping — so a parallel sweep's JSONL export is byte-for-byte
the serial one's.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.core.problem import Problem
    from repro.harness.config import RunConfig
    from repro.harness.runner import RunResult
    from repro.sim.cost import CostModel

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

# Per-process state for pool workers: the (problem, cost) pair is
# shipped once per worker via the pool initializer instead of once per
# task — the problem carries the training corpus (tens of MB for the
# paper profile), the configs are a few hundred bytes each.
_WORKER_STATE: dict = {}


def _init_worker(problem, cost) -> None:  # pragma: no cover - runs in subprocess
    _WORKER_STATE["problem"] = problem
    _WORKER_STATE["cost"] = cost


def _run_config(config):  # pragma: no cover - runs in subprocess
    from repro.harness.runner import run_once

    return run_once(_WORKER_STATE["problem"], _WORKER_STATE["cost"], config)


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count (>= 1; 1 means serial).

    ``workers=None`` consults ``REPRO_WORKERS`` and defaults to serial;
    ``workers=-1`` (or ``REPRO_WORKERS=-1``) means one worker per CPU
    core; ``0`` is accepted as an explicit "serial" request. Requests
    beyond the host's core count are capped (with a warning): the runs
    are CPU-bound simulations, so oversubscribing cores only adds
    context-switch and fork overhead — on a 1-core host a 2-worker pool
    was measured *slower* than the serial loop (speedup 0.71).
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    workers = int(workers)
    n_cores = os.cpu_count() or 1
    if workers == -1:
        return n_cores
    if workers < -1:
        raise ConfigurationError(f"workers must be >= -1, got {workers}")
    if workers > n_cores:
        warnings.warn(
            f"requested {workers} workers on a {n_cores}-core host; "
            f"capping at {n_cores} (oversubscription slows CPU-bound runs)",
            RuntimeWarning,
            stacklevel=2,
        )
        return n_cores
    return max(workers, 1)


def _run_serial(problem, cost, configs) -> list:
    from repro.harness.runner import run_once

    return [run_once(problem, cost, config) for config in configs]


def map_runs(
    problem: "Problem",
    cost: "CostModel",
    configs: Sequence["RunConfig"],
    *,
    workers: int | None = None,
) -> list["RunResult"]:
    """Execute ``run_once`` for every config, fanning out over processes.

    Results come back in the order of ``configs`` and are identical to
    a serial loop's, whatever the worker count. Falls back to serial
    execution (with a warning) when the payload cannot be pickled or
    the pool cannot be brought up; exceptions raised *inside* a
    simulation propagate unchanged either way.
    """
    n_workers = resolve_workers(workers)
    configs = list(configs)
    if n_workers <= 1 or len(configs) <= 1:
        return _run_serial(problem, cost, configs)
    try:
        # Pre-flight: a problem holding closures / generators (perfectly
        # fine serially) cannot cross a process boundary.
        pickle.dumps((problem, cost))
    except Exception as exc:
        warnings.warn(
            f"parallel run falling back to serial: payload not picklable ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(problem, cost, configs)
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(configs)),
            initializer=_init_worker,
            initargs=(problem, cost),
        ) as pool:
            return list(pool.map(_run_config, configs))
    except (BrokenProcessPool, OSError) as exc:
        warnings.warn(
            f"parallel run falling back to serial: process pool failed ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(problem, cost, configs)


class ParallelRunner:
    """A bound (problem, cost, workers) triple for repeated fan-outs.

    Thin convenience over :func:`map_runs` for callers that sweep many
    config batches against one workload::

        runner = ParallelRunner(problem, cost, workers=8)
        results = runner.map(configs)
    """

    def __init__(
        self,
        problem: "Problem",
        cost: "CostModel",
        *,
        workers: int | None = None,
    ) -> None:
        self.problem = problem
        self.cost = cost
        self.workers = resolve_workers(workers)

    def map(self, configs: Sequence["RunConfig"]) -> list["RunResult"]:
        """Run every config; ordered, deterministic results."""
        return map_runs(self.problem, self.cost, configs, workers=self.workers)

    def run_repeated(
        self, config: "RunConfig", *, repeats: int, seed_stride: int = 1_000
    ) -> list["RunResult"]:
        """The parallel counterpart of :func:`repro.harness.runner.run_repeated`."""
        from repro.harness.runner import repeated_configs

        return self.map(repeated_configs(config, repeats=repeats, seed_stride=seed_stride))
