"""Persistent worker pool with zero-copy problem broadcast.

Before this module, every :func:`repro.harness.parallel.map_runs` call
built a fresh ``ProcessPoolExecutor`` and shipped the whole pickled
problem — network, synthetic-MNIST corpus, cost model — into each
worker through the pool initializer. Fine for one fan-out; wasteful for
the paper's protocol, which is *many* fan-outs against the same
workload (11 seeds × η grid × m grid × 6 algorithms, S1–S5 back to
back). The two costs this module removes:

* **pool churn** — :class:`WorkerPool` is spawned once by the sweep /
  experiment layer and reused across ``run_repeated`` cohorts, grid
  columns and experiment phases. It health-checks (:meth:`WorkerPool.
  ping`) and respawns crashed workers (a ``BrokenProcessPool`` discards
  the executor, respawns, and resubmits the chunks that had not
  completed — up to ``max_respawns`` times before the serial fallback);
* **payload shipping** — the immutable arrays of a problem (training
  images/labels, eval split) go into ``multiprocessing.shared_memory``
  segments created *once per broadcast* (:func:`make_broadcast`); the
  per-task payload shrinks to the config chunk plus segment names.
  Workers map the segments read-only (``writeable=False``), so a
  worker cannot corrupt the corpus another worker is reading.

Fallback ladder (each step preserves bitwise-identical results):

1. shared-memory broadcast — arrays ≥ :data:`MIN_SHM_BYTES` ride in shm
   segments, the rest of the object graph in a small pickle;
2. plain pickle broadcast — when shm is unavailable (``OSError`` at
   segment creation, e.g. no ``/dev/shm``), the full payload ships per
   task and is unpickled once per worker (memoized by broadcast key);
3. serial — when the payload cannot be pickled at all (problems holding
   lambdas/closures), :func:`make_broadcast` returns ``None`` with the
   same ``RuntimeWarning`` the pre-pool harness raised, and the caller
   runs in-process.

Results never change across the ladder: workers execute the same
``run_once`` / ``run_cohort`` the serial path does, and the broadcast
reconstructs arrays with identical bytes (see
``tests/harness/test_pool.py``).
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import warnings
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import Problem
    from repro.harness.config import RunConfig
    from repro.sim.cost import CostModel

__all__ = [
    "MIN_SHM_BYTES",
    "ProblemBroadcast",
    "PoolStats",
    "WorkerPool",
    "make_broadcast",
]

#: Arrays below this size stay inline in the broadcast pickle — a shm
#: segment costs a file descriptor and a page-granular mapping, which
#: only pays off for corpus-sized arrays.
MIN_SHM_BYTES = 1 << 16

#: Tag marking shm-backed arrays inside a broadcast pickle stream.
_SHM_TAG = "repro-shm"

#: Per-worker cap on memoized broadcasts (a long-lived pool sweeping
#: many distinct problems must not accumulate corpora without bound).
_WORKER_CACHE_MAX = 4

_broadcast_counter = itertools.count()


def _shm_module():
    """The shared-memory module, or None when the host lacks it."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython >= 3.8
        return None
    return shared_memory


def _attach_segment(name: str):
    """Attach an existing segment without registering it for cleanup.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach re-registers
    the segment with the resource tracker, which then warns about (and
    may unlink) "leaked" segments when the worker exits — the creator
    owns the unlink here, not the attaching worker (gh-82300). Because
    forked workers share the parent's tracker process, an attach-side
    ``unregister`` would erase the *creator's* registration (one shared
    name set), so registration is suppressed during the attach instead.
    """
    shm = _shm_module()
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - tracker details vary by version
        return shm.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _ShmPickler(pickle.Pickler):
    """Pickler that hoists large C-contiguous arrays into shm segments.

    The pickle stream keeps only ``(tag, segment, dtype, shape)``
    persistent ids; array bytes are copied once into the segment. The
    created segments accumulate in ``segments`` for the caller to own
    (unlink on broadcast close) and repeated references to one array
    dedup onto one segment.
    """

    def __init__(self, buffer, shared_memory_module, segments: list) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._shm = shared_memory_module
        self._segments = segments
        self._seen: dict[int, tuple] = {}

    def persistent_id(self, obj):
        if (
            not isinstance(obj, np.ndarray)
            or obj.nbytes < MIN_SHM_BYTES
            or not obj.flags.c_contiguous
            or obj.dtype.hasobject
        ):
            return None  # inline pickle
        cached = self._seen.get(id(obj))
        if cached is not None:
            return cached
        segment = self._shm.SharedMemory(create=True, size=obj.nbytes)
        self._segments.append(segment)
        np.ndarray(obj.shape, dtype=obj.dtype, buffer=segment.buf)[...] = obj
        pid = (_SHM_TAG, segment.name, obj.dtype.str, obj.shape)
        self._seen[id(obj)] = pid
        return pid


class _ShmUnpickler(pickle.Unpickler):
    """Worker-side unpickler: attaches segments as read-only arrays.

    ``attached`` collects the ``SharedMemory`` handles — they must stay
    alive as long as the arrays viewing their buffers do.
    """

    def __init__(self, buffer, attached: list) -> None:
        super().__init__(buffer)
        self._attached = attached

    def persistent_load(self, pid):
        tag, name, dtype, shape = pid
        if tag != _SHM_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        shm = _attach_segment(name)
        self._attached.append(shm)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        array.flags.writeable = False
        return array


def _release_segments(segments: list) -> None:
    """Creator-side unlink of every segment, tolerating already-gone
    ones. Mutates the list in place so the ``close()`` path and the
    GC/exit finalizer (which share the list object) stay idempotent."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


@dataclass
class ProblemBroadcast:
    """One (problem, cost) pair staged for shipment to pool workers.

    ``payload`` is the pickle stream; in ``"shm"`` mode it is small (the
    object graph minus the big arrays) and ``segments`` holds the
    creator-side handles of the hoisted arrays; in ``"pickle"`` mode it
    is the full payload and ``segments`` is empty. ``key`` identifies
    the broadcast for worker-side memoization — one unpickle per worker
    per broadcast, however many tasks it executes.

    Shm segments outlive the process unless unlinked, so reaching
    ``close()`` is not optional — a ``KeyboardInterrupt`` that unwinds
    past the owning ``finally`` would otherwise leak corpus-sized
    segments in ``/dev/shm`` until reboot. A ``weakref.finalize``
    (GC or interpreter exit, whichever first) backstops ``close()``;
    both funnel through :func:`_release_segments` on the same list
    object, so whichever runs second is a no-op.
    """

    key: str
    mode: str  # "shm" | "pickle"
    payload: bytes
    segments: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._finalizer = weakref.finalize(self, _release_segments, self.segments)

    @property
    def shm_bytes(self) -> int:
        """Bytes resident in shared-memory segments."""
        return sum(segment.size for segment in self.segments)

    def close(self) -> None:
        """Release the shared-memory segments (creator side)."""
        self._finalizer.detach()
        _release_segments(self.segments)


def make_broadcast(problem: "Problem", cost: "CostModel") -> ProblemBroadcast | None:
    """Stage ``(problem, cost)`` for the pool, or ``None`` (with the
    historical serial-fallback warning) when it cannot be pickled.

    Tries the shared-memory hoist first; an ``OSError`` while creating
    segments (no shm on this host) degrades to a plain full pickle.
    """
    key = f"bcast-{os.getpid()}-{next(_broadcast_counter)}"
    shm = _shm_module()
    if shm is not None:
        segments: list = []
        buffer = io.BytesIO()
        try:
            _ShmPickler(buffer, shm, segments).dump((problem, cost))
            return ProblemBroadcast(
                key=key, mode="shm", payload=buffer.getvalue(), segments=segments
            )
        except OSError:
            # shm unavailable (or exhausted): fall through to plain pickle.
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:
                    pass
        except Exception as exc:
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:
                    pass
            warnings.warn(
                f"parallel run falling back to serial: payload not picklable ({exc})",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
    try:
        return ProblemBroadcast(
            key=key, mode="pickle", payload=pickle.dumps((problem, cost))
        )
    except Exception as exc:
        warnings.warn(
            f"parallel run falling back to serial: payload not picklable ({exc})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker-process broadcast cache: key -> (problem, cost, attached
#: shm handles). Insertion-ordered; trimmed at _WORKER_CACHE_MAX.
_WORKER_STATE: dict = {}


def load_broadcast_payload(payload: bytes) -> tuple:
    """Unpickle a broadcast payload, attaching any shm-backed arrays.

    Returns ``(problem, cost, attached_handles)``. The handles must
    outlive the arrays (they own the mappings); callers done with the
    arrays should ``close()`` each handle.
    """
    attached: list = []
    problem, cost = _ShmUnpickler(io.BytesIO(payload), attached).load()
    return problem, cost, attached


def _worker_problem(key: str, payload: bytes) -> tuple:
    entry = _WORKER_STATE.get(key)
    if entry is None:
        while len(_WORKER_STATE) >= _WORKER_CACHE_MAX:
            _, _, stale = _WORKER_STATE.pop(next(iter(_WORKER_STATE)))
            for shm in stale:
                shm.close()
        entry = _WORKER_STATE[key] = load_broadcast_payload(payload)
    return entry[0], entry[1]


def _pool_run_chunk(key, payload, configs, cohort):  # pragma: no cover - subprocess
    from repro.harness.runner import run_cohort, run_once

    problem, cost = _worker_problem(key, payload)
    if cohort and len(configs) > 1:
        return run_cohort(problem, cost, list(configs))
    return [run_once(problem, cost, config) for config in configs]


def _pool_ping():  # pragma: no cover - subprocess
    return os.getpid()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def _close_broadcasts(broadcasts: dict) -> None:
    """Close every staged broadcast; shared by :meth:`WorkerPool.close`
    and the pool's GC/exit finalizer (both see the same dict object)."""
    for _, _, broadcast in broadcasts.values():
        if broadcast is not None:
            broadcast.close()
    broadcasts.clear()


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`WorkerPool`."""

    spawns: int = 0  # executor bring-ups (1 + respawns, when used)
    respawns: int = 0  # executors discarded after a worker crash
    broadcasts: int = 0  # distinct (problem, cost) pairs staged
    shm_bytes: int = 0  # bytes currently resident in shm segments
    chunks_completed: int = 0  # chunks returned through the pool

    def as_dict(self) -> dict:
        return {
            "spawns": self.spawns,
            "respawns": self.respawns,
            "broadcasts": self.broadcasts,
            "shm_bytes": self.shm_bytes,
            "chunks_completed": self.chunks_completed,
        }


class WorkerPool:
    """A persistent process pool for repeated sweep fan-outs.

    Create once at the sweep/experiment layer, pass into every
    :func:`repro.harness.parallel.map_runs` (or let the harness create
    an ephemeral one per call, the pre-pool behaviour), close when the
    sweep is done::

        with WorkerPool(workers=8) as pool:
            for column in columns:
                results = map_runs(problem, cost, column, pool=pool)

    The executor is spawned lazily on first use and respawned after a
    worker crash (``BrokenProcessPool``): completed chunks keep their
    results, incomplete chunks are resubmitted, and after
    ``max_respawns`` failed attempts the caller's serial fallback takes
    over. Problem broadcasts (:func:`make_broadcast`) are memoized per
    (problem, cost) identity, so repeated ``map_runs`` calls against one
    workload stage its arrays into shared memory exactly once.
    """

    def __init__(self, workers: int | None = None, *, max_respawns: int = 2) -> None:
        from repro.harness.parallel import resolve_workers

        self.workers = resolve_workers(workers)
        self.max_respawns = int(max_respawns)
        self.stats = PoolStats()
        self._executor = None
        self._broadcasts: dict = {}  # (id(problem), id(cost)) -> (problem, cost, bcast)
        self._closed = False
        # Backstop for pools abandoned without close() (e.g. SIGINT
        # unwinding past the owner): releases every staged broadcast's
        # shm segments at GC/interpreter exit. The per-broadcast
        # finalizer covers broadcasts that escaped the pool.
        self._finalizer = weakref.finalize(
            self, _close_broadcasts, self._broadcasts
        )

    # -- lifecycle -----------------------------------------------------
    def _ensure_executor(self):
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self.stats.spawns += 1
        return self._executor

    def _discard_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def ping(self, timeout: float = 60.0) -> bool:
        """Health check: True when a worker answers a round-trip."""
        if self.workers <= 1 or self._closed:
            return False
        try:
            return bool(self._ensure_executor().submit(_pool_ping).result(timeout))
        except Exception:
            self._discard_executor()
            return False

    def close(self) -> None:
        """Shut the executor down and release every shm segment."""
        self._finalizer.detach()
        self._discard_executor()
        _close_broadcasts(self._broadcasts)
        self.stats.shm_bytes = 0
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- broadcast -----------------------------------------------------
    def broadcast_for(self, problem: "Problem", cost: "CostModel") -> ProblemBroadcast | None:
        """The memoized broadcast for this (problem, cost) pair (``None``
        when the payload cannot cross a process boundary — the caller
        should run serially)."""
        key = (id(problem), id(cost))
        entry = self._broadcasts.get(key)
        # The entry pins the objects, so their ids cannot be recycled.
        if entry is not None and entry[0] is problem and entry[1] is cost:
            return entry[2]
        broadcast = make_broadcast(problem, cost)
        self._broadcasts[key] = (problem, cost, broadcast)
        if broadcast is not None:
            self.stats.broadcasts += 1
            self.stats.shm_bytes += broadcast.shm_bytes
        return broadcast

    # -- execution -----------------------------------------------------
    def run_chunks(
        self,
        problem: "Problem",
        cost: "CostModel",
        chunks: Sequence[Sequence["RunConfig"]],
        *,
        cohort: bool = False,
        on_done: Callable[[int, list], None],
    ) -> bool:
        """Execute config chunks on the pool; ``on_done(chunk_index,
        results)`` fires in completion order.

        Returns True when every chunk completed through the pool. On a
        worker crash the executor is respawned and the chunks that have
        not reached ``on_done`` are resubmitted; after ``max_respawns``
        attempts (or when the pool cannot come up / the payload cannot
        be pickled) returns False — chunks already delivered keep their
        results, and the caller runs the rest serially. Exceptions
        raised *inside* a simulation propagate unchanged.
        """
        if self.workers <= 1 or self._closed:
            return False
        broadcast = self.broadcast_for(problem, cost)
        if broadcast is None:
            return False
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        remaining = set(range(len(chunks)))
        attempts = 0
        while remaining:
            try:
                executor = self._ensure_executor()
            except OSError as exc:
                warnings.warn(
                    f"parallel run falling back to serial: process pool failed ({exc})",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return False
            try:
                pending = {
                    executor.submit(
                        _pool_run_chunk, broadcast.key, broadcast.payload,
                        list(chunks[i]), cohort,
                    ): i
                    for i in sorted(remaining)
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        chunk_results = future.result()
                        remaining.discard(index)
                        self.stats.chunks_completed += 1
                        on_done(index, chunk_results)
            except (BrokenProcessPool, OSError) as exc:
                self._discard_executor()
                attempts += 1
                self.stats.respawns += 1
                if attempts > self.max_respawns:
                    warnings.warn(
                        f"parallel run falling back to serial: process pool failed "
                        f"({exc})",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    return False
                warnings.warn(
                    f"worker pool crashed ({exc}); respawning "
                    f"(attempt {attempts}/{self.max_respawns})",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return True

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else ("idle" if self._executor is None else "up")
        return f"WorkerPool(workers={self.workers}, {state}, {self.stats.as_dict()})"
