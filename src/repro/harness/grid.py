"""Experiment grids: declarative cartesian sweeps over run parameters.

The S1–S5 functions cover the paper's experiments; downstream users
exploring their own questions usually want "run every combination of
these algorithms, thread counts and step sizes, N seeds each, and give
me a tidy table". :class:`SweepGrid` is that, with optional JSON
archival via :mod:`repro.utils.serialization`.

Example
-------
>>> from repro.harness.grid import SweepGrid
>>> from repro.core.problem import QuadraticProblem
>>> from repro.sim.cost import CostModel
>>> grid = SweepGrid(
...     algorithms=("ASYNC", "LSH_ps0"),
...     thread_counts=(2, 4),
...     etas=(0.05,),
...     repeats=1,
...     epsilons=(0.5, 0.1),
... )
>>> results = grid.run(QuadraticProblem(32), CostModel(tc=2e-3, tu=1e-3, t_copy=5e-4))
>>> len(results)
4
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.problem import Problem
from repro.errors import ConfigurationError
from repro.harness.config import RunConfig
from repro.harness.runner import RunResult, repeated_configs, run_once
from repro.sim.cost import CostModel
from repro.utils.tables import render_table


@dataclass(frozen=True)
class SweepGrid:
    """A cartesian sweep specification.

    ``SEQ`` entries are automatically pinned to m=1 regardless of
    ``thread_counts`` (and deduplicated).
    """

    algorithms: tuple[str, ...]
    thread_counts: tuple[int, ...] = (4,)
    etas: tuple[float, ...] = (0.05,)
    repeats: int = 3
    seed: int = 0
    epsilons: tuple[float, ...] = (0.5, 0.1)
    target_epsilon: float | None = None
    max_updates: int = 100_000
    max_virtual_time: float = 300.0
    max_wall_seconds: float = 120.0

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ConfigurationError("SweepGrid needs at least one algorithm")
        if self.repeats <= 0:
            raise ConfigurationError(f"repeats must be > 0, got {self.repeats}")
        if not self.thread_counts or not self.etas:
            raise ConfigurationError("thread_counts and etas must be non-empty")

    # ------------------------------------------------------------------
    def cells(self) -> list[tuple[str, int, float]]:
        """The (algorithm, m, eta) combinations, SEQ pinned to m=1."""
        out: list[tuple[str, int, float]] = []
        seen: set[tuple[str, int, float]] = set()
        for algorithm, m, eta in itertools.product(
            self.algorithms, self.thread_counts, self.etas
        ):
            if algorithm == "SEQ":
                m = 1
            key = (algorithm, m, eta)
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def _cell_config(self, algorithm: str, m: int, eta: float) -> RunConfig:
        return RunConfig(
            algorithm=algorithm,
            m=m,
            eta=eta,
            seed=self.seed,
            epsilons=self.epsilons,
            target_epsilon=self.target_epsilon,
            max_updates=self.max_updates,
            max_virtual_time=self.max_virtual_time,
            max_wall_seconds=self.max_wall_seconds,
        )

    def configs(self) -> list[RunConfig]:
        """Every run of the sweep (cells × repeats), in execution order."""
        out: list[RunConfig] = []
        for algorithm, m, eta in self.cells():
            out.extend(
                repeated_configs(self._cell_config(algorithm, m, eta), repeats=self.repeats)
            )
        return out

    def run(
        self,
        problem: Problem,
        cost: CostModel,
        *,
        progress: Callable[[str], None] | None = None,
        workers: int | None = None,
        replicas: int | None = None,
        pool=None,
        cache=None,
        service=None,
    ) -> list[RunResult]:
        """Execute the grid; returns all runs (repeats included).

        ``workers`` fans the whole sweep — every (cell, seed) pair at
        once, not cell-by-cell — over a process pool (default: serial,
        or ``REPRO_WORKERS``); ``replicas`` batches each cell's repeats
        into lockstep cohorts (default: 1, or ``REPRO_REPLICAS``) —
        same-shape cells (the η column at fixed algorithm/m) merge into
        one super-cohort when ``replicas`` allows, so a grid column
        runs as a single stacked kernel stream. ``pool`` reuses a
        persistent :class:`~repro.harness.pool.WorkerPool` (and its
        shared-memory problem broadcast) across grids; ``cache`` serves
        already-computed cells from a
        :class:`~repro.harness.cache.RunCache`. ``service`` routes the
        sweep through a durable
        :class:`~repro.service.experiment.ExperimentService` queue
        (crash/resume; the service's own pool/cache/replicas apply).
        Result order and contents are identical to the serial sweep.
        """
        from repro.harness.parallel import map_runs, resolve_replicas, resolve_workers

        if service is not None:
            if progress is not None:
                for algorithm, m, eta in self.cells():
                    progress(f"{algorithm} m={m} eta={eta:g}")
            return service.map(problem, cost, self.configs())
        n_replicas = resolve_replicas(replicas)
        if (
            pool is not None
            or cache is not None
            or n_replicas > 1
            or resolve_workers(workers, cohort_replicas=n_replicas) > 1
        ):
            if progress is not None:
                for algorithm, m, eta in self.cells():
                    progress(f"{algorithm} m={m} eta={eta:g}")
            return map_runs(
                problem, cost, self.configs(),
                workers=workers, replicas=n_replicas, pool=pool, cache=cache,
            )
        results: list[RunResult] = []
        for algorithm, m, eta in self.cells():
            if progress is not None:
                progress(f"{algorithm} m={m} eta={eta:g}")
            cell = repeated_configs(self._cell_config(algorithm, m, eta), repeats=self.repeats)
            results.extend(run_once(problem, cost, config) for config in cell)
        return results


def summarize(results: Sequence[RunResult], eps: float) -> str:
    """A tidy per-cell table of a grid's outcomes at threshold ``eps``."""
    cells: dict[tuple[str, int, float], list[RunResult]] = {}
    for r in results:
        cells.setdefault((r.config.algorithm, r.config.m, r.config.eta), []).append(r)
    rows = []
    for (algorithm, m, eta), runs in sorted(cells.items()):
        times = [r.time_to(eps) for r in runs if np.isfinite(r.time_to(eps))]
        n_fail = sum(1 for r in runs if not np.isfinite(r.time_to(eps)))
        rows.append(
            [
                algorithm, m, f"{eta:g}",
                len(times),
                float(np.median(times)) if times else float("nan"),
                float(np.mean([r.staleness["mean"] for r in runs
                               if np.isfinite(r.staleness["mean"])]) or np.nan)
                if any(np.isfinite(r.staleness["mean"]) for r in runs) else float("nan"),
                n_fail,
            ]
        )
    return render_table(
        ["algorithm", "m", "eta", "n_ok", f"median t({eps:g})", "mean tau", "failed"],
        rows,
        title=f"Sweep summary at eps={eps:g}",
    )


def archive(results: Sequence[RunResult], path: str | Path) -> Path:
    """Write the grid's results as JSON (see repro.utils.serialization)."""
    from repro.utils.serialization import save_results

    return save_results(list(results), path)
