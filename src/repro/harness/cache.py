"""Content-addressed run cache: identical configs never re-simulate.

The paper's sweeps re-execute thousands of short deterministic runs;
grids overlap across experiment phases and across invocations (S1's η
column re-appears in S2's yardstick, a re-rendered report re-runs the
whole suite). Every run is a pure function of its inputs — that is the
repo's determinism contract — so its result can be cached by content
address and a hit can *skip the simulation entirely*.

Cache key (:func:`cache_key`)
    ``sha256`` over (1) the run's PR-5 provenance config hash — the
    canonical ``repr`` of the frozen :class:`RunConfig`, covering
    algorithm, m, η, seed, probe set, budgets; (2) a structural
    fingerprint of the workload (:func:`problem_fingerprint`: every
    array's bytes, every scalar attribute, the class names); (3) the
    cost model's ``repr``; (4) the RunMetrics :data:`SCHEMA_VERSION`.
    Anything that can change a result changes the key.

Value
    The run's flattened JSONL row (:func:`repro.telemetry.jsonl.
    result_to_line`), one file per key under ``<root>/<key[:2]>/``,
    written atomically (tmp + rename). :func:`result_from_row` rebuilds
    a full :class:`RunResult` — config, status, convergence report,
    metrics — that is bitwise-identical to recomputation on every
    simulation field (``tests/harness/test_cache.py`` enforces it via
    :func:`simulation_fingerprint`).

Invalidation rules
    * a :data:`SCHEMA_VERSION` bump invalidates everything (the version
      is part of the key — exactly the PRs that change what a run
      reports);
    * any config field, workload array byte, or cost parameter change
      produces a different key;
    * code changes that alter simulation *semantics without* a schema
      bump are not detected — that is what the ``--no-cache`` escape
      hatch and the bench_sweep bitwise-identity gate exist for (each
      cached row still carries the provenance manifest of the execution
      that produced it, so stale entries are attributable).

Not cached
    * ``self_profile=True`` runs (the profile is a host-time
      observation; serving a stale one would misreport *this* host);
    * ``STOPPED`` results under a finite ``max_wall_seconds`` (the stop
      may have come from the host-time safety cap, which is not a
      deterministic simulation outcome).
    Both count as *bypasses* in :class:`CacheStats`.

Hits/misses/bypasses are tallied on :class:`CacheStats` and — when a
:class:`~repro.telemetry.bus.ProbeBus` is supplied — emitted as
``cache_hit`` / ``cache_miss`` / ``cache_bypass`` events.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import warnings
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.observe.provenance import config_hash
from repro.telemetry.metrics import SCHEMA_VERSION, RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import Problem
    from repro.harness.config import RunConfig
    from repro.harness.runner import RunResult
    from repro.sim.cost import CostModel
    from repro.telemetry.bus import ProbeBus

__all__ = [
    "CACHE_ENV",
    "CacheStats",
    "RunCache",
    "cache_key",
    "problem_fingerprint",
    "resolve_cache_dir",
    "result_from_row",
    "simulation_fingerprint",
]

#: Environment variable consulted when no explicit cache dir is given.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Row fields that describe the *execution* rather than the simulation:
#: excluded from :func:`simulation_fingerprint`, exactly the fields the
#: serial/parallel/cohort identity contract already excepts.
HOST_FIELDS = ("wall_seconds", "wall_phases", "profile", "provenance", "kernel_fallbacks")


def resolve_cache_dir(cache_dir: str | None = None, *, no_cache: bool = False) -> str | None:
    """The effective cache directory: explicit argument, else the
    ``REPRO_CACHE_DIR`` environment variable, else ``None`` (caching
    off). ``no_cache=True`` (the escape hatch) always wins."""
    if no_cache:
        return None
    if cache_dir:
        return cache_dir
    return os.environ.get(CACHE_ENV) or None


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
_FINGERPRINT_MEMO: dict[int, tuple] = {}  # id -> (weakref, digest)


def _fingerprint_value(h, value, seen: set) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"nd:")
        h.update(value.dtype.str.encode())
        h.update(repr(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
        return
    if value is None or isinstance(value, (bool, int, float, str, bytes, complex)):
        h.update(repr(value).encode())
        return
    if isinstance(value, (list, tuple)):
        h.update(b"seq:")
        for item in value:
            _fingerprint_value(h, item, seen)
        return
    if isinstance(value, dict):
        h.update(b"map:")
        for k in sorted(value, key=repr):
            h.update(repr(k).encode())
            _fingerprint_value(h, value[k], seen)
        return
    if isinstance(value, type):
        h.update(f"type:{value.__module__}.{value.__qualname__}".encode())
        return
    # Arbitrary objects: class identity + state, with a cycle guard.
    if id(value) in seen:
        h.update(b"cycle")
        return
    seen.add(id(value))
    h.update(f"obj:{type(value).__module__}.{type(value).__qualname__}:".encode())
    if dataclasses.is_dataclass(value):
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _fingerprint_value(h, getattr(value, f.name), seen)
    elif hasattr(value, "__dict__"):
        for name in sorted(vars(value)):
            h.update(name.encode())
            _fingerprint_value(h, vars(value)[name], seen)
    else:
        h.update(repr(value).encode())


def problem_fingerprint(problem: "Problem") -> str:
    """A structural content hash of a workload: class names, scalar
    attributes, and the exact bytes of every array (corpus, eval split,
    curvatures, ...). Memoized per live object — hashing a 60k-image
    corpus once per sweep, not once per run."""
    memo = _FINGERPRINT_MEMO.get(id(problem))
    if memo is not None and memo[0]() is problem:
        return memo[1]
    h = hashlib.sha256()
    _fingerprint_value(h, problem, set())
    digest = h.hexdigest()
    try:
        _FINGERPRINT_MEMO[id(problem)] = (weakref.ref(problem), digest)
    except TypeError:  # pragma: no cover - non-weakrefable problem type
        pass
    return digest


def cache_key(problem: "Problem", cost: "CostModel", config: "RunConfig") -> str:
    """The content address of one run (hex sha256)."""
    material = "|".join((
        f"schema={SCHEMA_VERSION}",
        f"config={config_hash(config)}",
        f"problem={problem_fingerprint(problem)}",
        f"cost={cost!r}",
    ))
    return hashlib.sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# Row <-> RunResult reconstruction
# ----------------------------------------------------------------------
_DTYPES_BY_REPR = {
    repr(t): t for t in (np.float16, np.float32, np.float64, np.longdouble)
}


def _config_from_dict(payload: dict) -> "RunConfig":
    from repro.harness.config import RunConfig

    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(RunConfig):
        if f.name not in payload:
            continue
        value = payload[f.name]
        if f.name == "epsilons":
            value = tuple(float(v) for v in value)
        elif f.name == "probes":
            value = tuple(str(v) for v in value)
        elif f.name == "dtype":
            if value not in _DTYPES_BY_REPR:
                raise ValueError(f"unknown archived dtype {value!r}")
            value = _DTYPES_BY_REPR[value]
        kwargs[f.name] = value
    return RunConfig(**kwargs)


def _report_from_dict(payload: dict):
    from repro.core.convergence import ConvergenceReport, RunStatus

    return ConvergenceReport(
        status=RunStatus(payload["status"]),
        initial_loss=float(payload["initial_loss"]),
        final_loss=float(payload["final_loss"]),
        threshold_times={
            float(eps): (float(t), int(n))
            for eps, (t, n) in payload["threshold_times"].items()
        },
        curve_t=[float(v) for v in payload["curve_t"]],
        curve_loss=[float(v) for v in payload["curve_loss"]],
        curve_updates=[int(v) for v in payload["curve_updates"]],
    )


def result_from_row(row: dict) -> "RunResult":
    """Rebuild a full :class:`RunResult` from a decoded flat JSONL row
    (the inverse of ``repro.utils.serialization.result_to_dict``)."""
    from repro.core.convergence import RunStatus
    from repro.harness.runner import RunResult

    values = {
        key: value
        for key, value in row.items()
        if key not in ("config", "status", "report", "schema_version")
    }
    # JSON turned these tuples into lists; the accessors unpack them.
    for key in ("memory_timeline", "retry_occupancy"):
        if isinstance(values.get(key), list):
            values[key] = tuple(values[key])
    return RunResult(
        config=_config_from_dict(row["config"]),
        status=RunStatus(row["status"]),
        report=_report_from_dict(row["report"]),
        metrics=RunMetrics(
            values=values, schema_version=row.get("schema_version", SCHEMA_VERSION)
        ),
    )


def simulation_fingerprint(result) -> str:
    """Canonical hash of a run's *simulation* outputs — every row field
    except :data:`HOST_FIELDS` (wall clocks, profiles, provenance: facts
    about the execution, not the simulated system). Two results are
    interchangeable under the identity contract iff these match."""
    from repro.utils.serialization import _encode

    row = _encode(result)  # flattens RunResult; idempotent on flat rows
    payload = {k: v for k, v in row.items() if k not in HOST_FIELDS}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Tallies of one :class:`RunCache`.

    ``tasks_served`` / ``tasks_executed`` are queue-level counters the
    experiment service mirrors in (see
    :class:`repro.service.dispatcher.Dispatcher`): how many *tasks*
    (seed-cohort boxes) were satisfied without simulating — from this
    cache or a resume journal — versus dispatched onto workers. They
    stay 0 outside the service path, and the ``__str__`` line only
    mentions them when the service actually ran tasks."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    stores: int = 0
    tasks_served: int = 0
    tasks_executed: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "stores": self.stores,
            "tasks_served": self.tasks_served,
            "tasks_executed": self.tasks_executed,
        }

    def __str__(self) -> str:
        line = (f"{self.hits} hits / {self.misses} misses / "
                f"{self.bypasses} bypassed")
        if self.tasks_served or self.tasks_executed:
            line += (f"; tasks: {self.tasks_served} served / "
                     f"{self.tasks_executed} executed")
        return line


class RunCache:
    """A content-addressed store of completed runs.

    ``bus`` (optional) receives ``cache_hit(key)`` / ``cache_miss(key)``
    / ``cache_bypass(reason)`` events for probe-style observation; the
    :class:`CacheStats` tallies are always maintained.
    """

    def __init__(self, root: str | Path, *, bus: "ProbeBus | None" = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.bus = bus

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- eligibility ---------------------------------------------------
    @staticmethod
    def eligible(config: "RunConfig") -> bool:
        """Whether a config's runs may be served from / stored in the
        cache. Self-profiled runs are not: their ``profile`` is a
        host-time observation of *this* execution."""
        return not config.self_profile

    def note_bypass(self, reason: str) -> None:
        """Record a run that skipped the cache on purpose."""
        self.stats.bypasses += 1
        if self.bus is not None:
            self.bus.cache_bypass(reason)

    # -- lookup / store ------------------------------------------------
    def get(self, problem: "Problem", cost: "CostModel", config: "RunConfig") -> "RunResult | None":
        """The cached result for this exact (problem, cost, config), or
        None (counting a miss). Corrupt or foreign-schema entries are
        treated as misses, never errors."""
        key = cache_key(problem, cost, config)
        path = self._path(key)
        row = None
        try:
            text = path.read_text()
        except FileNotFoundError:
            text = None
        except OSError as exc:  # pragma: no cover - unreadable entry
            warnings.warn(f"run cache: unreadable entry {path} ({exc}); re-running",
                          RuntimeWarning, stacklevel=2)
            text = None
        if text is not None:
            from repro.utils.serialization import _decode

            try:
                row = _decode(json.loads(text))
                if row.get("schema_version") != SCHEMA_VERSION:
                    row = None
            except (json.JSONDecodeError, ValueError, AttributeError) as exc:
                warnings.warn(f"run cache: corrupt entry {path} ({exc}); re-running",
                              RuntimeWarning, stacklevel=2)
                row = None
        if row is not None:
            try:
                result = result_from_row(row)
            except Exception as exc:
                warnings.warn(f"run cache: unloadable entry {path} ({exc}); re-running",
                              RuntimeWarning, stacklevel=2)
            else:
                self.stats.hits += 1
                if self.bus is not None:
                    self.bus.cache_hit(key)
                return result
        self.stats.misses += 1
        if self.bus is not None:
            self.bus.cache_miss(key)
        return None

    def put(self, problem: "Problem", cost: "CostModel", config: "RunConfig", result: "RunResult") -> bool:
        """Store one completed run; returns False (a bypass) for results
        the cache must not serve (see the module docstring)."""
        from repro.core.convergence import RunStatus
        from repro.telemetry.jsonl import result_to_line

        if (
            result.status is RunStatus.STOPPED
            and math.isfinite(config.max_wall_seconds)
            and result.n_updates < config.max_updates
        ):
            # STOPPED below the update cap under a finite wall cap means the
            # host clock (not the simulation) ended the run: not a
            # deterministic outcome, so it must never be served back.
            self.note_bypass("stopped-under-wall-cap")
            return False
        key = cache_key(problem, cost, config)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(result_to_line(result) + "\n")
        os.replace(tmp, path)
        self.stats.stores += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"RunCache({str(self.root)!r}, {self.stats})"
