"""Assemble a reproduction report from regenerated experiment renders.

The benchmark suite persists each experiment's plain-text figures under
``benchmarks/rendered/`` (see ``benchmarks/conftest.py::emit``); this
module stitches them, together with the paper-expectation annotations
below, into a single markdown report — the generator behind
EXPERIMENTS.md's measured sections.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: What the paper reports for each experiment family, against which the
#: regenerated output is judged (shape, not absolute numbers).
PAPER_EXPECTATIONS: dict[str, str] = {
    "S1/Fig3": (
        "Paper: baselines (ASYNC, HOG) are best around m=16 and deteriorate "
        "under higher parallelism — at m=68 no baseline execution reaches "
        "eps=50% — while Leashed-SGD variants converge stably up to 56+ "
        "threads; baseline time/iteration stays flat while Leashed-SGD's "
        "grows moderately under contention (self-regulation)."
    ),
    "S1/Fig8": (
        "Paper: the baselines' best step size (their 0.005) defines the "
        "yardstick; Leashed-SGD converges for larger step sizes than the "
        "baselines tolerate."
    ),
    "S2/Fig4-6": (
        "Paper (m=16, MLP): LSH_psinf reaches 2.5% in 65 s median vs 89 s "
        "(ASYNC) and 80 s (HOG) — a ~20% improvement with smaller "
        "fluctuations; the persistence bound visibly shifts the staleness "
        "distribution down (ps0 < ps1 < psinf)."
    ),
    "S3/Fig7": (
        "Paper (m=16, CNN): LSH_ps0 reaches 10% in ~400 s median vs ~500 s "
        "baselines, best runs 4x faster; staleness similar across "
        "algorithms because T_c/T_u is high (little contention)."
    ),
    "S4/Fig4-6": (
        "Paper (m in 24/34/68, MLP): baselines accumulate Diverge/Crash "
        "outcomes and at m=68 oscillate around initialization; Leashed-SGD "
        "still converges with regulated staleness."
    ),
    "S5/Fig10": (
        "Paper: baselines hold a constant 2m+1 ParameterVector instances; "
        "Leashed-SGD allocates dynamically, stays within Lemma 2's 3m "
        "bound, and saves ~17% memory on the CNN on average."
    ),
    "SecIV/eq7": (
        "Paper (Section IV, Cor. 3.1/3.2): the LAU-SPC retry-loop "
        "occupancy stabilizes around the fixed point n* = m/(Tc/Tu + 1), "
        "shifted down to n*_gamma = m/((Tc/Tu)(1+gamma) + 1) by the "
        "persistence bound's departure-rate boost gamma = 1/(Tp+1); the "
        "telemetry occupancy probe (`repro analyze`) measures steady-state "
        "occupancy in the right regime at low contention, with the "
        "expected drift above the prediction as CAS retries lengthen "
        "loop stays."
    ),
}


@dataclass(frozen=True)
class ReportSection:
    """One experiment's paired expectation + regenerated output."""

    experiment_id: str
    expectation: str
    rendered: str


def collect_sections(rendered_dir: str | Path) -> list[ReportSection]:
    """Pair every persisted render with its paper expectation."""
    rendered_dir = Path(rendered_dir)
    sections = []
    for experiment_id, expectation in PAPER_EXPECTATIONS.items():
        name = experiment_id.replace("/", "_").replace("=", "") + ".txt"
        path = rendered_dir / name
        rendered = path.read_text() if path.exists() else "(not regenerated yet)"
        sections.append(ReportSection(experiment_id, expectation, rendered))
    return sections


def build_report(rendered_dir: str | Path, *, profile_name: str = "quick") -> str:
    """The full markdown report."""
    lines = [
        "# Reproduction report",
        "",
        f"Regenerated with the `{profile_name}` fidelity profile "
        "(`pytest benchmarks/ --benchmark-only`). All times are virtual "
        "seconds on the simulated machine; compare shapes, not absolute "
        "numbers (see DESIGN.md §2).",
        "",
    ]
    for section in collect_sections(rendered_dir):
        lines.append(f"## {section.experiment_id}")
        lines.append("")
        lines.append(f"**Paper:** {section.expectation}")
        lines.append("")
        lines.append("**Regenerated:**")
        lines.append("")
        lines.append("```")
        lines.append(section.rendered.rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    rendered_dir: str | Path, output_path: str | Path, *, profile_name: str = "quick"
) -> Path:
    """Write :func:`build_report` to ``output_path``."""
    output_path = Path(output_path)
    output_path.write_text(build_report(rendered_dir, profile_name=profile_name))
    return output_path
