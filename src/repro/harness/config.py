"""Run configuration and fidelity profiles.

A :class:`RunConfig` fully determines one execution (algorithm, thread
count, step size, seed, budgets). A :class:`Profile` scales the
*workload* (dataset size, batch size, repeats, budgets) between:

* ``PROFILE_PAPER`` — the paper's parameters (60k train images, batch
  512, 11 repeats per setting);
* ``PROFILE_QUICK`` — the same architectures and algorithms at reduced
  scale, sized so the full benchmark suite finishes in minutes on one
  core. This is the default for ``benchmarks/``; select the paper scale
  with ``REPRO_PROFILE=paper``.

:class:`Workloads` builds (and caches) the MLP / CNN problems and their
cost models for a profile, so a benchmark sweep generates the synthetic
corpus once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from functools import cached_property

import numpy as np

from repro.core.problem import DLProblem, Problem, QuadraticProblem
from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.errors import ConfigurationError
from repro.nn.architectures import cnn_mnist, mlp_mnist
from repro.sim.cost import CostModel
from repro.utils.validation import check_in_choices, check_positive


@dataclass(frozen=True)
class RunConfig:
    """One execution's parameters.

    Attributes
    ----------
    algorithm:
        Paper label: SEQ / ASYNC / HOG / LSH_ps0 / LSH_ps1 / LSH_psinf
        (or any ``LSH_ps<k>``).
    m:
        Worker-thread count (SEQ requires 1).
    eta:
        Step size (paper default 0.005).
    epsilons / target_epsilon:
        Thresholds as fractions of the initial loss; the run stops when
        ``target_epsilon`` (default: smallest of ``epsilons``) is hit.
    use_arena / arena_poison:
        Payload pooling for ParameterVector instances (on by default;
        bitwise-identical results) and its NaN-poisoning debug mode.
    eval_interval:
        Monitor period in virtual seconds (None: auto ~ every couple of
        global updates).
    max_virtual_time / max_updates / max_wall_seconds:
        Diverge budgets (virtual, iteration and host-time caps).
    jitter_sigma / speed_spread_sigma:
        Scheduler noise (see :class:`repro.sim.scheduler.SchedulerConfig`).
    """

    algorithm: str
    m: int
    eta: float = 0.005
    seed: int = 0
    epsilons: tuple[float, ...] = (0.75, 0.5, 0.25, 0.1)
    target_epsilon: float | None = None
    eval_interval: float | None = None
    max_virtual_time: float = float("inf")
    max_updates: int = 1_000_000
    max_wall_seconds: float = float("inf")
    jitter_sigma: float = 0.08
    speed_spread_sigma: float = 0.05
    dtype: type = np.float32
    #: Recycle reclaimed ParameterVector payloads through a run-local
    #: :class:`repro.sim.arena.BufferArena` (zero steady-state NumPy
    #: allocations per update). Results are bitwise-identical with the
    #: pool on or off; off reproduces the pre-arena allocation pattern.
    use_arena: bool = True
    #: Debug mode: NaN-poison recycled payloads so a use-after-free
    #: through a stale array alias fails loudly (see docs/simulator.md,
    #: "Allocation model"). Costs one d-vector fill per reclamation.
    arena_poison: bool = False
    #: Names of pluggable telemetry probes to attach to the run's bus
    #: (see :data:`repro.telemetry.probes.PROBES`, e.g. ``"occupancy"``,
    #: ``"staleness"``). Kept as names — not instances — so configs stay
    #: hashable and pickle across the process-parallel harness; resolved
    #: by ``run_once``. Probes observe without perturbing: results are
    #: bitwise-identical for any probe set.
    probes: tuple[str, ...] = ()
    #: Opt into the engine self-profiler (:mod:`repro.observe.profiler`):
    #: wall-clock span timings of the scheduler loop, cohort rounds,
    #: stacked kernels and arena traffic land in
    #: ``RunMetrics["profile"]``. Off by default; like the probes it
    #: observes host time only and never perturbs the simulation, so
    #: profiled runs are bitwise-identical to unprofiled ones.
    self_profile: bool = False

    def __post_init__(self) -> None:
        check_positive("m", self.m)
        check_positive("eta", self.eta)
        if self.algorithm == "SEQ" and self.m != 1:
            raise ConfigurationError("SEQ is sequential: m must be 1")
        if self.target_epsilon is not None and self.target_epsilon not in self.epsilons:
            raise ConfigurationError(
                f"target_epsilon {self.target_epsilon} must be one of epsilons {self.epsilons}"
            )

    def with_seed(self, seed: int) -> "RunConfig":
        """Copy with a different seed (repeated executions)."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class Profile:
    """Workload scale for the experiment suite."""

    name: str
    n_train: int
    n_eval: int
    batch_size: int
    cnn_batch_size: int
    repeats: int
    thread_counts: tuple[int, ...]
    high_parallelism: tuple[int, ...]
    max_updates: int
    max_virtual_time: float
    max_wall_seconds: float
    step_sizes: tuple[float, ...]
    #: Precision ladders (largest..smallest eps fraction); the last entry
    #: is the stopping target (paper S2: down to 2.5%, S3: down to 10%).
    mlp_epsilons: tuple[float, ...]
    cnn_epsilons: tuple[float, ...]
    #: The yardstick step size: chosen, per the paper's S1 protocol, as
    #: the best-performing one *for the baselines at m=16* on this
    #: workload (the paper found 0.005 on real MNIST; on the synthetic
    #: corpus the same protocol — see s1_stepsize — selects 0.02).
    default_eta: float = 0.02
    data_seed: int = 2021

    def __post_init__(self) -> None:
        for attr in ("n_train", "n_eval", "batch_size", "cnn_batch_size", "repeats", "max_updates"):
            check_positive(attr, getattr(self, attr))


#: Reduced-scale default: same architectures/algorithms, minutes not hours.
PROFILE_QUICK = Profile(
    name="quick",
    n_train=8_192,
    n_eval=512,
    batch_size=256,
    cnn_batch_size=32,
    repeats=3,
    thread_counts=(1, 4, 16, 68),
    high_parallelism=(16, 34, 68),
    max_updates=2_500,
    max_virtual_time=60.0,
    max_wall_seconds=90.0,
    step_sizes=(0.005, 0.02, 0.05, 0.1),
    mlp_epsilons=(0.75, 0.5, 0.25, 0.1),
    cnn_epsilons=(0.75, 0.5, 0.25),
    default_eta=0.02,
)

#: The paper's scale (Section V.2): 60k images, batch 512, 11 repeats.
PROFILE_PAPER = Profile(
    name="paper",
    n_train=60_000,
    n_eval=2_048,
    batch_size=512,
    cnn_batch_size=512,
    repeats=11,
    thread_counts=(1, 2, 4, 8, 16, 24, 34, 48, 68),
    high_parallelism=(24, 34, 68),
    max_updates=40_000,
    max_virtual_time=600.0,
    max_wall_seconds=900.0,
    step_sizes=(0.001, 0.005, 0.01, 0.02, 0.05, 0.09),
    mlp_epsilons=(0.5, 0.1, 0.05, 0.025),
    cnn_epsilons=(0.75, 0.5, 0.25, 0.1),
    default_eta=0.02,
)

_PROFILES = {"quick": PROFILE_QUICK, "paper": PROFILE_PAPER}


def get_profile(name: str | None = None) -> Profile:
    """Resolve a profile by name, or from ``REPRO_PROFILE`` (default quick)."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "quick")
    check_in_choices("profile", name, _PROFILES)
    return _PROFILES[name]


class Workloads:
    """Problem / cost-model factory for a profile (datasets cached)."""

    def __init__(self, profile: Profile | None = None) -> None:
        self.profile = profile or get_profile()

    @cached_property
    def _corpus(self):
        return generate_synthetic_mnist(
            n_train=self.profile.n_train,
            n_eval=self.profile.n_eval,
            seed=self.profile.data_seed,
        )

    @cached_property
    def mlp_problem(self) -> DLProblem:
        """Table II MLP on the (synthetic) MNIST corpus."""
        corpus = self._corpus
        return DLProblem(
            mlp_mnist(),
            corpus.train.as_flat(),
            corpus.train.labels,
            corpus.eval.as_flat(),
            corpus.eval.labels,
            batch_size=self.profile.batch_size,
        )

    @cached_property
    def cnn_problem(self) -> DLProblem:
        """Table III CNN on the (synthetic) MNIST corpus."""
        corpus = self._corpus
        return DLProblem(
            cnn_mnist(),
            corpus.train.as_images(),
            corpus.train.labels,
            corpus.eval.as_images(),
            corpus.eval.labels,
            batch_size=self.profile.cnn_batch_size,
        )

    def quadratic_problem(self, d: int = 256) -> QuadraticProblem:
        """Convex diagnostic problem (tests / examples)."""
        return QuadraticProblem(d, h=1.0, b=1.0, noise_sigma=0.1)

    def problem(self, kind: str) -> Problem:
        """Problem by kind: ``mlp`` / ``cnn`` / ``quadratic``."""
        check_in_choices("kind", kind, ("mlp", "cnn", "quadratic"))
        if kind == "mlp":
            return self.mlp_problem
        if kind == "cnn":
            return self.cnn_problem
        return self.quadratic_problem()

    def cost(self, kind: str) -> CostModel:
        """Paper-regime cost model for a workload kind (see
        :mod:`repro.sim.cost` for the T_c/T_u regime argument)."""
        check_in_choices("kind", kind, ("mlp", "cnn", "quadratic"))
        if kind == "mlp":
            return CostModel.mlp_default()
        if kind == "cnn":
            return CostModel.cnn_default()
        return CostModel(tc=10e-3, tu=1e-3, t_copy=0.7e-3)
