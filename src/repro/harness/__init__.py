"""Experiment harness: run configuration, fidelity profiles, repeated
seeded executions, result aggregation, and the S1-S5 experiment suite of
the paper's Table I."""

from repro.harness.config import (
    RunConfig,
    Profile,
    PROFILE_QUICK,
    PROFILE_PAPER,
    get_profile,
    Workloads,
)
from repro.harness.runner import RunResult, repeated_configs, run_once, run_repeated
from repro.harness.parallel import ParallelRunner, map_runs, resolve_workers
from repro.harness.pool import WorkerPool
from repro.harness.cache import RunCache, resolve_cache_dir
from repro.harness.grid import SweepGrid, summarize, archive
from repro.harness.results import (
    group_by,
    convergence_boxes,
    failure_counts,
    staleness_boxes,
    time_per_update_boxes,
)
from repro.harness.experiments import (
    ExperimentResult,
    s1_scalability,
    s1_stepsize,
    s2_high_precision,
    s3_cnn,
    s4_high_parallelism,
    s5_memory,
    TABLE_I,
)

__all__ = [
    "RunConfig",
    "Profile",
    "PROFILE_QUICK",
    "PROFILE_PAPER",
    "get_profile",
    "Workloads",
    "RunResult",
    "run_once",
    "run_repeated",
    "repeated_configs",
    "ParallelRunner",
    "map_runs",
    "resolve_workers",
    "WorkerPool",
    "RunCache",
    "resolve_cache_dir",
    "SweepGrid",
    "summarize",
    "archive",
    "group_by",
    "convergence_boxes",
    "failure_counts",
    "staleness_boxes",
    "time_per_update_boxes",
    "ExperimentResult",
    "s1_scalability",
    "s1_stepsize",
    "s2_high_precision",
    "s3_cnn",
    "s4_high_parallelism",
    "s5_memory",
    "TABLE_I",
]
