"""Aggregation of :class:`repro.harness.runner.RunResult` collections
into the statistics the paper's figures plot."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.convergence import RunStatus
from repro.harness.runner import RunResult


def group_by(
    results: Iterable[RunResult], key: Callable[[RunResult], object]
) -> dict[object, list[RunResult]]:
    """Group results by an arbitrary key (algorithm, m, eta, ...)."""
    groups: dict[object, list[RunResult]] = defaultdict(list)
    for r in results:
        groups[key(r)].append(r)
    return dict(groups)


def convergence_boxes(
    results: Iterable[RunResult],
    eps: float,
    *,
    key: Callable[[RunResult], str] = lambda r: r.config.algorithm,
) -> tuple[dict[str, list[float]], dict[str, tuple[int, int]]]:
    """Per-group eps-convergence times + (diverge, crash) tallies.

    Mirrors the paper's box plots: runs that failed to reach ``eps`` are
    excluded from the box and counted as Diverge / Crash instead.
    """
    groups = group_by(results, key)
    boxes: dict[str, list[float]] = {}
    failures: dict[str, tuple[int, int]] = {}
    for label, runs in groups.items():
        times = [r.time_to(eps) for r in runs if np.isfinite(r.time_to(eps))]
        n_crash = sum(1 for r in runs if r.status is RunStatus.CRASHED)
        n_div = sum(
            1
            for r in runs
            if r.status is not RunStatus.CRASHED and not np.isfinite(r.time_to(eps))
        )
        boxes[str(label)] = times
        failures[str(label)] = (n_div, n_crash)
    return boxes, failures


def statistical_efficiency_boxes(
    results: Iterable[RunResult],
    eps: float,
    *,
    key: Callable[[RunResult], str] = lambda r: r.config.algorithm,
) -> dict[str, list[float]]:
    """Per-group iterations-to-eps (paper Fig. 8 right)."""
    groups = group_by(results, key)
    return {
        str(label): [r.updates_to(eps) for r in runs if np.isfinite(r.updates_to(eps))]
        for label, runs in groups.items()
    }


def time_per_update_boxes(
    results: Iterable[RunResult],
    *,
    key: Callable[[RunResult], str] = lambda r: r.config.algorithm,
) -> dict[str, list[float]]:
    """Per-group computational efficiency (paper Fig. 3 right)."""
    groups = group_by(results, key)
    return {
        str(label): [r.time_per_update for r in runs if np.isfinite(r.time_per_update)]
        for label, runs in groups.items()
    }


def staleness_boxes(
    results: Iterable[RunResult],
    *,
    key: Callable[[RunResult], str] = lambda r: r.config.algorithm,
    stat: str = "mean",
) -> dict[str, list[float]]:
    """Per-group staleness statistics across runs (paper Fig. 6)."""
    groups = group_by(results, key)
    return {
        str(label): [r.staleness[stat] for r in runs if np.isfinite(r.staleness[stat])]
        for label, runs in groups.items()
    }


def failure_counts(results: Iterable[RunResult]) -> dict[str, tuple[int, int]]:
    """(did-not-converge, crashed) per algorithm label.

    The first slot pools DIVERGED (virtual-time budget, the paper's
    Diverge class) with STOPPED (harness iteration / wall-time caps):
    for the paper's box-plot bookkeeping both are "did not reach the
    target, did not crash".
    """
    groups = group_by(results, lambda r: r.config.algorithm)
    return {
        str(label): (
            sum(
                1
                for r in runs
                if r.status in (RunStatus.DIVERGED, RunStatus.STOPPED)
            ),
            sum(1 for r in runs if r.status is RunStatus.CRASHED),
        )
        for label, runs in groups.items()
    }


def failure_breakdown(results: Iterable[RunResult]) -> dict[str, dict[str, int]]:
    """Full outcome tally per algorithm label, with STOPPED (harness
    iteration / wall-time caps) split from DIVERGED (the paper's
    Diverge class) — the distinction :func:`failure_counts` pools away
    for box-plot bookkeeping. ``repro analyze`` and the result store's
    report print this one: a sweep that never converges because its
    budget is too small looks identical to one that diverges unless
    the two are shown separately.
    """
    order = (
        ("converged", RunStatus.CONVERGED),
        ("diverged", RunStatus.DIVERGED),
        ("stopped", RunStatus.STOPPED),
        ("crashed", RunStatus.CRASHED),
    )
    groups = group_by(results, lambda r: r.config.algorithm)
    return {
        str(label): {
            name: sum(1 for r in runs if r.status is status)
            for name, status in order
        }
        for label, runs in sorted(groups.items(), key=lambda kv: str(kv[0]))
    }


def median_progress_curve(
    runs: Sequence[RunResult], *, points: int = 40
) -> tuple[np.ndarray, np.ndarray]:
    """Median loss-vs-virtual-time curve across repeated runs, resampled
    on a common time grid (paper Fig. 5 / Fig. 7 middle).

    Runs that terminated very early (a crash within the first third of
    the group's longest run) would otherwise truncate the whole group's
    common grid to a few samples; they are excluded from the median the
    same way the paper's plots drop crashed executions.
    """
    runs = [r for r in runs if len(r.report.curve_t) >= 2]
    if not runs:
        return np.zeros(0), np.zeros(0)
    longest = max(max(r.report.curve_t) for r in runs)
    survivors = [r for r in runs if max(r.report.curve_t) >= 0.3 * longest]
    runs = survivors or runs
    t_end = min(max(r.report.curve_t) for r in runs)
    if t_end <= 0:
        return np.zeros(0), np.zeros(0)
    grid = np.linspace(0.0, t_end, points)
    stacked = []
    for r in runs:
        t = np.asarray(r.report.curve_t)
        loss = np.asarray(r.report.curve_loss)
        finite = np.isfinite(loss)
        if finite.sum() < 2:
            continue
        stacked.append(np.interp(grid, t[finite], loss[finite]))
    if not stacked:
        return np.zeros(0), np.zeros(0)
    return grid, np.median(np.vstack(stacked), axis=0)


def pooled_staleness(runs: Sequence[RunResult]) -> np.ndarray:
    """All staleness samples of a group of runs, pooled."""
    values = [r.staleness_values for r in runs if r.staleness_values.size]
    return np.concatenate(values) if values else np.zeros(0, dtype=int)
