"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still distinguishing sub-categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment / algorithm / model was configured inconsistently."""


class SchemaVersionError(ConfigurationError):
    """A serialized results row was written under a schema version this
    build cannot read (missing, or newer than the code understands)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid internal state."""


class DeadlockError(SimulationError):
    """No runnable simulated thread remains but work is outstanding."""


class MemoryAccountingError(SimulationError):
    """A simulated allocation / free violated the accounting invariants
    (double free, free of unknown block, negative live count)."""


class NumericalDivergence(ReproError):
    """Training produced non-finite parameters (the paper's 'Crash')."""


class ShapeError(ReproError):
    """An array had the wrong shape / dimensionality for an operation."""
