"""Incremental result ingestion and final summary of a service run.

The measurer is the service's result plane. As the dispatcher completes
cohort boxes it hands their :class:`RunResult`\\ s over one task at a
time, and the measurer appends them — as ordinary schema-v3 JSONL rows
— to a per-workload journal ``results-<workload_key>.jsonl`` in the run
directory (append + flush + fsync, so a crash after ``task_done`` never
loses the rows that justified it). On resume, replaying the journals
rebuilds bitwise-identical :class:`RunResult`\\ s via the same
:func:`~repro.harness.cache.result_from_row` path the run cache uses —
the journal *is* a cache keyed by run key instead of content address.

Journals are per-workload because the run key embeds the workload key
(:func:`~repro.service.scheduler.run_key`): replay needs only the
config hash of each row plus the file's own workload prefix, never a
re-fingerprint of the corpus.

:meth:`Measurer.finalize` writes the cross-call artifacts:

* ``merged.jsonl`` — every run row in global submission order (atomic
  tmp + rename), the file downstream analysis reads;
* a ``merged_fingerprint`` — sha256 over the per-row
  :func:`~repro.harness.cache.simulation_fingerprint`\\ s in order.
  Two service runs produced the same science iff these match (host
  fields excepted), which is what the resume-smoke CI gate compares.

Volatile mode (``run_dir=None``) keeps results purely in memory: same
interface, no files — the one-shot CLI path.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.harness.cache import result_from_row, simulation_fingerprint
from repro.observe.provenance import config_hash
from repro.telemetry.jsonl import result_to_line

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.runner import RunResult

__all__ = ["Measurer"]


class Measurer:
    """Accumulates completed runs, durably when given a run directory."""

    def __init__(self, run_dir: str | Path | None = None) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self._results: dict[str, "RunResult"] = {}
        self._journals: dict[str, object] = {}  # wkey -> open append handle
        self._loaded: set[str] = set()

    # -- journal replay ------------------------------------------------
    def _journal_path(self, wkey: str) -> Path:
        return self.run_dir / f"results-{wkey}.jsonl"

    def load_workload(self, wkey: str) -> int:
        """Replay this workload's journal (idempotent); returns how many
        archived runs it holds. Torn or corrupt lines are skipped with a
        warning — the affected runs simply re-execute (the dispatcher
        requeues any DONE task whose rows went missing)."""
        if self.run_dir is None or wkey in self._loaded:
            return sum(1 for key in self._results if key.startswith(f"{wkey}:"))
        self._loaded.add(wkey)
        path = self._journal_path(wkey)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0
        from repro.utils.serialization import _decode

        loaded = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                row = _decode(json.loads(line))
                result = result_from_row(row)
            except Exception as exc:
                warnings.warn(
                    f"measurer: skipping unreadable row {path}:{lineno} "
                    f"({exc}); the run will re-execute",
                    RuntimeWarning, stacklevel=2,
                )
                continue
            key = f"{wkey}:{config_hash(result.config)}"
            self._results.setdefault(key, result)
            loaded += 1
        return loaded

    # -- ingestion -----------------------------------------------------
    def has(self, run_key: str) -> bool:
        return run_key in self._results

    def get(self, run_key: str) -> "RunResult":
        return self._results[run_key]

    def ingest(
        self, wkey: str, items: Sequence[tuple[str, "RunResult"]]
    ) -> None:
        """Record one task's completed runs: ``(run_key, result)`` pairs
        in cohort order. Already-known keys are skipped (idempotent), so
        re-ingesting after a requeue never duplicates journal rows."""
        fresh = [(key, result) for key, result in items
                 if key not in self._results]
        for key, result in fresh:
            self._results[key] = result
        if self.run_dir is None or not fresh:
            return
        journal = self._journals.get(wkey)
        if journal is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            journal = self._journals[wkey] = open(
                self._journal_path(wkey), "a", encoding="utf-8"
            )
        for _, result in fresh:
            journal.write(result_to_line(result) + "\n")
        journal.flush()
        os.fsync(journal.fileno())

    # -- finalization --------------------------------------------------
    def merged_fingerprint(self, order: Sequence[str]) -> str:
        """sha256 over the ordered per-run simulation fingerprints: the
        identity of the *science* this service run produced."""
        h = hashlib.sha256()
        for key in order:
            h.update(simulation_fingerprint(self._results[key]).encode())
        return h.hexdigest()

    def write_merged(self, order: Sequence[str], path: str | Path) -> Path:
        """``merged.jsonl``: every run row in submission order, written
        atomically (tmp + rename) so a crash never leaves a partial
        merge next to a DONE queue."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            for key in order:
                fh.write(result_to_line(self._results[key]) + "\n")
        os.replace(tmp, path)
        return path

    def close(self) -> None:
        for journal in self._journals.values():
            journal.close()
        self._journals.clear()

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:  # pragma: no cover
        where = str(self.run_dir) if self.run_dir else "volatile"
        return f"Measurer({where}, {len(self._results)} runs)"
