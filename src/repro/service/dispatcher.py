"""The dispatcher: leases queued tasks onto the execution data plane.

One :meth:`Dispatcher.run` call drives one workload batch end to end:

1. **Recover** — requeue every lease left behind by a dead dispatcher
   (expired deadline or foreign owner; see
   :meth:`~repro.service.queue.TaskQueue.recover`) and replay the
   measurer's journal for this workload.
2. **Triage** — for each planned task, in order: a DONE task whose rows
   are all in the journal is *resumed* (nothing executes); a DONE task
   with missing rows, or a FAILED one, is requeued. What remains is
   leased, and each leased run is looked up first in the journal
   (a resumed run under a different cohort grouping) then in the
   content-addressed :class:`~repro.harness.cache.RunCache` — the
   tentpole contract that resumption and dedup share one identity.
   Tasks fully satisfied without simulating complete immediately.
3. **Execute** — the rest go onto the persistent
   :class:`~repro.harness.pool.WorkerPool` as super-cohort chunks
   (exactly :func:`~repro.harness.parallel.map_runs`'s shape), with the
   same serial covering pass when the pool declines or degrades.
   Completion of each task is atomic in the durable order that makes
   resume sound: cache-store, journal-append (fsync), *then*
   ``task_done`` — a crash between any two steps leaves the task
   re-runnable, never falsely complete.

Fault injection: when ``REPRO_SERVICE_KILL_AFTER=N`` is set, the
dispatcher hard-exits (``os._exit(17)``) immediately after the N-th
task it completes *in this process* — after the journal fsync, before
anything else. This is the crash/resume test hook (the resume-smoke CI
job and ``scripts/resume_smoke.py``): a real SIGKILL at the worst
survivable instant, deterministic on a serial host.

A simulation exception on the serial path marks its task FAILED (the
error is journalled) and propagates. On the pool path the failing chunk
cannot be attributed, so affected tasks stay LEASED and the next
dispatcher's recovery requeues them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.harness.parallel import _label
from repro.service.queue import TaskQueue, TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import Problem
    from repro.harness.cache import RunCache
    from repro.harness.pool import WorkerPool
    from repro.service.measurer import Measurer
    from repro.service.scheduler import PlannedTask
    from repro.sim.cost import CostModel

__all__ = ["Dispatcher", "ServiceStats", "KILL_AFTER_ENV", "KILL_EXIT_CODE"]

#: Fault-injection hook: complete N tasks this process, then os._exit.
KILL_AFTER_ENV = "REPRO_SERVICE_KILL_AFTER"

#: The injected crash's exit code (distinguishes it from real errors).
KILL_EXIT_CODE = 17

#: Leases outlive any sane cohort box; crashed dispatchers are detected
#: by owner mismatch long before this expires (the timeout only matters
#: for a dispatcher that hangs without dying).
DEFAULT_LEASE_TIMEOUT = 15 * 60.0


@dataclass
class ServiceStats:
    """Lifetime tallies of one dispatcher (task- and run-granular)."""

    tasks_executed: int = 0  # boxes that simulated (fully or partly)
    tasks_from_cache: int = 0  # boxes satisfied by the run cache alone
    tasks_from_journal: int = 0  # boxes resumed from a previous session
    tasks_requeued: int = 0  # stale leases / retries / missing rows
    runs_executed: int = 0
    runs_from_cache: int = 0
    runs_from_journal: int = 0

    @property
    def tasks_served(self) -> int:
        """Boxes satisfied without simulating anything."""
        return self.tasks_from_cache + self.tasks_from_journal

    @property
    def tasks_done(self) -> int:
        return self.tasks_executed + self.tasks_served

    def as_dict(self) -> dict:
        return {
            "tasks_executed": self.tasks_executed,
            "tasks_from_cache": self.tasks_from_cache,
            "tasks_from_journal": self.tasks_from_journal,
            "tasks_requeued": self.tasks_requeued,
            "runs_executed": self.runs_executed,
            "runs_from_cache": self.runs_from_cache,
            "runs_from_journal": self.runs_from_journal,
        }


class Dispatcher:
    """Leases tasks from a queue and completes them on the data plane."""

    def __init__(
        self,
        queue: TaskQueue,
        measurer: "Measurer",
        *,
        owner: str,
        pool: "WorkerPool | None" = None,
        cache: "RunCache | None" = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        kill_after: int | None = None,
    ) -> None:
        self.queue = queue
        self.measurer = measurer
        self.owner = owner
        self.pool = pool
        self.cache = cache
        self.lease_timeout = float(lease_timeout)
        if kill_after is None:
            env = os.environ.get(KILL_AFTER_ENV)
            kill_after = int(env) if env else 0
        self.kill_after = int(kill_after)
        self.stats = ServiceStats()
        self._session_completions = 0

    # -- completion plumbing -------------------------------------------
    def _progress(self, progress, done, total, task, note: str) -> None:
        if progress is not None:
            progress(done, total, _label(task.configs[-1]) + note)

    def _maybe_die(self) -> None:
        """The fault-injection crash point (see module docstring)."""
        self._session_completions += 1
        if self.kill_after and self._session_completions >= self.kill_after:
            os._exit(KILL_EXIT_CODE)

    def _mirror_cache_counters(self, *, served: bool) -> None:
        if self.cache is not None:
            if served:
                self.cache.stats.tasks_served += 1
            else:
                self.cache.stats.tasks_executed += 1

    def _complete(
        self, problem, cost, wkey: str, task: "PlannedTask",
        results: dict[int, object], executed: Sequence[int],
        cached: Sequence[int],
    ) -> str:
        """Durably finish one task: cache-store, journal, mark DONE.
        Returns the completion source for progress labelling."""
        if self.cache is not None:
            for i in executed:
                if self.cache.eligible(task.configs[i]):
                    self.cache.put(problem, cost, task.configs[i], results[i])
        self.measurer.ingest(
            wkey, [(task.run_keys[i], results[i]) for i in sorted(results)]
        )
        if executed:
            source = "executed"
            self.stats.tasks_executed += 1
        elif cached:
            source = "cache"
            self.stats.tasks_from_cache += 1
        else:
            source = "journal"
            self.stats.tasks_from_journal += 1
        self._mirror_cache_counters(served=not executed)
        self.queue.mark_done(task.task_id, source=source)
        return source

    # -- the loop ------------------------------------------------------
    def run(
        self,
        problem: "Problem",
        cost: "CostModel",
        wkey: str,
        planned: Sequence["PlannedTask"],
        *,
        progress: Callable[[int, int, str], None] | None = None,
    ) -> None:
        """Complete every planned task (results land in the measurer)."""
        from repro.harness.runner import run_cohort, run_once

        total = sum(len(task) for task in planned)
        done_runs = 0
        self.stats.tasks_requeued += len(self.queue.recover(self.owner))
        self.measurer.load_workload(wkey)

        # -- triage: resume DONE boxes, lease + look up the rest -------
        exec_plan: list[tuple] = []  # (task, missing, served, cached)
        for task in planned:
            queued = self.queue.get(task.task_id)
            if queued is None:  # pragma: no cover - scheduler enqueues first
                raise RuntimeError(f"task {task.task_id} was never enqueued")
            if queued.state is TaskState.DONE:
                if all(self.measurer.has(key) for key in task.run_keys):
                    self.stats.tasks_from_journal += 1
                    self.stats.runs_from_journal += len(task)
                    self._mirror_cache_counters(served=True)
                    done_runs += len(task)
                    self._progress(progress, done_runs, total, task, " [journal]")
                    continue
                # DONE in the queue but rows missing from the journal
                # (e.g. a corrupt line was skipped): never trust it.
                self.queue.requeue(task.task_id, reason="missing-results")
                self.stats.tasks_requeued += 1
            elif queued.state is TaskState.FAILED:
                self.queue.requeue(task.task_id, reason="retry-failed")
                self.stats.tasks_requeued += 1
            self.queue.lease(
                task.task_id, owner=self.owner, timeout=self.lease_timeout
            )
            served: dict[int, object] = {}
            cached: list[int] = []
            missing: list[int] = []
            for i, (key, config) in enumerate(zip(task.run_keys, task.configs)):
                if self.measurer.has(key):
                    served[i] = self.measurer.get(key)
                    self.stats.runs_from_journal += 1
                    continue
                if self.cache is not None:
                    if not self.cache.eligible(config):
                        self.cache.note_bypass("self_profile")
                    else:
                        hit = self.cache.get(problem, cost, config)
                        if hit is not None:
                            served[i] = hit
                            cached.append(i)
                            self.stats.runs_from_cache += 1
                            continue
                missing.append(i)
            if not missing:
                source = self._complete(
                    problem, cost, wkey, task, served, (), cached
                )
                done_runs += len(task)
                self._progress(progress, done_runs, total, task, f" [{source}]")
                self._maybe_die()
            else:
                exec_plan.append((task, missing, served, cached))
        if not exec_plan:
            return

        # -- execute: pool first, serial covering pass after -----------
        chunks = [
            [task.configs[i] for i in missing]
            for task, missing, _, _ in exec_plan
        ]
        delivered = [False] * len(chunks)

        def _finish(index: int, chunk_results: list) -> None:
            nonlocal done_runs
            task, missing, served, cached = exec_plan[index]
            delivered[index] = True
            results = dict(served)
            results.update(zip(missing, chunk_results))
            self.stats.runs_executed += len(missing)
            self._complete(problem, cost, wkey, task, results, missing, cached)
            done_runs += len(task)
            self._progress(progress, done_runs, total, task, "")
            self._maybe_die()

        if self.pool is not None and len(chunks) > 1:
            self.pool.run_chunks(
                problem, cost, chunks, cohort=True, on_done=_finish
            )
        for index, (task, missing, _, _) in enumerate(exec_plan):
            if delivered[index]:
                continue
            chunk_configs = [task.configs[i] for i in missing]
            try:
                if len(chunk_configs) > 1:
                    chunk_results = run_cohort(problem, cost, chunk_configs)
                else:
                    chunk_results = [run_once(problem, cost, chunk_configs[0])]
            except Exception as exc:
                self.queue.mark_failed(task.task_id, error=repr(exc))
                raise
            _finish(index, chunk_results)
