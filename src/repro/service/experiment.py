"""The experiment service facade: scheduler + queue + dispatcher +
measurer behind one ``map``-shaped call.

:class:`ExperimentService` is what the CLI and the experiment helpers
actually talk to. Its :meth:`~ExperimentService.map` has the exact
contract of :func:`repro.harness.parallel.map_runs` — results in
submission order, bitwise-identical to a serial loop modulo the host
fields — but every batch flows through the durable queue, so the same
code path serves three modes:

* **volatile** (``run_dir=None``) — in-memory queue and measurer, no
  files: the plain ``repro experiment s1`` behaviour;
* **durable** (``run_dir=...``) — every task transition and completed
  run is journalled; a killed sweep restarted on the same run directory
  re-executes only unfinished boxes;
* **resume** (durable + existing journals) — the same as durable: there
  is no separate resume code path, because task identity is
  content-addressed and enqueueing a known task is a no-op.

The run directory (durable mode) holds::

    LOCK                      single-dispatcher lock (pid + owner)
    manifest.json             step/profile/shape + provenance
    queue.jsonl               task-state journal (append-only)
    results-<wkey>.jsonl      completed run rows, per workload
    merged.jsonl              finalize(): all runs, submission order
    summary.json              finalize(): counts + merged_fingerprint
    service_timeline.json     finalize(): queue lifecycle Chrome trace

Safety order per task: cache-store -> journal fsync -> ``task_done``
fsync. A crash between any two steps leaves a task the next dispatcher
will re-lease; the identity contract makes the re-execution bitwise
equivalent, which is what the resume-smoke gate checks end to end.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigurationError
from repro.harness.parallel import resolve_replicas, resolve_workers
from repro.harness.pool import WorkerPool
from repro.observe.timeline import TimelineRecorder, export_chrome_trace
from repro.service.dispatcher import DEFAULT_LEASE_TIMEOUT, Dispatcher
from repro.service.measurer import Measurer
from repro.service.queue import TaskQueue, acquire_run_lock
from repro.service.scheduler import SweepScheduler, run_key, workload_key
from repro.telemetry.bus import ProbeBus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import Problem
    from repro.harness.cache import RunCache
    from repro.harness.runner import RunResult
    from repro.sim.cost import CostModel

__all__ = ["ExperimentService", "load_manifest"]

#: Manifest keys that must agree between the original invocation and a
#: resume — resuming ``s1`` as ``s5`` or under another profile would
#: enqueue a disjoint task set and merge unrelated science.
_MANIFEST_GUARDED = ("step", "profile")


def load_manifest(run_dir: str | Path) -> dict:
    """Read a run directory's manifest (what ``--resume`` restarts)."""
    path = Path(run_dir) / "manifest.json"
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(
            f"{run_dir} has no manifest.json — not a service run directory "
            "(start one with `repro experiment <step> --run-dir ...`)"
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path} is corrupt ({exc}); the run directory cannot be resumed"
        ) from exc


def _merge_timelines(old: dict, new: dict) -> dict:
    """Fold a prior finalize's exported trace into a fresh recording.

    Metadata events are deduplicated; everything else is concatenated
    and re-sorted per track — the viewers (and ``validate_chrome_trace``)
    require monotonic ``ts`` within a track, and the two recordings use
    each process's own host-relative clock.
    """
    old_other = old.get("otherData", {})
    meta: list[dict] = []
    seen: set[str] = set()
    rest: list[dict] = []
    for event in [*old.get("traceEvents", ()), *new.get("traceEvents", ())]:
        if event.get("ph") == "M":
            key = json.dumps(event, sort_keys=True)
            if key not in seen:
                seen.add(key)
                meta.append(event)
        else:
            rest.append(event)
    rest.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0), e.get("ts", 0.0)))
    return {
        "traceEvents": meta + rest,
        "displayTimeUnit": new.get("displayTimeUnit", "ms"),
        "n_events": int(old_other.get("n_events", 0)) + int(new.get("n_events", 0)),
        "truncated": bool(old_other.get("truncated", False))
        or bool(new.get("truncated", False)),
    }


class ExperimentService:
    """One experiment session over the queue/dispatcher/measurer split.

    Parameters mirror the harness layer: ``workers`` / ``replicas``
    resolve exactly as in :func:`~repro.harness.parallel.map_runs`
    (env fallbacks included); ``pool`` / ``cache`` are shared data-plane
    objects (the service creates its own pool when parallelism is
    requested and none is given, and closes only what it created).
    ``manifest`` (durable mode) records invocation facts; on an existing
    run directory its guarded keys must match what is already there.
    """

    def __init__(
        self,
        run_dir: str | Path | None = None,
        *,
        workers: int | None = None,
        replicas: int | None = None,
        pool: "WorkerPool | None" = None,
        cache: "RunCache | None" = None,
        bus: ProbeBus | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        manifest: dict | None = None,
    ) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.replicas = resolve_replicas(replicas)
        self.workers = resolve_workers(
            workers, cohort_replicas=self.replicas
        )
        self.owner = f"pid{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._lock = None
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._lock = acquire_run_lock(self.run_dir, self.owner)
            try:
                self._reconcile_manifest(manifest or {})
            except BaseException:
                # Never leave the lock behind on a failed construction —
                # a live-pid lock is a hard error for the next attempt.
                self._lock.unlink(missing_ok=True)
                raise

        self.bus = bus if bus is not None else ProbeBus()
        self.timeline = TimelineRecorder()
        self.bus.attach(self.timeline)
        self._t0 = time.monotonic()
        self.queue = TaskQueue(
            self.run_dir / "queue.jsonl" if self.run_dir is not None else None,
            bus=self.bus,
            clock=lambda: time.monotonic() - self._t0,
        )
        self.measurer = Measurer(self.run_dir)
        self.scheduler = SweepScheduler(self.replicas)
        self.cache = cache
        self._owned_pool = None
        if pool is None and self.workers > 1:
            pool = self._owned_pool = WorkerPool(self.workers)
        self.pool = pool
        self.dispatcher = Dispatcher(
            self.queue, self.measurer, owner=self.owner,
            pool=self.pool, cache=self.cache, lease_timeout=lease_timeout,
        )
        self._order: list[str] = []
        self._seen: set[str] = set()
        self._closed = False

    # -- manifest ------------------------------------------------------
    def _reconcile_manifest(self, manifest: dict) -> None:
        from repro.observe.provenance import bench_manifest

        path = self.run_dir / "manifest.json"
        if path.exists():
            existing = load_manifest(self.run_dir)
            for key in _MANIFEST_GUARDED:
                ours, theirs = manifest.get(key), existing.get(key)
                if ours is not None and theirs is not None and ours != theirs:
                    raise ConfigurationError(
                        f"run directory {self.run_dir} was created for "
                        f"{key}={theirs!r}; refusing to resume it as "
                        f"{key}={ours!r}"
                    )
            self.manifest = existing
            return
        self.manifest = {
            **manifest,
            "replicas": self.replicas,
            "workers": self.workers,
            "provenance": bench_manifest(),
        }
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.manifest, indent=1, sort_keys=True))
        os.replace(tmp, path)

    # -- the map contract ----------------------------------------------
    def map(
        self,
        problem: "Problem",
        cost: "CostModel",
        configs: Sequence,
        *,
        progress: Callable[[int, int, str], None] | None = None,
    ) -> list["RunResult"]:
        """Run every config through the service; results in submission
        order, identical to :func:`~repro.harness.parallel.map_runs`
        modulo the host fields."""
        configs = list(configs)
        if not configs:
            return []
        wkey = workload_key(problem, cost)
        planned = self.scheduler.expand(problem, cost, configs)
        self.scheduler.schedule(self.queue, planned)
        self.dispatcher.run(problem, cost, wkey, planned, progress=progress)
        keys = [run_key(wkey, config) for config in configs]
        for key in keys:
            if key not in self._seen:
                self._seen.add(key)
                self._order.append(key)
        return [self.measurer.get(key) for key in keys]

    # -- finalization --------------------------------------------------
    @property
    def stats(self):
        """The dispatcher's :class:`~repro.service.dispatcher.
        ServiceStats`."""
        return self.dispatcher.stats

    def summary(self) -> dict:
        """Counts + the merged fingerprint of everything mapped so far.

        ``run_keys`` (submission order) aligns ``merged.jsonl`` line
        *i* with its service-wide run identity — the result store's
        ingester reads them side by side, so rows keep their natural
        key without the store having to re-derive workload hashes.
        """
        payload = {
            "n_runs": len(self._order),
            "n_tasks": len(self.queue),
            "queue": self.queue.counts(),
            "service": self.stats.as_dict(),
            "run_keys": list(self._order),
            "merged_fingerprint": self.measurer.merged_fingerprint(self._order),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
        return payload

    def finalize(self) -> dict:
        """Write the cross-batch artifacts (durable mode) and return the
        summary. Call once, after the last :meth:`map`."""
        summary = self.summary()
        if self.run_dir is not None:
            self.measurer.write_merged(self._order, self.run_dir / "merged.jsonl")
            trace_path = self.run_dir / "service_timeline.json"
            payload = self.timeline.result()
            if trace_path.exists():
                # A resumed dispatcher only transitions the tasks it
                # actually touched — journal-served boxes make no queue
                # transitions at all — so this recording alone would
                # erase the original run's history.
                try:
                    payload = _merge_timelines(
                        json.loads(trace_path.read_text()), payload
                    )
                except (json.JSONDecodeError, OSError):
                    pass  # corrupt prior trace: the fresh recording stands
            export_chrome_trace(payload, trace_path)
            path = self.run_dir / "summary.json"
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(summary, indent=1, sort_keys=True))
            os.replace(tmp, path)
        return summary

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owned_pool is not None:
            self._owned_pool.close()
        self.queue.close()
        self.measurer.close()
        if self._lock is not None:
            try:
                self._lock.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        where = str(self.run_dir) if self.run_dir else "volatile"
        return (f"ExperimentService({where}, workers={self.workers}, "
                f"replicas={self.replicas})")
