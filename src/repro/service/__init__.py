"""The experiment service: durable, resumable sweep execution.

The dispatcher / scheduler / measurer split over a crash-safe task
queue — see :mod:`repro.service.experiment` for the facade the CLI and
the experiment helpers use, and ``docs/service.md`` for the queue
states, lease semantics and the resume contract.
"""

from repro.service.dispatcher import Dispatcher, ServiceStats
from repro.service.experiment import ExperimentService, load_manifest
from repro.service.measurer import Measurer
from repro.service.queue import Task, TaskQueue, TaskState, acquire_run_lock
from repro.service.scheduler import (
    PlannedTask,
    SweepScheduler,
    run_key,
    task_id_for,
    workload_key,
)

__all__ = [
    "Dispatcher",
    "ExperimentService",
    "Measurer",
    "PlannedTask",
    "ServiceStats",
    "SweepScheduler",
    "Task",
    "TaskQueue",
    "TaskState",
    "acquire_run_lock",
    "load_manifest",
    "run_key",
    "task_id_for",
    "workload_key",
]
