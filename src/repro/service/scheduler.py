"""Sweep expansion: configs -> content-addressed seed-cohort tasks.

The scheduler is the pure half of the service: it never runs anything.
Given a workload and a config list it derives, deterministically,

* a **run key** per config — ``<workload_key>:<config_hash>``. The
  PR-5 :func:`~repro.observe.provenance.config_hash` alone is not a run
  identity: S5 sweeps the *same* RunConfigs against both the MLP and
  the CNN, so the workload must be part of the address. The workload
  key hashes the problem's structural fingerprint (every corpus byte)
  plus the cost model, i.e. the same material as the run cache's
  :func:`~repro.harness.cache.cache_key` — resumption and cache dedup
  share one identity, per the tentpole contract.
* a **task id** per cohort box — the hash of the box's ordered run
  keys. Boxes come from the same :func:`~repro.harness.parallel.
  plan_cohorts` the data plane batches with, so one task is exactly one
  super-cohort chunk, and re-expanding an identical sweep spec after a
  crash reproduces identical task ids (the property resume rests on).

:meth:`SweepScheduler.schedule` folds the expansion into a
:class:`~repro.service.queue.TaskQueue`: unknown tasks are enqueued,
known ones are left untouched (their DONE state *is* the checkpoint).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.harness.cache import problem_fingerprint
from repro.harness.parallel import plan_cohorts, resolve_replicas
from repro.observe.provenance import config_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import Problem
    from repro.harness.config import RunConfig
    from repro.service.queue import TaskQueue
    from repro.sim.cost import CostModel

__all__ = [
    "PlannedTask",
    "SweepScheduler",
    "run_key",
    "task_id_for",
    "workload_key",
]


def workload_key(problem: "Problem", cost: "CostModel") -> str:
    """Content address of a (problem, cost) pair, 16 hex chars.

    Memoized through :func:`problem_fingerprint`, so sweeping thousands
    of configs against one corpus hashes it once."""
    material = f"problem={problem_fingerprint(problem)}|cost={cost!r}"
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def run_key(wkey: str, config: "RunConfig") -> str:
    """The service-wide identity of one run: workload + config hash."""
    return f"{wkey}:{config_hash(config)}"


def task_id_for(run_keys: Sequence[str]) -> str:
    """The task id of one cohort box: hash of its ordered run keys."""
    digest = hashlib.sha256("|".join(run_keys).encode()).hexdigest()[:16]
    return f"t-{digest}"


@dataclass(frozen=True)
class PlannedTask:
    """One cohort box of an expanded sweep, pre-queue.

    ``indices`` point back into the submitted config list (submission
    order is the result order the caller gets); ``configs`` are the
    corresponding RunConfigs in the same order as ``run_keys``.
    """

    task_id: str
    run_keys: tuple[str, ...]
    indices: tuple[int, ...]
    configs: tuple

    def __len__(self) -> int:
        return len(self.run_keys)


class SweepScheduler:
    """Expands config batches into planned tasks and enqueues them.

    ``replicas`` bounds the cohort size exactly as in
    :func:`~repro.harness.parallel.map_runs` (None consults
    ``REPRO_REPLICAS``); with 1, every box is a singleton task.
    """

    def __init__(self, replicas: int | None = None) -> None:
        self.replicas = resolve_replicas(replicas)

    def expand(
        self,
        problem: "Problem",
        cost: "CostModel",
        configs: Sequence["RunConfig"],
    ) -> list[PlannedTask]:
        """The deterministic task plan of one config batch.

        Duplicate configs (same run key appearing twice in one batch)
        collapse onto their first occurrence's task — the dispatcher
        executes once, the service scatters to every submission index.
        """
        wkey = workload_key(problem, cost)
        keys = [run_key(wkey, config) for config in configs]
        first: dict[str, int] = {}
        unique_indices = []
        for i, key in enumerate(keys):
            if key not in first:
                first[key] = i
                unique_indices.append(i)
        unique_configs = [configs[i] for i in unique_indices]
        planned = []
        for chunk in plan_cohorts(unique_configs, self.replicas):
            indices = tuple(unique_indices[j] for j in chunk)
            chunk_keys = tuple(keys[i] for i in indices)
            planned.append(PlannedTask(
                task_id=task_id_for(chunk_keys),
                run_keys=chunk_keys,
                indices=indices,
                configs=tuple(configs[i] for i in indices),
            ))
        return planned

    def schedule(self, queue: "TaskQueue", planned: Sequence[PlannedTask]) -> int:
        """Enqueue every not-yet-known task; returns how many were new."""
        new = 0
        for task in planned:
            if queue.enqueue(task.task_id, task.run_keys):
                new += 1
        return new
