r"""Durable task queue: the experiment service's crash-safe work ledger.

One :class:`Task` is one seed-cohort box of a sweep — the unit the
dispatcher leases onto the worker pool (a ``plan_cohorts`` chunk: up to
``replicas`` same-shape configs). Its identity is content-addressed:
``task_id`` hashes the ordered run keys it covers (see
:mod:`repro.service.scheduler`), so re-expanding the same sweep spec
after a crash regenerates the *same* task ids and the queue can tell
finished work from pending work without trusting wall clocks or
counters.

State machine::

    PENDING --lease--> LEASED --done--> DONE
       ^                  |  \--fail--> FAILED --requeue--> PENDING
       \--requeue---------/

Durability is an **append-only JSONL journal** (``queue.jsonl`` in the
run directory): every transition appends one self-contained line
``{"op": ..., "task": ..., ...}`` and flushes. Replay folds the lines
in order; a torn final line (the crash happened mid-write) is dropped
with a warning — the transition it described simply re-happens. There
is no in-place mutation anywhere, so the journal can never be
half-updated: the worst case after ``kill -9`` is one lost *line*,
never a corrupt *state*.

Lease semantics: a lease carries an absolute wall-clock deadline
(``time.time() + lease_timeout``). Leases are how crashes surface —
a dispatcher that died holding leases leaves them behind, and the next
dispatcher's :meth:`TaskQueue.recover` requeues every lease that is
expired *or* owned by a different dispatcher id (an orphan: its owner
cannot come back, because owner ids are per-process-instance). The
sibling ``LOCK`` file (:func:`acquire_run_lock`) serialises dispatchers
per run directory, so "different owner" always means "dead owner".

Volatile mode (``path=None``) keeps the same state machine purely in
memory — the CLI uses it when no ``--run-dir`` is given, so the
one-shot path and the durable path exercise identical logic.

When a :class:`~repro.telemetry.bus.ProbeBus` is supplied, every
transition emits its lifecycle event (``task_enqueued`` /
``task_leased`` / ``task_done`` / ``task_requeued``) stamped with the
service-relative host clock — the timeline recorder renders them as a
dispatcher track next to the simulation tracks.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.bus import ProbeBus

__all__ = [
    "Task",
    "TaskState",
    "TaskQueue",
    "acquire_run_lock",
]


class TaskState(str, Enum):
    """Where one task sits in the queue's state machine."""

    PENDING = "PENDING"
    LEASED = "LEASED"
    DONE = "DONE"
    FAILED = "FAILED"


@dataclass(frozen=True)
class Task:
    """One queued seed-cohort box.

    ``run_keys`` are the content addresses of the runs the box covers,
    in cohort order; ``task_id`` is derived from them (see
    :func:`repro.service.scheduler.task_id_for`), so the tuple *is* the
    identity. ``attempts`` counts leases taken; ``source`` records how a
    DONE task was satisfied (``"executed"`` / ``"cache"`` /
    ``"journal"``); ``error`` holds the repr of the exception that moved
    it to FAILED.
    """

    task_id: str
    run_keys: tuple[str, ...]
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    lease_deadline: float = 0.0
    owner: str | None = None
    source: str | None = None
    error: str | None = None


def acquire_run_lock(run_dir: str | Path, owner: str) -> Path:
    """Take the single-dispatcher lock of a run directory.

    Writes ``LOCK`` (pid + owner id) with ``O_EXCL``; an existing lock
    is stolen only when its pid is provably dead (``os.kill(pid, 0)``
    raising). Two live dispatchers on one run directory would race the
    journal, so this is a hard error, not a wait.
    """
    run_dir = Path(run_dir)
    lock = run_dir / "LOCK"
    payload = json.dumps({"pid": os.getpid(), "owner": owner})
    while True:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                holder = json.loads(lock.read_text())
                pid = int(holder["pid"])
            except (OSError, ValueError, KeyError):
                # Torn lock file: the writer died mid-write. Stale.
                pid = -1
            alive = False
            if pid > 0:
                try:
                    os.kill(pid, 0)
                    alive = True
                except OSError:
                    alive = False
            if alive:
                raise ConfigurationError(
                    f"run directory {run_dir} is locked by live pid {pid}; "
                    "a second dispatcher on one run dir would corrupt the "
                    "queue journal (remove LOCK only if that pid is not a "
                    "repro dispatcher)"
                )
            try:
                lock.unlink()
            except FileNotFoundError:  # pragma: no cover - lost the race
                pass
            continue
        with os.fdopen(fd, "w") as fh:
            fh.write(payload)
        return lock


class TaskQueue:
    """The durable (or volatile) task ledger.

    Parameters
    ----------
    path:
        The ``queue.jsonl`` journal path, or ``None`` for a volatile
        in-memory queue (same transitions, no disk).
    bus:
        Optional :class:`~repro.telemetry.bus.ProbeBus` receiving the
        ``task_*`` lifecycle events.
    clock:
        The host-relative clock stamped onto bus events (the service
        passes "seconds since service start"); defaults to
        ``time.monotonic``. Lease *deadlines* always use wall
        ``time.time()`` — they must be meaningful to a later process.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        bus: "ProbeBus | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.bus = bus
        self.clock = clock
        self._tasks: dict[str, Task] = {}
        self._order: list[str] = []
        self._journal = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._replay()
            self._journal = open(self.path, "a", encoding="utf-8")

    # -- journal -------------------------------------------------------
    def _replay(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                self._apply(record)
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                if i == len(lines) - 1:
                    # Torn final line: the crash happened mid-append.
                    # The transition is lost, not the state — it will
                    # simply re-happen (lease again, re-run the box).
                    warnings.warn(
                        f"task queue: dropping torn final journal line ({exc})",
                        RuntimeWarning, stacklevel=3,
                    )
                    continue
                raise ConfigurationError(
                    f"task queue journal {self.path} is corrupt at line "
                    f"{i + 1}: {exc}"
                ) from exc

    def _apply(self, record: dict) -> None:
        op = record["op"]
        task_id = record["task"]
        if op == "enqueue":
            self._tasks[task_id] = Task(
                task_id=task_id, run_keys=tuple(record["run_keys"])
            )
            self._order.append(task_id)
            return
        task = self._tasks[task_id]
        if op == "lease":
            self._tasks[task_id] = replace(
                task, state=TaskState.LEASED, attempts=task.attempts + 1,
                lease_deadline=float(record["deadline"]), owner=record["owner"],
            )
        elif op == "done":
            self._tasks[task_id] = replace(
                task, state=TaskState.DONE, source=record.get("source"),
                owner=None, lease_deadline=0.0,
            )
        elif op == "fail":
            self._tasks[task_id] = replace(
                task, state=TaskState.FAILED, error=record.get("error"),
                owner=None, lease_deadline=0.0,
            )
        elif op == "requeue":
            self._tasks[task_id] = replace(
                task, state=TaskState.PENDING, owner=None, lease_deadline=0.0,
            )
        else:
            raise ValueError(f"unknown journal op {op!r}")

    def _append(self, record: dict) -> None:
        self._apply(record)
        if self._journal is not None:
            self._journal.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._journal.flush()
            os.fsync(self._journal.fileno())

    # -- transitions ---------------------------------------------------
    def enqueue(self, task_id: str, run_keys: tuple[str, ...]) -> bool:
        """Add a task; False (a no-op) when the id is already known —
        that is exactly resumption: re-expanding a sweep re-derives the
        same ids and the finished ones keep their DONE state."""
        if task_id in self._tasks:
            return False
        self._append({"op": "enqueue", "task": task_id, "run_keys": list(run_keys)})
        if self.bus is not None:
            self.bus.task_enqueued(self.clock(), task_id, len(run_keys))
        return True

    def lease(self, task_id: str, *, owner: str, timeout: float) -> Task:
        """Move a PENDING task to LEASED with a wall-clock deadline."""
        task = self._tasks[task_id]
        if task.state is not TaskState.PENDING:
            raise ConfigurationError(
                f"cannot lease task {task_id} in state {task.state.value}"
            )
        self._append({
            "op": "lease", "task": task_id, "owner": owner,
            "deadline": time.time() + timeout,
        })
        task = self._tasks[task_id]
        if self.bus is not None:
            self.bus.task_leased(self.clock(), task_id, task.attempts)
        return task

    def mark_done(self, task_id: str, *, source: str) -> None:
        """LEASED -> DONE, recording how the box was satisfied."""
        task = self._tasks[task_id]
        if task.state is not TaskState.LEASED:
            raise ConfigurationError(
                f"cannot complete task {task_id} in state {task.state.value}"
            )
        self._append({"op": "done", "task": task_id, "source": source})
        if self.bus is not None:
            self.bus.task_done(self.clock(), task_id, len(task.run_keys), source)

    def mark_failed(self, task_id: str, *, error: str) -> None:
        """LEASED -> FAILED (the simulation raised; the error is kept)."""
        task = self._tasks[task_id]
        if task.state is not TaskState.LEASED:
            raise ConfigurationError(
                f"cannot fail task {task_id} in state {task.state.value}"
            )
        self._append({"op": "fail", "task": task_id, "error": error})

    def requeue(self, task_id: str, *, reason: str) -> None:
        """LEASED/FAILED/DONE -> PENDING (expired lease, retry, or a DONE
        task whose results went missing)."""
        task = self._tasks[task_id]
        if task.state is TaskState.PENDING:
            return
        self._append({"op": "requeue", "task": task_id, "reason": reason})
        if self.bus is not None:
            self.bus.task_requeued(self.clock(), task_id, reason)

    def recover(self, owner: str, now: float | None = None) -> list[str]:
        """Requeue every lease this dispatcher must not trust: expired
        deadlines, and leases held by *other* owners (orphans of a dead
        dispatcher — the run-dir lock guarantees no live one exists).
        Returns the requeued task ids."""
        now = time.time() if now is None else now
        recovered = []
        for task_id in self._order:
            task = self._tasks[task_id]
            if task.state is not TaskState.LEASED:
                continue
            if task.owner != owner:
                self.requeue(task_id, reason="orphaned")
                recovered.append(task_id)
            elif task.lease_deadline <= now:
                self.requeue(task_id, reason="lease-expired")
                recovered.append(task_id)
        return recovered

    # -- inspection ----------------------------------------------------
    def get(self, task_id: str) -> Task | None:
        return self._tasks.get(task_id)

    def tasks(self) -> Iterator[Task]:
        """All tasks in enqueue order."""
        for task_id in self._order:
            yield self._tasks[task_id]

    def counts(self) -> dict[str, int]:
        """Task tally by state name (every state always present)."""
        tally = {state.value: 0 for state in TaskState}
        for task in self._tasks.values():
            tally[task.state.value] += 1
        return tally

    def __len__(self) -> int:
        return len(self._tasks)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __repr__(self) -> str:  # pragma: no cover
        where = str(self.path) if self.path else "volatile"
        return f"TaskQueue({where}, {self.counts()})"
