"""Inverted dropout layer.

The paper lists dropout among the hyper-parameters that "play a
significant role" in DL training (Section I); this layer makes it
available to the workloads. Standard inverted scaling: at train time
units are zeroed with probability ``rate`` and survivors scaled by
``1/(1-rate)``, so inference needs no rescaling; call
:meth:`Dropout.eval_mode` (or construct the evaluation pass with
``training=False`` semantics) to disable masking for monitoring.

Determinism: the mask stream comes from a generator fixed at
construction, so a run remains replayable from its seed.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class Dropout(Layer):
    """Inverted dropout with per-construction RNG stream."""

    kind = "dropout"

    def __init__(self, rate: float, *, rng: np.random.Generator | None = None) -> None:
        if not (0.0 <= rate < 1.0):
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate!r}")
        self.rate = float(rate)
        self._rng = rng or np.random.default_rng(0)
        self.training = True

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def train_mode(self) -> None:
        """Enable masking (default)."""
        self.training = True

    def eval_mode(self) -> None:
        """Disable masking (identity pass-through for evaluation)."""
        self.training = False

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        if not self.training or self.rate == 0.0:
            return x, None
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * mask, mask

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        if cache is None:
            return grad_out
        return grad_out * cache

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(rate={self.rate})"
