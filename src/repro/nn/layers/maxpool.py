"""Max-pooling layer (the CNN architecture's MaxPool of Table III)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class MaxPool2D(Layer):
    """Non-overlapping max pooling: ``(N, C, H, W) -> (N, C, H//p, W//p)``.

    Trailing rows/columns that do not fill a complete window are cropped
    (floor semantics), matching the paper's CNN where the 11x11 map pools
    to 5x5.
    """

    kind = "maxpool2d"

    def __init__(self, pool: tuple[int, int] | int = 2) -> None:
        if isinstance(pool, int):
            pool = (pool, pool)
        if len(pool) != 2 or any(p <= 0 for p in pool):
            raise ShapeError(f"pool must be two positive ints, got {pool!r}")
        self.pool = (int(pool[0]), int(pool[1]))
        self._in_shape: tuple[int, int, int] | None = None

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"MaxPool2D expects (C, H, W) per-sample input, got {input_shape}")
        c, h, w = map(int, input_shape)
        ph, pw = self.pool
        if h < ph or w < pw:
            raise ShapeError(f"input {h}x{w} smaller than pool window {ph}x{pw}")
        self._in_shape = (c, h, w)
        return (c, h // ph, w // pw)

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def make_workspace(
        self,
        batch: int,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> dict[str, np.ndarray]:
        c, h, w = in_shape
        ph, pw = self.pool
        oh, ow = h // ph, w // pw
        return {
            "tiles": np.empty((batch, c, oh, ow, ph * pw), dtype=dtype),
            "idx": np.empty((batch, c, oh, ow), dtype=np.intp),
            "gtiles": np.empty((batch, c, oh, ow, ph * pw), dtype=dtype),
            "gx": np.empty((batch, c, h, w), dtype=dtype),
        }

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        n, c, h, w = x.shape
        ph, pw = self.pool
        oh, ow = h // ph, w // pw
        cropped = x[:, :, : oh * ph, : ow * pw]
        # Group each window's elements on the last axis, then reduce.
        windows = cropped.reshape(n, c, oh, ph, ow, pw).transpose(0, 1, 2, 4, 3, 5)
        if ws is None:
            tiles = windows.reshape(n, c, oh, ow, ph * pw)
            idx = tiles.argmax(axis=-1)
        else:
            tiles, idx = ws["tiles"], ws["idx"]
            np.copyto(tiles.reshape(windows.shape), windows)
            np.argmax(tiles, axis=-1, out=idx)
        # take_along_axis (not np.max) so the selected element matches idx
        # exactly even on -0.0 / +0.0 ties — identical on both paths.
        out = np.take_along_axis(tiles, idx[..., None], axis=-1)[..., 0]
        return out, (idx, x.shape)

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        idx, x_shape = cache
        n, c, h, w = x_shape
        ph, pw = self.pool
        oh, ow = h // ph, w // pw
        if ws is None:
            gtiles = np.zeros((n, c, oh, ow, ph * pw), dtype=grad_out.dtype)
            gx = np.zeros(x_shape, dtype=grad_out.dtype)
        else:
            gtiles, gx = ws["gtiles"], ws["gx"]
            gtiles.fill(0)
            gx.fill(0)
        np.put_along_axis(gtiles, idx[..., None], grad_out[..., None], axis=-1)
        # Destination reshape splits axes of a contiguous slice (a view),
        # so the un-tiling writes straight into gx on both paths.
        np.copyto(
            gx[:, :, : oh * ph, : ow * pw].reshape(n, c, oh, ph, ow, pw),
            gtiles.reshape(n, c, oh, ow, ph, pw).transpose(0, 1, 2, 4, 3, 5),
        )
        return gx

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2D(pool={self.pool})"
