"""Flatten spatial feature maps to a per-sample vector."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """``(N, *dims) -> (N, prod(dims))`` (a reshape; zero-copy when
    the input is contiguous)."""

    kind = "flatten"

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        self._input_shape = tuple(input_shape)
        return (int(np.prod(input_shape)),)

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        return x.reshape(x.shape[0], -1), x.shape

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        return grad_out.reshape(cache)
