"""Parameter-free activation layers."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.loss import softmax


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)`` elementwise."""

    kind = "relu"

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def make_workspace(
        self,
        batch: int,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> dict[str, np.ndarray]:
        full = (batch, *in_shape)
        return {
            "mask": np.empty(full, dtype=bool),
            "out": np.empty(full, dtype=dtype),
        }

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        if ws is None:
            mask = x > 0
            return x * mask, mask
        mask = ws["mask"]
        np.greater(x, 0, out=mask)
        np.multiply(x, mask, out=ws["out"])
        return ws["out"], mask

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        if ws is None:
            return grad_out * cache
        # grad_out is a gradient conduit (a workspace buffer), never a
        # cached activation — consuming it in place is safe.
        np.multiply(grad_out, cache, out=grad_out)
        return grad_out


class Softmax(Layer):
    """Softmax over the last axis.

    Provided for inference-time probability output; during training the
    network fuses softmax with cross-entropy
    (:func:`repro.nn.loss.softmax_cross_entropy`) for numerical
    stability, so this layer should not be part of the trained stack.
    """

    kind = "softmax"

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        p = softmax(x)
        return p, p

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        p = cache
        inner = np.sum(grad_out * p, axis=-1, keepdims=True)
        return p * (grad_out - inner)
