"""Parameter-free activation layers."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.loss import softmax


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)`` elementwise."""

    kind = "relu"

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def forward(self, x: np.ndarray, params: Sequence[np.ndarray]) -> tuple[np.ndarray, Any]:
        mask = x > 0
        return x * mask, mask

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> np.ndarray:
        return grad_out * cache


class Softmax(Layer):
    """Softmax over the last axis.

    Provided for inference-time probability output; during training the
    network fuses softmax with cross-entropy
    (:func:`repro.nn.loss.softmax_cross_entropy`) for numerical
    stability, so this layer should not be part of the trained stack.
    """

    kind = "softmax"

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        return []

    def forward(self, x: np.ndarray, params: Sequence[np.ndarray]) -> tuple[np.ndarray, Any]:
        p = softmax(x)
        return p, p

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> np.ndarray:
        p = cache
        inner = np.sum(grad_out * p, axis=-1, keepdims=True)
        return p * (grad_out - inner)
