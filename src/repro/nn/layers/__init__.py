"""Neural-network layers operating on externally supplied flat weights."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Softmax
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.maxpool import MaxPool2D
from repro.nn.layers.dropout import Dropout

__all__ = ["Layer", "Dense", "ReLU", "Softmax", "Flatten", "Conv2D", "MaxPool2D", "Dropout"]
