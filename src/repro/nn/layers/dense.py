"""Densely connected (fully connected) layer."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class Dense(Layer):
    """``y = x @ W + b`` with ``W`` of shape ``(in, units)``.

    Expects 1-D per-sample input (use :class:`repro.nn.layers.Flatten`
    after spatial layers).
    """

    kind = "dense"

    def __init__(self, units: int) -> None:
        if units <= 0:
            raise ShapeError(f"units must be > 0, got {units}")
        self.units = int(units)
        self._in_features: int | None = None

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat per-sample input, got shape {input_shape}; "
                "insert a Flatten layer first"
            )
        self._in_features = int(input_shape[0])
        return (self.units,)

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        if self._in_features is None:
            raise ShapeError("Dense.param_shapes accessed before build()")
        return [("W", (self._in_features, self.units)), ("b", (self.units,))]

    def make_workspace(
        self,
        batch: int,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> dict[str, np.ndarray]:
        return {
            "out": np.empty((batch, self.units), dtype=dtype),
            "gin": np.empty((batch, self._in_features), dtype=dtype),
        }

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        W, b = params
        if ws is None:
            return x @ W + b, x
        out = ws["out"]
        np.matmul(x, W, out=out)
        out += b
        return out, x

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        x = cache
        W, _ = params
        gW, gb = grads
        # Write into the flat-gradient views in place (no temporaries kept).
        np.matmul(x.T, grad_out, out=gW)
        grad_out.sum(axis=0, out=gb)
        if ws is None:
            return grad_out @ W.T
        np.matmul(grad_out, W.T, out=ws["gin"])
        return ws["gin"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense(units={self.units})"
