"""Densely connected (fully connected) layer."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class Dense(Layer):
    """``y = x @ W + b`` with ``W`` of shape ``(in, units)``.

    Expects 1-D per-sample input (use :class:`repro.nn.layers.Flatten`
    after spatial layers).
    """

    kind = "dense"

    def __init__(self, units: int) -> None:
        if units <= 0:
            raise ShapeError(f"units must be > 0, got {units}")
        self.units = int(units)
        self._in_features: int | None = None

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat per-sample input, got shape {input_shape}; "
                "insert a Flatten layer first"
            )
        self._in_features = int(input_shape[0])
        return (self.units,)

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        if self._in_features is None:
            raise ShapeError("Dense.param_shapes accessed before build()")
        return [("W", (self._in_features, self.units)), ("b", (self.units,))]

    def forward(self, x: np.ndarray, params: Sequence[np.ndarray]) -> tuple[np.ndarray, Any]:
        W, b = params
        return x @ W + b, x

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> np.ndarray:
        x = cache
        W, _ = params
        gW, gb = grads
        # Write into the flat-gradient views in place (no temporaries kept).
        np.matmul(x.T, grad_out, out=gW)
        np.sum(grad_out, axis=0, out=gb)
        return grad_out @ W.T

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense(units={self.units})"
