"""Layer interface.

Layers are *stateless* with respect to weights: ``forward`` receives the
layer's parameter views (slices of the shared flat theta) and
``backward`` writes parameter gradients into caller-provided flat-view
buffers. The only state a layer carries is its architecture (sizes),
fixed at construction.

Both passes accept an optional ``ws`` dictionary of preallocated scratch
buffers (built once per worker by :meth:`make_workspace` and threaded
through :class:`repro.nn.workspace.StepWorkspace`). With ``ws`` the
layer writes into those buffers via ``out=`` variants of the same
operations — bitwise-identical results, zero per-call allocations;
without it the layer allocates as before.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np


class Layer(abc.ABC):
    """Abstract base class for all layers."""

    #: Human-readable layer kind (set by subclasses).
    kind: str = "layer"

    @abc.abstractmethod
    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Resolve shapes given the per-sample ``input_shape`` (no batch
        axis). Returns the per-sample output shape. Called exactly once
        by :class:`repro.nn.network.Network`."""

    @property
    @abc.abstractmethod
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        """Named shapes of this layer's parameter tensors, in order.
        Empty for parameter-free layers. Valid only after :meth:`build`."""

    def make_workspace(
        self,
        batch: int,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> dict[str, np.ndarray] | None:
        """Preallocated scratch buffers for a fixed ``batch`` size.

        Returns a dict handed back verbatim as the ``ws`` argument of
        :meth:`forward` / :meth:`backward`, or ``None`` when the layer
        needs no scratch (the default). The buffers are uninitialized;
        the layer must fully overwrite whatever it later reads.
        """
        return None

    @abc.abstractmethod
    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        """Compute outputs for batch ``x``.

        Returns ``(output, cache)`` where ``cache`` carries whatever the
        backward pass needs. With ``ws``, ``output`` and ``cache`` may
        reference workspace buffers — valid until the next forward call
        with the same workspace.
        """

    @abc.abstractmethod
    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        """Back-propagate ``grad_out``.

        Writes this layer's parameter gradients into ``grads`` (views of
        the flat gradient buffer, same order as :attr:`param_shapes`)
        and returns the gradient with respect to the layer input. With
        ``ws``, the returned gradient may live in a workspace buffer and
        ``grad_out`` may be consumed in place (it is always a gradient
        conduit, never a cached activation).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"{type(self).__name__}()"
