"""Layer interface.

Layers are *stateless* with respect to weights: ``forward`` receives the
layer's parameter views (slices of the shared flat theta) and
``backward`` writes parameter gradients into caller-provided flat-view
buffers. The only state a layer carries is its architecture (sizes),
fixed at construction.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np


class Layer(abc.ABC):
    """Abstract base class for all layers."""

    #: Human-readable layer kind (set by subclasses).
    kind: str = "layer"

    @abc.abstractmethod
    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Resolve shapes given the per-sample ``input_shape`` (no batch
        axis). Returns the per-sample output shape. Called exactly once
        by :class:`repro.nn.network.Network`."""

    @property
    @abc.abstractmethod
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        """Named shapes of this layer's parameter tensors, in order.
        Empty for parameter-free layers. Valid only after :meth:`build`."""

    @abc.abstractmethod
    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, Any]:
        """Compute outputs for batch ``x``.

        Returns ``(output, cache)`` where ``cache`` carries whatever the
        backward pass needs.
        """

    @abc.abstractmethod
    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Back-propagate ``grad_out``.

        Writes this layer's parameter gradients into ``grads`` (views of
        the flat gradient buffer, same order as :attr:`param_shapes`)
        and returns the gradient with respect to the layer input.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"{type(self).__name__}()"
