"""2-D convolution layer ('valid' padding, stride 1), vectorized via
im2col + one large matmul, following the HPC guidance of preferring a
few big BLAS calls over many small ones."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


def im2col(x: np.ndarray, kh: int, kw: int) -> tuple[np.ndarray, int, int]:
    """Rearrange ``(N, C, H, W)`` into ``(N, OH*OW, C*kh*kw)`` patches.

    Uses :func:`numpy.lib.stride_tricks.sliding_window_view` for the
    windowing (zero-copy) and one reshape (the single unavoidable copy).
    Returns ``(patches, OH, OW)``.
    """
    n = x.shape[0]
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, OH, OW, kh, kw) -> (N, OH, OW, C, kh, kw) -> flat patches
    patches = windows.transpose(0, 2, 3, 1, 4, 5)
    oh, ow = patches.shape[1], patches.shape[2]
    return patches.reshape(n, oh * ow, -1), oh, ow


class Conv2D(Layer):
    """Multi-channel 2-D convolution: ``(N, C, H, W) -> (N, F, OH, OW)``
    with ``OH = H - kh + 1`` and ``OW = W - kw + 1``."""

    kind = "conv2d"

    def __init__(self, filters: int, kernel: tuple[int, int] | int) -> None:
        if filters <= 0:
            raise ShapeError(f"filters must be > 0, got {filters}")
        if isinstance(kernel, int):
            kernel = (kernel, kernel)
        if len(kernel) != 2 or any(k <= 0 for k in kernel):
            raise ShapeError(f"kernel must be two positive ints, got {kernel!r}")
        self.filters = int(filters)
        self.kernel = (int(kernel[0]), int(kernel[1]))
        self._in_shape: tuple[int, int, int] | None = None
        self._out_shape: tuple[int, int, int] | None = None
        # Contraction-path cache for the backward einsum: optimize=True
        # re-runs a path search on every call, which for the small
        # operands here costs as much as the contraction itself. Paths
        # depend only on operand shapes, so one entry per batch shape.
        self._einsum_paths: dict[tuple[tuple[int, ...], tuple[int, ...]], list] = {}

    def build(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (C, H, W) per-sample input, got {input_shape}")
        c, h, w = map(int, input_shape)
        kh, kw = self.kernel
        if h < kh or w < kw:
            raise ShapeError(f"input {h}x{w} smaller than kernel {kh}x{kw}")
        self._in_shape = (c, h, w)
        self._out_shape = (self.filters, h - kh + 1, w - kw + 1)
        return self._out_shape

    @property
    def param_shapes(self) -> list[tuple[str, tuple[int, ...]]]:
        if self._in_shape is None:
            raise ShapeError("Conv2D.param_shapes accessed before build()")
        c = self._in_shape[0]
        kh, kw = self.kernel
        # W stored as (F, C*kh*kw): the matmul-ready filter matrix.
        return [("W", (self.filters, c * kh * kw)), ("b", (self.filters,))]

    def make_workspace(
        self,
        batch: int,
        in_shape: tuple[int, ...],
        out_shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> dict[str, np.ndarray]:
        c, h, w = in_shape
        f, oh, ow = out_shape
        kh, kw = self.kernel
        return {
            # im2col patch matrix (forward) and its gradient (backward);
            # both live across the matmuls, so they cannot share storage.
            "cols": np.empty((batch, oh * ow, c * kh * kw), dtype=dtype),
            "mm": np.empty((batch, oh * ow, f), dtype=dtype),
            "out": np.empty((batch, f, oh, ow), dtype=dtype),
            "gcols": np.empty((batch, oh * ow, c * kh * kw), dtype=dtype),
            "gx": np.empty((batch, c, h, w), dtype=dtype),
        }

    def forward(
        self, x: np.ndarray, params: Sequence[np.ndarray], *, ws: dict | None = None
    ) -> tuple[np.ndarray, Any]:
        W, b = params
        kh, kw = self.kernel
        n = x.shape[0]
        if ws is None:
            cols, oh, ow = im2col(x, kh, kw)
            out = cols @ W.T + b  # (N, OH*OW, F)
            out = out.transpose(0, 2, 1).reshape(n, self.filters, oh, ow)
            return out, (cols, x.shape, oh, ow)
        oh, ow = self._out_shape[1], self._out_shape[2]
        cols, mm, out = ws["cols"], ws["mm"], ws["out"]
        windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
        patches = windows.transpose(0, 2, 3, 1, 4, 5)  # (N, OH, OW, C, kh, kw)
        # Axis-splitting reshape of the contiguous cols buffer is a view,
        # so this is the im2col copy written straight into the workspace.
        np.copyto(cols.reshape(patches.shape), patches)
        np.matmul(cols, W.T, out=mm)
        mm += b
        np.copyto(out.reshape(n, self.filters, oh * ow), mm.transpose(0, 2, 1))
        return out, (cols, x.shape, oh, ow)

    def backward(
        self,
        grad_out: np.ndarray,
        cache: Any,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        *,
        ws: dict | None = None,
    ) -> np.ndarray:
        W, _ = params
        gW, gb = grads
        cols, x_shape, oh, ow = cache
        n, c, h, w = x_shape
        kh, kw = self.kernel
        g2 = grad_out.reshape(n, self.filters, oh * ow).transpose(0, 2, 1)  # (N, OH*OW, F)
        # Parameter gradients: contract over batch and positions at once.
        path_key = (g2.shape, cols.shape)
        path = self._einsum_paths.get(path_key)
        if path is None:
            path = np.einsum_path("npf,npk->fk", g2, cols, optimize=True)[0]
            self._einsum_paths[path_key] = path
        np.einsum("npf,npk->fk", g2, cols, out=gW, optimize=path)
        np.sum(grad_out, axis=(0, 2, 3), out=gb)
        # Input gradient: scatter-add each kernel offset (kh*kw small loops,
        # each a fully vectorized slice-add).
        if ws is None:
            gcols = g2 @ W  # (N, OH*OW, C*kh*kw)
            gx = np.zeros(x_shape, dtype=grad_out.dtype)
        else:
            gcols, gx = ws["gcols"], ws["gx"]
            np.matmul(g2, W, out=gcols)
            gx.fill(0)
        gcols = gcols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        for i in range(kh):
            for j in range(kw):
                gx[:, :, i : i + oh, j : j + ow] += gcols[:, :, i, j]
        return gx

    def __repr__(self) -> str:  # pragma: no cover
        return f"Conv2D(filters={self.filters}, kernel={self.kernel})"
