"""The paper's exact network architectures (Tables II and III).

* :func:`mlp_mnist` — Table II: three 128-neuron ReLU dense layers and a
  10-way softmax output over 28x28=784 inputs; **d = 134,794**.
* :func:`cnn_mnist` — Table III: Conv(4 filters, 3x3) + MaxPool(2x2) +
  Conv(8 filters, 3x3) + MaxPool(2x2) + Dense(128) + Dense(10);
  **d = 27,354**.

Both dimensions are asserted at construction, so any drift from the
paper's parameter counts fails loudly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Network

#: Parameter-vector dimensions reported in the paper (Sec. V.2).
MLP_DIMENSION = 134_794
CNN_DIMENSION = 27_354


def mlp_mnist() -> Network:
    """Table II MLP: 784 -> 128 -> 128 -> 128 -> 10 (ReLU, softmax out)."""
    net = Network(
        [
            Dense(128), ReLU(),
            Dense(128), ReLU(),
            Dense(128), ReLU(),
            Dense(10),
        ],
        input_shape=(784,),
        name="mlp_mnist",
    )
    if net.n_params != MLP_DIMENSION:
        raise ConfigurationError(
            f"MLP dimension drifted: built d={net.n_params}, paper d={MLP_DIMENSION}"
        )
    return net


def cnn_mnist() -> Network:
    """Table III CNN: Conv4@3x3 / Pool2 / Conv8@3x3 / Pool2 / Dense128 / Dense10."""
    net = Network(
        [
            Conv2D(4, (3, 3)), ReLU(), MaxPool2D((2, 2)),
            Conv2D(8, (3, 3)), ReLU(), MaxPool2D((2, 2)),
            Flatten(),
            Dense(128), ReLU(),
            Dense(10),
        ],
        input_shape=(1, 28, 28),
        name="cnn_mnist",
    )
    if net.n_params != CNN_DIMENSION:
        raise ConfigurationError(
            f"CNN dimension drifted: built d={net.n_params}, paper d={CNN_DIMENSION}"
        )
    return net


def mlp_custom(
    input_dim: int,
    hidden: tuple[int, ...],
    n_classes: int,
    *,
    name: str = "mlp_custom",
) -> Network:
    """A configurable ReLU MLP — used by the quick fidelity profile and
    the test suite, which need smaller models than the paper's."""
    if input_dim <= 0 or n_classes <= 0 or any(h <= 0 for h in hidden):
        raise ConfigurationError(
            f"invalid MLP spec: input_dim={input_dim}, hidden={hidden}, n_classes={n_classes}"
        )
    layers: list = []
    for h in hidden:
        layers.append(Dense(h))
        layers.append(ReLU())
    layers.append(Dense(n_classes))
    return Network(layers, input_shape=(int(input_dim),), name=name)
