"""Replica-stacked gradient kernel.

When :class:`repro.sim.replica.LockstepCohort` advances K replica
simulations in lockstep, every round harvests up to K pending
:class:`~repro.sim.grad.GradCompute` requests whose tasks share a
``stack_key`` — same problem, same batch size, same dtype, and (because
replicas differ only in seed) the same network. A :class:`ReplicaKernel`
executes such a group as *stacked* NumPy calls over a replica axis
instead of K interpreter round-trips through ``loss_and_grad``.

Bitwise identity
----------------
The acceptance bar is that every replica's results are **bitwise
identical** to its serial run, so the kernel only fuses operations whose
stacked form performs the exact same floating-point work per replica:

* **Elementwise ops stack freely.** ReLU forward/backward, the softmax
  shift/exp/divide chain, and the gather are elementwise (or row-local)
  — applying them to a ``(K*N, ...)`` block is the same arithmetic per
  row as K separate ``(N, ...)`` calls.
* **GEMMs stay per-replica.** Each replica has its own ``theta``, so
  the dense matmuls loop over replicas, reading weight views through
  each task's workspace — zero staging of ``theta`` or the gradient
  (a fully stacked ``(K, d)`` staging path was measured slower than
  serial; the wins are elsewhere).
* **The first layer's input gradient is skipped.** The serial backward
  computes layer 0's ``d loss / d input`` and discards it
  (``Network.loss_and_grad`` never uses the final conduit); for the
  paper's MLP this matmul is the single most expensive op in the whole
  step, and skipping it changes no result.
* **The loss scalar is skipped.** Worker bodies discard the return of
  their gradient function; the kernel computes only the logits
  gradient. (The ``picked``/``log`` reads in the serial loss do not
  touch the logits buffer, so skipping them is bit-neutral.)
* **Conv/pool layers fall back per replica.** Their forward/backward
  run through each task's own serial workspace buffers — bitwise by
  construction — while the surrounding dense/softmax stages still
  batch.

``build`` returns ``None`` whenever any precondition fails (unsupported
layer kind, non-dense head, dtype mismatch between the corpus and the
workspace); the cohort then simply executes that group serially.
"""

from __future__ import annotations

import numpy as np

from repro.observe import profiler as _profiler

__all__ = ["ReplicaKernel"]

#: Layer kinds the plan walker understands. Anything else (e.g. the
#: stateful Dropout layer, whose shared RNG stream is order-sensitive)
#: disables stacking for the whole network.
_SUPPORTED_KINDS = frozenset({"dense", "relu", "flatten", "conv2d", "maxpool2d"})


class ReplicaKernel:
    """Stacked forward/backward executor for one ``stack_key``.

    One kernel instance is shared by every task in a cohort with the
    same key; it holds only per-problem state (corpus references, the
    network, and its own ``(kmax, N, ...)`` stacking buffers), never
    per-task state — per-task buffers (weight views, conv scratch) come
    in through each :class:`~repro.core.problem.DLGradTask`.
    """

    @classmethod
    def build(cls, task, kmax: int) -> "ReplicaKernel | None":
        """A kernel for ``task``'s stack key, or None if unsupported."""
        if kmax < 2:
            return None  # nothing to stack
        problem = task.problem
        network = task.network
        if np.dtype(problem.train_x.dtype) != task.workspace.dtype:
            return None  # serial path would convert-copy the batch
        kinds = [layer.kind for layer in network.layers]
        if any(kind not in _SUPPORTED_KINDS for kind in kinds):
            return None
        if kinds[-1] != "dense":
            return None  # softmax-CE fusion expects a dense logits head
        return cls(task, kmax)

    def __init__(self, task, kmax: int) -> None:
        problem = task.problem
        network = task.network
        self.network = network
        self.train_x = problem.train_x
        self.train_y = problem.train_y
        self.batch = task.batcher.batch_size
        self.dtype = task.workspace.dtype
        self.kmax = int(kmax)
        n, km, dt = self.batch, self.kmax, self.dtype
        in_shape = self.train_x.shape[1:]
        # Stacked batch gather: one take() fills all replicas' batches.
        self._x3 = np.empty((km, n) + in_shape, dtype=dt)
        self._xflat = self._x3.reshape((km * n,) + in_shape)
        self._idx = np.empty(km * n, dtype=np.intp)
        self._y = np.empty(km * n, dtype=self.train_y.dtype)
        self._rows = np.arange(km * n)
        # (K*N, 1) row statistic for the softmax (max, then denominator).
        self._rowstat = np.empty((km * n, 1), dtype=dt)

        # --- plan: one step per layer, with stacked buffers where the
        # activation conduit is stacked. ``stacked`` mirrors, at build
        # time, exactly the conduit state the executor tracks at run
        # time, so buffer shapes always match.
        steps: list[tuple] = []
        stacked = True  # the gathered input batch is stacked
        for i, layer in enumerate(network.layers):
            layer_in, _ = network.layer_shapes[i]
            kind = layer.kind
            if kind == "dense":
                out3 = np.empty((km, n, layer.units), dtype=dt)
                # Layer 0's input gradient is computed-and-discarded on
                # the serial path; the kernel skips it outright.
                gin3 = None if i == 0 else np.empty((km, n, layer_in[0]), dtype=dt)
                # Stacked bias-gradient landing zone: one (k, units)
                # reduction replaces k per-replica sums (same axis
                # length, same accumulation order → bitwise identical),
                # then each row is copied into that replica's gb view.
                gb3 = np.empty((km, layer.units), dtype=dt)
                steps.append(("dense", i, layer, out3, gin3, gb3))
                stacked = True
            elif kind == "relu":
                if stacked:
                    full = (km, n) + layer_in
                    # dtype (not bool) masks: np.greater writes exact
                    # 1.0/0.0, and x * 1.0f == x, x * 0.0f == ±0.0 —
                    # bit-for-bit what the bool mask's promotion gives —
                    # while skipping the bool→float convert per multiply.
                    mask3 = np.empty(full, dtype=dt)
                    out3 = np.empty(full, dtype=dt)
                    steps.append(("relu_s", i, layer, mask3, out3))
                else:
                    steps.append(("perk", i, layer))
            elif kind == "flatten":
                steps.append(("flatten", i, layer, layer_in))
            else:  # conv2d / maxpool2d: per-replica fallback
                steps.append(("perk", i, layer))
                stacked = False
        self._steps = steps
        n_layers = len(network.layers)
        # Per-call records for the backward pass (conduits index
        # uniformly: stacked[r] and per-k-list[r] both give replica r).
        self._fwd_in: list = [None] * n_layers
        self._caches: list = [None] * n_layers
        self._logits = None

    # ------------------------------------------------------------------
    def execute(self, gcs: list) -> None:
        """Run every request's gradient; stacked where profitable.

        Falls back to per-request serial execution for singleton groups
        and for any dtype the serial path would itself not run through
        the workspace (keeping the fallback on the serial instruction
        sequence).
        """
        k = len(gcs)
        if k == 1 or k > self.kmax:
            for gc in gcs:
                gc.execute()
            return
        dt = self.dtype
        for gc in gcs:
            if gc.theta.dtype != dt or gc.out.dtype != dt:
                for g in gcs:
                    g.execute()
                return
        prof = _profiler.ACTIVE
        prof_t0 = prof.start()
        tasks = [gc.task for gc in gcs]
        n = self.batch
        kn = k * n
        # Stage every replica's batch indices (each from its own RNG
        # stream, in replica order — the draws a serial run would make).
        idx = self._idx[:kn]
        pos = 0
        for task in tasks:
            idx[pos : pos + n] = task.stage()
            pos += n
        self.train_x.take(idx, axis=0, out=self._xflat[:kn])
        self.train_y.take(idx, axis=0, out=self._y[:kn])
        network = self.network
        params = [
            task.workspace.cached_views(gc.theta, network._all_param_views)
            for task, gc in zip(tasks, gcs)
        ]
        grads = [
            task.workspace.cached_views(gc.out, network._all_param_views)
            for task, gc in zip(tasks, gcs)
        ]
        with np.errstate(over="ignore", invalid="ignore"):
            self._forward(k, tasks, params)
            self._softmax_ce(k)
            self._backward(k, tasks, params, grads)
        for gc in gcs:
            if gc.post is not None:
                gc.post()
        prof.stop("kernel.execute", prof_t0)

    # ------------------------------------------------------------------
    def _forward(self, k: int, tasks: list, params: list) -> None:
        fwd_in = self._fwd_in
        caches = self._caches
        cur = self._x3
        stacked = True
        for step in self._steps:
            tag = step[0]
            if tag == "dense":
                _, i, _layer, out3, _gin3, _gb3 = step
                fwd_in[i] = cur
                for r in range(k):
                    W, b = params[r][i]
                    np.matmul(cur[r], W, out=out3[r])
                    out3[r] += b
                cur, stacked = out3, True
            elif tag == "relu_s":
                _, _i, _layer, mask3, out3 = step
                ck = cur[:k]
                np.greater(ck, 0, out=mask3[:k])
                np.multiply(ck, mask3[:k], out=out3[:k])
                cur, stacked = out3, True
            elif tag == "flatten":
                _, i, _layer, _in_shape = step
                fwd_in[i] = cur
                if stacked:
                    # Contiguous stacked conduit: one zero-copy reshape.
                    cur = cur.reshape(cur.shape[0], cur.shape[1], -1)
                else:
                    cur = [cur[r].reshape(self.batch, -1) for r in range(k)]
            else:  # perk
                _, i, layer = step
                fwd_in[i] = cur
                outs = []
                layer_caches = []
                for r in range(k):
                    out, cache = layer.forward(
                        cur[r], params[r][i], ws=tasks[r].workspace.per_layer[i]
                    )
                    outs.append(out)
                    layer_caches.append(cache)
                caches[i] = layer_caches
                cur, stacked = outs, False
        self._logits = cur  # stacked (last layer is dense)

    def _softmax_ce(self, k: int) -> None:
        """In-place softmax cross-entropy gradient over the stacked
        logits — the op sequence of ``softmax_cross_entropy_inplace``
        applied to all replicas' rows at once (each row's arithmetic is
        independent, so per-replica slices are bitwise identical), minus
        the loss scalar the workers discard."""
        n = self.batch
        kn = k * n
        lg = self._logits[:k].reshape(kn, -1)
        stat = self._rowstat[:kn]
        lg.max(axis=1, keepdims=True, out=stat)
        np.subtract(lg, stat, out=lg)  # shifted
        np.exp(lg, out=lg)  # exp
        lg.sum(axis=1, keepdims=True, out=stat)  # denom
        lg /= stat  # dlogits
        lg[self._rows[:kn], self._y[:kn]] -= 1.0
        lg /= n  # mean over each replica's own batch
        self._logits = None

    def _backward(self, k: int, tasks: list, params: list, grads: list) -> None:
        fwd_in = self._fwd_in
        caches = self._caches
        # The gradient conduit starts at the last dense layer's stacked
        # output buffer, which _softmax_ce turned into dlogits in place.
        g = self._steps[-1][3]
        gstacked = True
        for step in reversed(self._steps):
            tag = step[0]
            if tag == "dense":
                _, i, _layer, _out3, gin3, gb3 = step
                x_in = fwd_in[i]
                # One stacked reduction over the batch axis for every
                # replica's bias gradient (bitwise-identical to the
                # per-replica sums), copied out to each gb view below.
                g[:k].sum(axis=1, out=gb3[:k])
                for r in range(k):
                    W = params[r][i][0]
                    gW, gb = grads[r][i]
                    gr = g[r]
                    np.matmul(x_in[r].T, gr, out=gW)
                    gb[...] = gb3[r]
                    if gin3 is not None:
                        np.matmul(gr, W.T, out=gin3[r])
                if gin3 is None:
                    return  # layer 0: serial discards the input gradient
                g, gstacked = gin3, True
            elif tag == "relu_s":
                _, _i, _layer, mask3, _out3 = step
                if gstacked:
                    np.multiply(g[:k], mask3[:k], out=g[:k])
                else:
                    for r in range(k):
                        np.multiply(g[r], mask3[r], out=g[r])
            elif tag == "flatten":
                _, _i, _layer, in_shape = step
                if gstacked:
                    g = g.reshape((g.shape[0], self.batch) + in_shape)
                else:
                    g = [g[r].reshape((self.batch,) + in_shape) for r in range(k)]
            else:  # perk
                _, i, layer = step
                layer_caches = caches[i]
                outs = []
                for r in range(k):
                    outs.append(
                        layer.backward(
                            g[r],
                            layer_caches[r],
                            params[r][i],
                            grads[r][i],
                            ws=tasks[r].workspace.per_layer[i],
                        )
                    )
                g, gstacked = outs, False

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"ReplicaKernel({self.network.name!r}, kmax={self.kmax}, "
            f"batch={self.batch}, dtype={self.dtype.name})"
        )
