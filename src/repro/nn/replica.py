"""Replica-stacked gradient kernel.

When :class:`repro.sim.replica.LockstepCohort` advances K replica
simulations in lockstep, every round harvests up to K pending
:class:`~repro.sim.grad.GradCompute` requests whose tasks share a
``stack_key`` — same problem, same batch size, same dtype, and (because
replicas differ only in seed or step size) the same network. A
:class:`ReplicaKernel` executes such a group as *stacked* NumPy calls
over a replica axis instead of K interpreter round-trips through
``loss_and_grad``.

Bitwise identity
----------------
The acceptance bar is that every replica's results are **bitwise
identical** to its serial run, so the kernel only fuses operations whose
stacked form performs the exact same floating-point work per replica:

* **Elementwise ops stack freely.** ReLU forward/backward, the softmax
  shift/exp/divide chain, the gathers/scatters (``copyto``,
  ``take_along_axis`` / ``put_along_axis``), the row-local argmax, and
  the conv input-gradient slice-adds are elementwise (or row-local) —
  applying them to a ``(K*N, ...)`` block is the same arithmetic per
  row as K separate ``(N, ...)`` calls.
* **GEMMs stay per-replica.** Each replica has its own ``theta``, so
  the dense and conv matmuls/einsums loop over replicas. Every
  per-replica operand is a leading-axis slice of a stacked buffer whose
  shape *and strides* equal the serial operand's, so BLAS sees the same
  problem and reduces in the same order.
* **Conv2D stacks its im2col.** One ``sliding_window_view`` +
  transpose-``copyto`` fills a K-stacked ``(K, N, OH*OW, C*kh*kw)``
  patch slab; the filter matmuls loop per replica over contiguous
  slices of it (exactly the serial ``cols`` layout); one stacked
  transpose-``copyto`` produces all replicas' feature maps. Backward
  mirrors it: per-replica ``einsum``/``matmul`` (the contraction-path
  cache is shared with the serial layer — paths depend on shapes only)
  plus the per-replica multi-axis bias sum (kept serial-shaped: a
  stacked ``(K, N, F, OH, OW)`` reduction would reassociate), then one
  stacked zero-fill + slice-add scatter for the input gradient.
* **MaxPool2D stacks wholesale.** Tiling, argmax (first-max
  tie-breaking is per row, hence per replica), ``take_along_axis``,
  and the backward ``put_along_axis`` / un-tiling are all row-local;
  per-replica argmax indices route each replica's gradient exactly as
  its serial run would.
* **The first layer's input gradient is skipped.** The serial backward
  computes layer 0's ``d loss / d input`` and discards it
  (``Network.loss_and_grad`` never uses the final conduit); for the
  paper's CNN this kills conv 0's ``gcols`` matmul and scatter, the
  most expensive backward ops in the step, and changes no result.
* **The loss scalar is skipped.** Worker bodies discard the return of
  their gradient function; the kernel computes only the logits
  gradient. (The ``picked``/``log`` reads in the serial loss do not
  touch the logits buffer, so skipping them is bit-neutral.)

Scratch slabs come from the cohort's :class:`~repro.sim.arena.
BufferArena` when one is supplied (``build(..., arena=...)``): the
kernel acquires flat buffers, views them at stacked shapes, and
:meth:`ReplicaKernel.release` returns them when the cohort rebuilds
with more headroom — the conv path allocates nothing per step. The
cohort's arena is deliberately *not* wired to any per-replica
``MemoryAccountant``: kernel slabs are host-side execution scratch, and
accounting them would perturb each replica's ``pool_*`` metrics away
from its serial run.

``build`` returns ``None`` whenever any precondition fails
(:meth:`ReplicaKernel.reject_reason`: unsupported layer kind, non-dense
head, dtype mismatch between the corpus and the workspace); the cohort
then executes that group serially and emits one ``kernel_fallback``
probe event per de-vectorized request, so silent fallbacks are
observable in ``metrics["kernel_fallbacks"]``.
"""

from __future__ import annotations

import numpy as np

from repro.observe import profiler as _profiler

__all__ = ["ReplicaKernel"]

#: Layer kinds the plan walker stacks. Anything else (e.g. a stateful
#: dropout layer, whose shared RNG stream is order-sensitive) disables
#: stacking for the whole network — ``build`` declines and the cohort
#: runs that group serially, emitting ``kernel_fallback`` events.
_SUPPORTED_KINDS = frozenset({"dense", "relu", "flatten", "conv2d", "maxpool2d"})


class ReplicaKernel:
    """Stacked forward/backward executor for one ``stack_key``.

    One kernel instance is shared by every task in a cohort with the
    same key; it holds only per-problem state (corpus references, the
    network, and its own ``(kmax, N, ...)`` stacking buffers), never
    per-task state — per-task buffers (weight views, serial-fallback
    scratch) come in through each
    :class:`~repro.core.problem.DLGradTask`.
    """

    @classmethod
    def reject_reason(cls, task) -> str | None:
        """Why this task cannot stack, or None if it can.

        The returned string feeds the ``kernel_fallback`` event's
        ``kind`` field: ``"dtype"`` for a corpus/workspace dtype
        mismatch, the offending layer kind for an unsupported layer,
        ``"head:<kind>"`` for a non-dense logits head.
        """
        problem = task.problem
        if np.dtype(problem.train_x.dtype) != task.workspace.dtype:
            return "dtype"  # serial path would convert-copy the batch
        kinds = [layer.kind for layer in task.network.layers]
        for kind in kinds:
            if kind not in _SUPPORTED_KINDS:
                return kind
        if kinds[-1] != "dense":
            return f"head:{kinds[-1]}"  # softmax-CE fusion needs dense logits
        return None

    @classmethod
    def build(cls, task, kmax: int, arena=None) -> "ReplicaKernel | None":
        """A kernel for ``task``'s stack key, or None if unsupported.

        ``arena`` optionally supplies the stacking slabs (see the
        module docstring); without one the kernel allocates directly.
        """
        if kmax < 2:
            return None  # nothing to stack
        if cls.reject_reason(task) is not None:
            return None
        return cls(task, kmax, arena=arena)

    def __init__(self, task, kmax: int, arena=None) -> None:
        problem = task.problem
        network = task.network
        self.network = network
        self.train_x = problem.train_x
        self.train_y = problem.train_y
        self.batch = task.batcher.batch_size
        self.dtype = task.workspace.dtype
        self.kmax = int(kmax)
        self._arena = arena
        self._slabs: list[np.ndarray] = []
        n, km, dt = self.batch, self.kmax, self.dtype
        in_shape = self.train_x.shape[1:]
        # Stacked batch gather: one take() fills all replicas' batches.
        self._x3 = self._alloc((km, n) + in_shape, dt)
        self._xflat = self._x3.reshape((km * n,) + in_shape)
        self._idx = self._alloc((km * n,), np.intp)
        self._y = self._alloc((km * n,), self.train_y.dtype)
        self._rows = np.arange(km * n)
        # (K*N, 1) row statistic for the softmax (max, then denominator).
        self._rowstat = self._alloc((km * n, 1), dt)

        # --- plan: one step per layer, with stacked buffers where the
        # activation conduit is stacked. ``stacked`` mirrors, at build
        # time, exactly the conduit state the executor tracks at run
        # time, so buffer shapes always match. Every step tuple ends
        # with its profiler span name (constant strings: the per-kind
        # time split costs nothing when no profiler is active).
        steps: list[tuple] = []
        stacked = True  # the gathered input batch is stacked
        for i, layer in enumerate(network.layers):
            layer_in, layer_out = network.layer_shapes[i]
            kind = layer.kind
            if kind == "dense":
                out3 = self._alloc((km, n, layer.units), dt)
                # Layer 0's input gradient is computed-and-discarded on
                # the serial path; the kernel skips it outright.
                gin3 = None if i == 0 else self._alloc((km, n, layer_in[0]), dt)
                # Stacked bias-gradient landing zone: one (k, units)
                # reduction replaces k per-replica sums (same axis
                # length, same accumulation order → bitwise identical),
                # then each row is copied into that replica's gb view.
                gb3 = self._alloc((km, layer.units), dt)
                steps.append(("dense", i, layer, out3, gin3, gb3, "kernel.dense"))
                stacked = True
            elif kind == "relu":
                if stacked:
                    full = (km, n) + layer_in
                    # dtype (not bool) masks: np.greater writes exact
                    # 1.0/0.0, and x * 1.0f == x, x * 0.0f == ±0.0 —
                    # bit-for-bit what the bool mask's promotion gives —
                    # while skipping the bool→float convert per multiply.
                    mask3 = self._alloc(full, dt)
                    out3 = self._alloc(full, dt)
                    steps.append(("relu_s", i, layer, mask3, out3, "kernel.relu"))
                else:
                    steps.append(("perk", i, layer, None, "kernel.perk"))
            elif kind == "flatten":
                steps.append(("flatten", i, layer, layer_in, "kernel.flatten"))
            elif kind == "conv2d":
                c, h, w = layer_in
                f, oh, ow = layer_out
                kh, kw = layer.kernel
                p, ckk = oh * ow, c * kh * kw
                # The K-stacked im2col slab and its companions. Each
                # per-replica slice is contiguous with exactly the
                # serial workspace buffer's layout.
                cols4 = self._alloc((km, n, p, ckk), dt)
                mm4 = self._alloc((km, n, p, f), dt)
                out5 = self._alloc((km, n, f, oh, ow), dt)
                if i == 0:
                    gcols4 = gx5 = None  # input gradient skipped
                else:
                    gcols4 = self._alloc((km, n, p, ckk), dt)
                    gx5 = self._alloc((km, n, c, h, w), dt)
                bufs = (cols4, mm4, out5, gcols4, gx5, (c, h, w, f, oh, ow, kh, kw))
                steps.append(("conv_s", i, layer, bufs, "kernel.conv2d"))
                stacked = True
            elif kind == "maxpool2d":
                c, h, w = layer_in
                _, oh, ow = layer_out
                ph, pw = layer.pool
                tiles6 = self._alloc((km, n, c, oh, ow, ph * pw), dt)
                idx5 = self._alloc((km, n, c, oh, ow), np.intp)
                if i == 0:
                    gtiles6 = gx5 = None  # input gradient skipped
                else:
                    gtiles6 = self._alloc((km, n, c, oh, ow, ph * pw), dt)
                    gx5 = self._alloc((km, n, c, h, w), dt)
                bufs = (tiles6, idx5, gtiles6, gx5, (c, h, w, oh, ow, ph, pw))
                steps.append(("pool_s", i, layer, bufs, "kernel.maxpool2d"))
                stacked = True
            else:
                # Guarded escape hatch: run an in-plan layer per replica
                # through its own serial workspace (bitwise by
                # construction) while the surrounding stages still
                # stack. Unreachable for the kinds above — ``build``
                # rejects unknown kinds outright — but kept so a future
                # partially-stackable layer has a correct fallback.
                steps.append(("perk", i, layer, None, "kernel.perk"))
                stacked = False
        self._steps = steps
        n_layers = len(network.layers)
        # Per-call records for the backward pass (conduits index
        # uniformly: stacked[r] and per-k-list[r] both give replica r).
        self._fwd_in: list = [None] * n_layers
        self._caches: list = [None] * n_layers
        self._logits = None

    # ------------------------------------------------------------------
    def _alloc(self, shape: tuple, dtype) -> np.ndarray:
        """A kernel buffer: arena-recycled (and tracked for
        :meth:`release`) when the cohort supplied an arena, a plain
        ``np.empty`` otherwise."""
        if self._arena is None:
            return np.empty(shape, dtype=dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        flat = self._arena.acquire(size, dtype)
        self._slabs.append(flat)
        return flat.reshape(shape)

    def release(self) -> None:
        """Return every arena-backed slab (called when the cohort
        rebuilds the kernel with more headroom)."""
        if self._arena is None:
            return
        for flat in self._slabs:
            self._arena.release(flat)
        self._slabs.clear()

    @staticmethod
    def _emit_fallback(gc, kind: str, replicas: int) -> None:
        """Report one de-vectorized request on its replica's bus."""
        bus = getattr(gc.task, "probes", None)
        if bus is not None:
            bus.kernel_fallback(kind, replicas)

    # ------------------------------------------------------------------
    def execute(self, gcs: list) -> None:
        """Run every request's gradient; stacked where profitable.

        Falls back to per-request serial execution for singleton groups
        (silently: a lone survivor is not a de-vectorization) and — with
        a ``kernel_fallback`` event per request — for groups that
        outgrow ``kmax`` or carry a dtype the serial path would itself
        not run through the workspace (keeping the fallback on the
        serial instruction sequence).
        """
        k = len(gcs)
        if k == 1:
            gcs[0].execute()
            return
        if k > self.kmax:
            for gc in gcs:
                self._emit_fallback(gc, "overflow", k)
                gc.execute()
            return
        dt = self.dtype
        for gc in gcs:
            if gc.theta.dtype != dt or gc.out.dtype != dt:
                for g in gcs:
                    self._emit_fallback(g, "dtype", k)
                    g.execute()
                return
        prof = _profiler.ACTIVE
        prof_t0 = prof.start()
        tasks = [gc.task for gc in gcs]
        n = self.batch
        kn = k * n
        # Stage every replica's batch indices (each from its own RNG
        # stream, in replica order — the draws a serial run would make).
        t0 = prof.start()
        idx = self._idx[:kn]
        pos = 0
        for task in tasks:
            idx[pos : pos + n] = task.stage()
            pos += n
        self.train_x.take(idx, axis=0, out=self._xflat[:kn])
        self.train_y.take(idx, axis=0, out=self._y[:kn])
        prof.stop("kernel.stage", t0)
        network = self.network
        params = [
            task.workspace.cached_views(gc.theta, network._all_param_views)
            for task, gc in zip(tasks, gcs)
        ]
        grads = [
            task.workspace.cached_views(gc.out, network._all_param_views)
            for task, gc in zip(tasks, gcs)
        ]
        with np.errstate(over="ignore", invalid="ignore"):
            self._forward(k, tasks, params)
            t0 = prof.start()
            self._softmax_ce(k)
            prof.stop("kernel.softmax", t0)
            self._backward(k, tasks, params, grads)
        for gc in gcs:
            if gc.post is not None:
                gc.post()
        prof.stop("kernel.execute", prof_t0)

    # ------------------------------------------------------------------
    def _forward(self, k: int, tasks: list, params: list) -> None:
        prof = _profiler.ACTIVE
        fwd_in = self._fwd_in
        caches = self._caches
        n = self.batch
        cur = self._x3
        stacked = True
        for step in self._steps:
            tag = step[0]
            t0 = prof.start()
            if tag == "dense":
                _, i, _layer, out3, _gin3, _gb3, _span = step
                fwd_in[i] = cur
                for r in range(k):
                    W, b = params[r][i]
                    np.matmul(cur[r], W, out=out3[r])
                    out3[r] += b
                cur, stacked = out3, True
            elif tag == "relu_s":
                _, _i, _layer, mask3, out3, _span = step
                ck = cur[:k]
                np.greater(ck, 0, out=mask3[:k])
                np.multiply(ck, mask3[:k], out=out3[:k])
                cur, stacked = out3, True
            elif tag == "conv_s":
                _, i, _layer, bufs, _span = step
                cols4, mm4, out5, _gcols4, _gx5, dims = bufs
                _c, _h, _w, f, oh, ow, kh, kw = dims
                # One stacked im2col copy: per-replica slices of cols4
                # are contiguous (N, OH*OW, C*kh*kw) — the serial
                # ``cols`` layout, so the matmuls below see identical
                # operands.
                windows = np.lib.stride_tricks.sliding_window_view(
                    cur[:k], (kh, kw), axis=(3, 4)
                )
                patches = windows.transpose(0, 1, 3, 4, 2, 5, 6)
                np.copyto(cols4[:k].reshape(patches.shape), patches)
                for r in range(k):
                    W, b = params[r][i]
                    np.matmul(cols4[r], W.T, out=mm4[r])
                    mm4[r] += b
                np.copyto(
                    out5[:k].reshape(k, n, f, oh * ow), mm4[:k].transpose(0, 1, 3, 2)
                )
                cur, stacked = out5, True
            elif tag == "pool_s":
                _, _i, _layer, bufs, _span = step
                tiles6, idx5, _gtiles6, _gx5, dims = bufs
                c, _h, _w, oh, ow, ph, pw = dims
                cropped = cur[:k, :, :, : oh * ph, : ow * pw]
                windows = cropped.reshape(k, n, c, oh, ph, ow, pw).transpose(
                    0, 1, 2, 3, 5, 4, 6
                )
                tk = tiles6[:k]
                np.copyto(tk.reshape(windows.shape), windows)
                np.argmax(tk, axis=-1, out=idx5[:k])
                # take_along_axis (not np.max) so the selected element
                # matches idx exactly even on -0.0 / +0.0 ties; argmax
                # tie-breaking (first max) is row-local, hence
                # per-replica identical to serial. The fresh result
                # array mirrors the serial layer's own allocation.
                cur = np.take_along_axis(tk, idx5[:k][..., None], axis=-1)[..., 0]
                stacked = True
            elif tag == "flatten":
                _, i, _layer, _in_shape, _span = step
                fwd_in[i] = cur
                if stacked:
                    # Contiguous stacked conduit: one zero-copy reshape.
                    cur = cur.reshape(cur.shape[0], cur.shape[1], -1)
                else:
                    cur = [cur[r].reshape(self.batch, -1) for r in range(k)]
            else:  # perk — the guarded per-replica escape hatch
                _, i, layer, _bufs, _span = step
                fwd_in[i] = cur
                outs = []
                layer_caches = []
                for r in range(k):
                    out, cache = layer.forward(
                        cur[r], params[r][i], ws=tasks[r].workspace.per_layer[i]
                    )
                    outs.append(out)
                    layer_caches.append(cache)
                caches[i] = layer_caches
                cur, stacked = outs, False
            prof.stop(step[-1], t0)
        self._logits = cur  # stacked (last layer is dense)

    def _softmax_ce(self, k: int) -> None:
        """In-place softmax cross-entropy gradient over the stacked
        logits — the op sequence of ``softmax_cross_entropy_inplace``
        applied to all replicas' rows at once (each row's arithmetic is
        independent, so per-replica slices are bitwise identical), minus
        the loss scalar the workers discard."""
        n = self.batch
        kn = k * n
        lg = self._logits[:k].reshape(kn, -1)
        stat = self._rowstat[:kn]
        lg.max(axis=1, keepdims=True, out=stat)
        np.subtract(lg, stat, out=lg)  # shifted
        np.exp(lg, out=lg)  # exp
        lg.sum(axis=1, keepdims=True, out=stat)  # denom
        lg /= stat  # dlogits
        lg[self._rows[:kn], self._y[:kn]] -= 1.0
        lg /= n  # mean over each replica's own batch
        self._logits = None

    def _backward(self, k: int, tasks: list, params: list, grads: list) -> None:
        prof = _profiler.ACTIVE
        fwd_in = self._fwd_in
        caches = self._caches
        n = self.batch
        # The gradient conduit starts at the last dense layer's stacked
        # output buffer, which _softmax_ce turned into dlogits in place.
        g = self._steps[-1][3]
        gstacked = True
        for step in reversed(self._steps):
            tag = step[0]
            t0 = prof.start()
            if tag == "dense":
                _, i, _layer, _out3, gin3, gb3, _span = step
                x_in = fwd_in[i]
                # One stacked reduction over the batch axis for every
                # replica's bias gradient (bitwise-identical to the
                # per-replica sums), copied out to each gb view below.
                g[:k].sum(axis=1, out=gb3[:k])
                for r in range(k):
                    W = params[r][i][0]
                    gW, gb = grads[r][i]
                    gr = g[r]
                    np.matmul(x_in[r].T, gr, out=gW)
                    gb[...] = gb3[r]
                    if gin3 is not None:
                        np.matmul(gr, W.T, out=gin3[r])
                if gin3 is None:
                    prof.stop(step[-1], t0)
                    return  # layer 0: serial discards the input gradient
                g, gstacked = gin3, True
            elif tag == "relu_s":
                _, _i, _layer, mask3, _out3, _span = step
                if gstacked:
                    np.multiply(g[:k], mask3[:k], out=g[:k])
                else:
                    for r in range(k):
                        np.multiply(g[r], mask3[r], out=g[r])
            elif tag == "conv_s":
                _, i, layer, bufs, _span = step
                cols4, _mm4, _out5, gcols4, gx5, dims = bufs
                c, _h, _w, f, oh, ow, kh, kw = dims
                p = oh * ow
                # Per-replica view with exactly the serial g2 strides
                # ((F*P, 1, P) elements), so einsum/matmul match bits.
                g4 = g[:k].reshape(k, n, f, p).transpose(0, 1, 3, 2)
                paths = layer._einsum_paths  # shared with the serial
                path_key = (g4.shape[1:], cols4.shape[1:])  # layer: paths
                path = paths.get(path_key)  # depend on shapes only
                if path is None:
                    path = np.einsum_path(
                        "npf,npk->fk", g4[0], cols4[0], optimize=True
                    )[0]
                    paths[path_key] = path
                for r in range(k):
                    W = params[r][i][0]
                    gW, gb = grads[r][i]
                    g2 = g4[r]
                    np.einsum("npf,npk->fk", g2, cols4[r], out=gW, optimize=path)
                    # The multi-axis bias sum stays per replica: a
                    # stacked (k, N, F, OH, OW) reduction would change
                    # the pairwise-summation tree, hence the bits.
                    np.sum(g[r], axis=(0, 2, 3), out=gb)
                    if gcols4 is not None:
                        np.matmul(g2, W, out=gcols4[r])
                if gcols4 is None:
                    prof.stop(step[-1], t0)
                    return  # layer 0: serial discards the input gradient
                # Stacked input-gradient scatter: each (i, j) slice-add
                # touches each element in the same order as serial.
                gx5[:k].fill(0)
                gcv = gcols4[:k].reshape(k, n, oh, ow, c, kh, kw).transpose(
                    0, 1, 4, 5, 6, 2, 3
                )
                for di in range(kh):
                    for dj in range(kw):
                        gx5[:k, :, :, di : di + oh, dj : dj + ow] += gcv[:, :, :, di, dj]
                g, gstacked = gx5, True
            elif tag == "pool_s":
                _, _i, _layer, bufs, _span = step
                _tiles6, idx5, gtiles6, gx5, dims = bufs
                c, _h, _w, oh, ow, ph, pw = dims
                if gx5 is None:
                    prof.stop(step[-1], t0)
                    return  # layer 0: serial discards the input gradient
                gtiles6[:k].fill(0)
                np.put_along_axis(
                    gtiles6[:k], idx5[:k][..., None], g[:k][..., None], axis=-1
                )
                gx5[:k].fill(0)
                np.copyto(
                    gx5[:k, :, :, : oh * ph, : ow * pw].reshape(
                        k, n, c, oh, ph, ow, pw
                    ),
                    gtiles6[:k]
                    .reshape(k, n, c, oh, ow, ph, pw)
                    .transpose(0, 1, 2, 3, 5, 4, 6),
                )
                g, gstacked = gx5, True
            elif tag == "flatten":
                _, _i, _layer, in_shape, _span = step
                if gstacked:
                    g = g.reshape((g.shape[0], self.batch) + in_shape)
                else:
                    g = [g[r].reshape((self.batch,) + in_shape) for r in range(k)]
            else:  # perk — the guarded per-replica escape hatch
                _, i, layer, _bufs, _span = step
                layer_caches = caches[i]
                outs = []
                for r in range(k):
                    outs.append(
                        layer.backward(
                            g[r],
                            layer_caches[r],
                            params[r][i],
                            grads[r][i],
                            ws=tasks[r].workspace.per_layer[i],
                        )
                    )
                g, gstacked = outs, False
            prof.stop(step[-1], t0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"ReplicaKernel({self.network.name!r}, kmax={self.kmax}, "
            f"batch={self.batch}, dtype={self.dtype.name})"
        )
