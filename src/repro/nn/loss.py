"""Loss functions: numerically stable softmax cross-entropy.

The paper's networks end in a softmax layer trained with cross-entropy
(Appendix). As is standard, we fuse the two: the network produces
logits, and this module computes both the scalar loss
``f(theta) = mean_i CE(softmax(logits_i), y_i)`` and its gradient with
respect to the logits in one pass, avoiding the overflow-prone explicit
softmax Jacobian.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax over the last axis."""
    with np.errstate(over="ignore"):  # inf spread maps to exp(-inf) = 0
        shifted = logits - logits.max(axis=-1, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=-1, keepdims=True)
    return shifted


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of ``softmax(logits)`` against integer labels.

    Parameters
    ----------
    logits:
        ``(N, K)`` raw scores.
    labels:
        ``(N,)`` integer class labels in ``[0, K)``.

    Returns
    -------
    (loss, dlogits):
        ``loss`` is the scalar mean cross-entropy;
        ``dlogits`` is ``(softmax(logits) - onehot) / N``, the gradient
        of the mean loss with respect to ``logits``.
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, K), got shape {logits.shape}")
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"labels must be (N,) matching logits N={logits.shape[0]}, got {labels.shape}"
        )
    n, k = logits.shape
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ShapeError(f"labels must lie in [0, {k}), got range "
                         f"[{labels.min()}, {labels.max()}]")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(denom)
    rows = np.arange(n)
    loss = float(-log_probs[rows, labels].mean()) if n else 0.0
    dlogits = exp / denom
    dlogits[rows, labels] -= 1.0
    dlogits /= max(n, 1)
    return loss, dlogits


#: ``arange(n)`` row indices per batch size, built once — the in-place
#: loss runs once per simulated SGD step and its batch sizes are few.
_ROW_INDEX_CACHE: dict[int, np.ndarray] = {}


def _row_indices(n: int) -> np.ndarray:
    rows = _ROW_INDEX_CACHE.get(n)
    if rows is None:
        if len(_ROW_INDEX_CACHE) > 64:
            _ROW_INDEX_CACHE.clear()
        rows = _ROW_INDEX_CACHE[n] = np.arange(n)
    return rows


def softmax_cross_entropy_inplace(logits: np.ndarray, labels: np.ndarray) -> float:
    """:func:`softmax_cross_entropy` that turns ``logits`` into the
    gradient in place.

    Performs the exact same floating-point operations in the same order,
    so the loss and the gradient left in ``logits`` are bitwise
    identical to the allocating version — but the only allocations are
    ``O(N)`` row statistics, never a second ``(N, K)`` array. Used by
    ``Network.loss_and_grad`` on the workspace path, where ``logits``
    is the final layer's output buffer and doubles as the gradient
    conduit for the backward pass.
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, K), got shape {logits.shape}")
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"labels must be (N,) matching logits N={logits.shape[0]}, got {labels.shape}"
        )
    n, k = logits.shape
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ShapeError(f"labels must lie in [0, {k}), got range "
                         f"[{labels.min()}, {labels.max()}]")
    np.subtract(logits, logits.max(axis=1, keepdims=True), out=logits)  # shifted
    rows = _row_indices(n)
    picked = logits[rows, labels]  # fancy indexing copies: survives the exp
    np.exp(logits, out=logits)  # exp
    denom = logits.sum(axis=1, keepdims=True)
    loss = float(-(picked - np.log(denom[:, 0])).mean()) if n else 0.0
    logits /= denom  # dlogits
    logits[rows, labels] -= 1.0
    logits /= max(n, 1)
    return loss


def cross_entropy_from_probs(probs: np.ndarray, labels: np.ndarray, *, eps: float = 1e-12) -> float:
    """Mean cross-entropy when you already hold probabilities (used for
    evaluation of a Softmax-terminated inference stack)."""
    if probs.ndim != 2:
        raise ShapeError(f"probs must be (N, K), got shape {probs.shape}")
    labels = np.asarray(labels)
    rows = np.arange(probs.shape[0])
    picked = np.clip(probs[rows, labels], eps, 1.0)
    return float(-np.log(picked).mean()) if probs.shape[0] else 0.0
