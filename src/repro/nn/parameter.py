"""Flat parameter layout: named tensors mapped onto one 1-D array.

This is the bookkeeping behind the paper's ParameterVector abstraction:
every learnable tensor of a network occupies a contiguous slice of a
single flat array of dimension ``d``, and is accessed as a zero-copy
reshaped view. Keeping everything flat is what lets the parallel SGD
algorithms treat the whole model as a single bulk-updatable object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class ParamSlot:
    """One named tensor's placement inside the flat vector.

    ``size`` and ``stop`` are precomputed at construction: slot lookups
    sit on the per-step gradient path (every layer's parameter views are
    taken from them on each forward/backward), where recomputing
    ``prod(shape)`` per access showed up as measurable overhead.
    """

    name: str
    offset: int
    shape: tuple[int, ...]
    #: Number of scalar parameters in this slot.
    size: int = field(init=False)
    #: One past the last flat index of this slot.
    stop: int = field(init=False)

    def __post_init__(self) -> None:
        size = math.prod(self.shape) if self.shape else 1
        object.__setattr__(self, "size", size)
        object.__setattr__(self, "stop", self.offset + size)


class ParameterLayout:
    """Assigns contiguous flat slices to named tensors.

    >>> layout = ParameterLayout()
    >>> w = layout.add("dense0/W", (3, 2))
    >>> b = layout.add("dense0/b", (2,))
    >>> layout.total_size
    8
    """

    def __init__(self) -> None:
        self._slots: list[ParamSlot] = []
        self._by_name: dict[str, ParamSlot] = {}
        self._total = 0

    def add(self, name: str, shape: tuple[int, ...]) -> ParamSlot:
        """Append a tensor named ``name`` with ``shape``; returns its slot."""
        if name in self._by_name:
            raise ShapeError(f"duplicate parameter name {name!r}")
        if any(s <= 0 for s in shape):
            raise ShapeError(f"parameter {name!r} has non-positive dims: {shape}")
        slot = ParamSlot(name, self._total, tuple(int(s) for s in shape))
        self._slots.append(slot)
        self._by_name[name] = slot
        self._total += slot.size
        return slot

    @property
    def total_size(self) -> int:
        """The model dimension ``d``."""
        return self._total

    def view(self, theta: np.ndarray, slot: ParamSlot) -> np.ndarray:
        """Zero-copy reshaped view of ``slot`` within flat ``theta``."""
        if theta.ndim != 1 or theta.size < slot.stop:
            raise ShapeError(
                f"theta must be 1-D with size >= {slot.stop}, got shape {theta.shape}"
            )
        return theta[slot.offset : slot.stop].reshape(slot.shape)

    def views(self, theta: np.ndarray) -> dict[str, np.ndarray]:
        """All slots' views, keyed by name."""
        return {slot.name: self.view(theta, slot) for slot in self._slots}

    def slot(self, name: str) -> ParamSlot:
        """Look up a slot by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ShapeError(f"unknown parameter name {name!r}") from None

    def __iter__(self) -> Iterator[ParamSlot]:
        return iter(self._slots)

    def __len__(self) -> int:
        return len(self._slots)
