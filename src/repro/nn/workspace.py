"""Per-worker preallocated step workspace.

``Network.loss_and_grad`` used to allocate every forward activation,
backward cache and im2col scratch array afresh on each call — dozens of
NumPy allocations per gradient, executed once per simulated SGD step by
every worker. A :class:`StepWorkspace` sizes all of those buffers once
(from the network's built shapes and a fixed batch size) and threads
them through the layers, so the steady-state gradient computation
allocates nothing and reuses cache-warm memory.

Guarantees:

* **Bitwise-identical results.** Every buffered operation performs the
  same floating-point computation as the allocating path (``out=``
  variants of the same ufuncs/matmuls in the same order), so a run with
  a workspace produces exactly the gradients a run without one does —
  enforced by ``tests/nn/test_workspace.py``.
* **One workspace, one caller.** Buffers are reused across calls and
  across forward/backward, so a workspace must never be shared between
  concurrently-active gradient computations. In the simulator each
  worker owns one (created in ``DLProblem.make_grad_fn``), which also
  matches the paper's per-thread memory story.
* **Fixed batch size.** Buffers are sized for exactly ``batch_size``
  samples; ``loss_and_grad`` falls back to the allocating path (it does
  not fail) when handed a batch of any other size or dtype — e.g. the
  convergence monitor's held-out evaluations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StepWorkspace"]


class StepWorkspace:
    """All scratch buffers one worker needs for ``loss_and_grad``.

    Construct via :meth:`repro.nn.network.Network.make_workspace`; the
    per-layer buffer dictionaries are built by each layer's
    ``make_workspace`` hook (``None`` for layers that need no scratch).
    """

    #: Max distinct flat vectors whose slot views are cached. Leashed
    #: workers compute gradients on pooled published payloads, of which
    #: at most ~3m are live (Lemma 2), so the cache converges to a small
    #: steady state with the arena on; the cap bounds what the cache can
    #: pin when callers hand it a fresh buffer every step instead.
    VIEW_CACHE_CAP = 32

    def __init__(self, network, batch_size: int, *, dtype: np.dtype | type = np.float32) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        self.batch_size = int(batch_size)
        self.dtype = np.dtype(dtype)
        self.network_name = network.name
        self.per_layer: list[dict[str, np.ndarray] | None] = [
            layer.make_workspace(self.batch_size, in_shape, out_shape, self.dtype)
            for layer, (in_shape, out_shape) in zip(network.layers, network.layer_shapes)
        ]
        self._view_cache: dict[int, tuple[np.ndarray, list]] = {}

    def cached_views(self, arr: np.ndarray, build) -> list:
        """Memoized ``build(arr)``, keyed by buffer identity.

        The per-layer parameter/gradient slot views of a flat vector
        depend only on which buffer backs it, and the buffers a worker
        sees are few and recycled (its own grad buffer, the arena's
        pooled payloads) — so the reshaped views are built once per
        buffer instead of once per gradient call. Entries hold a
        reference to the buffer, which makes ``id`` keys collision-safe:
        a cached id cannot be reused by a different array while its
        entry is alive. The identity re-check guards the post-``clear``
        case anyway.
        """
        entry = self._view_cache.get(id(arr))
        if entry is None or entry[0] is not arr:
            if len(self._view_cache) >= self.VIEW_CACHE_CAP:
                self._view_cache.clear()
            entry = (arr, build(arr))
            self._view_cache[id(arr)] = entry
        return entry[1]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the preallocated buffers."""
        return sum(
            buf.nbytes
            for ws in self.per_layer
            if ws is not None
            for buf in ws.values()
        )

    def matches(self, n: int, dtype: np.dtype) -> bool:
        """Whether this workspace fits a batch of ``n`` samples of ``dtype``."""
        return n == self.batch_size and np.dtype(dtype) == self.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (
            f"StepWorkspace({self.network_name!r}, batch={self.batch_size}, "
            f"dtype={self.dtype.name}, {self.nbytes / 1e6:.2f} MB)"
        )
