"""The network container: a pure function of ``(batch, theta)``.

A :class:`Network` is a sequential stack of layers plus a
:class:`repro.nn.parameter.ParameterLayout` binding every layer's
tensors to slices of one flat vector. It owns no weights: callers pass
``theta`` (and receive/supply flat gradient buffers), which is exactly
the interface the parallel SGD algorithms need to run the same model
against shared, private, or freshly published ParameterVector instances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.nn.loss import softmax, softmax_cross_entropy, softmax_cross_entropy_inplace
from repro.nn.parameter import ParameterLayout, ParamSlot


class Network:
    """Sequential feed-forward network over a flat parameter vector.

    Parameters
    ----------
    layers:
        The layer stack, ending in a layer producing ``(N, K)`` logits
        (no terminal Softmax — training fuses softmax+CE; use
        :meth:`predict_proba` for probabilities).
    input_shape:
        Per-sample input shape, e.g. ``(784,)`` or ``(1, 28, 28)``.
    name:
        Cosmetic identifier used in reports.
    """

    def __init__(
        self, layers: Sequence[Layer], input_shape: tuple[int, ...], *, name: str = "net"
    ) -> None:
        if not layers:
            raise ShapeError("Network requires at least one layer")
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(int(s) for s in input_shape)
        self.layout = ParameterLayout()
        self._layer_slots: list[list[ParamSlot]] = []
        self._layer_shapes: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        shape = self.input_shape
        for i, layer in enumerate(self.layers):
            in_shape = shape
            shape = layer.build(shape)
            self._layer_shapes.append((in_shape, shape))
            slots = [
                self.layout.add(f"{layer.kind}{i}/{pname}", pshape)
                for pname, pshape in layer.param_shapes
            ]
            self._layer_slots.append(slots)
        self.output_shape = shape

    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Model dimension ``d`` — size of the flat parameter vector."""
        return self.layout.total_size

    @property
    def layer_shapes(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Per-layer ``(in_shape, out_shape)`` (per-sample, no batch axis)."""
        return list(self._layer_shapes)

    def make_workspace(self, batch_size: int, *, dtype: np.dtype | type = np.float32):
        """Preallocated scratch for :meth:`loss_and_grad` at a fixed
        batch size (see :class:`repro.nn.workspace.StepWorkspace`)."""
        from repro.nn.workspace import StepWorkspace  # local import avoids a cycle

        return StepWorkspace(self, batch_size, dtype=dtype)

    def _params_for(self, theta: np.ndarray, i: int) -> list[np.ndarray]:
        return [self.layout.view(theta, slot) for slot in self._layer_slots[i]]

    def _all_param_views(self, flat: np.ndarray) -> list[list[np.ndarray]]:
        """Every layer's slot views of one flat vector (theta or grad)."""
        view = self.layout.view
        return [[view(flat, slot) for slot in slots] for slots in self._layer_slots]

    def _check_theta(self, theta: np.ndarray) -> np.ndarray:
        theta = np.asarray(theta)
        if theta.ndim != 1 or theta.size != self.n_params:
            raise ShapeError(
                f"theta must be 1-D of size {self.n_params}, got shape {theta.shape}"
            )
        return theta

    def init_theta(
        self,
        rng: np.random.Generator,
        *,
        scheme: str = "normal",
        std: float = 0.1,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Fresh flat parameter vector (see :mod:`repro.nn.init`)."""
        from repro.nn.init import INITIALIZERS  # local import avoids a cycle

        if scheme not in INITIALIZERS:
            raise ShapeError(f"unknown init scheme {scheme!r}; choices: {sorted(INITIALIZERS)}")
        if scheme == "normal":
            return INITIALIZERS[scheme](self.layout, rng, std=std, dtype=dtype)
        return INITIALIZERS[scheme](self.layout, rng, dtype=dtype)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Logits for batch ``x`` under parameters ``theta``."""
        theta = self._check_theta(theta)
        out = np.asarray(x, dtype=theta.dtype)
        for i, layer in enumerate(self.layers):
            out, _ = layer.forward(out, self._params_for(theta, i))
        return out

    def loss(self, x: np.ndarray, y: np.ndarray, theta: np.ndarray) -> float:
        """Mean softmax cross-entropy of the batch (the paper's f(theta))."""
        logits = self.forward(x, theta)
        value, _ = softmax_cross_entropy(logits, y)
        return value

    def loss_and_grad(
        self,
        x: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        *,
        grad_out: np.ndarray | None = None,
        workspace=None,
    ) -> tuple[float, np.ndarray]:
        """Loss and flat gradient ``df/dtheta`` for the batch.

        ``grad_out`` may supply a pre-allocated flat buffer of size
        ``d`` (reused across iterations by the SGD workers to avoid
        repeated allocation — the guide's "be easy on the memory").

        ``workspace`` may supply a :class:`~repro.nn.workspace.StepWorkspace`
        (from :meth:`make_workspace`) holding every intermediate buffer;
        results are bitwise identical with or without it. A workspace
        sized for a different batch size or dtype is silently ignored
        (the monitor's held-out evaluations take the allocating path).
        """
        theta = self._check_theta(theta)
        if grad_out is None:
            grad_out = np.empty(self.n_params, dtype=theta.dtype)
        elif grad_out.shape != (self.n_params,):
            raise ShapeError(
                f"grad_out must have shape ({self.n_params},), got {grad_out.shape}"
            )
        activations = np.asarray(x, dtype=theta.dtype)
        use_ws = workspace is not None and workspace.matches(activations.shape[0], theta.dtype)
        if use_ws:
            per_layer_ws = workspace.per_layer
            # Slot views are pure functions of the backing buffer, and a
            # worker cycles through few buffers (its grad buffer, the
            # arena's pooled payloads) — memoize them per buffer.
            per_layer_params = workspace.cached_views(theta, self._all_param_views)
            per_layer_grads = workspace.cached_views(grad_out, self._all_param_views)
        else:
            per_layer_ws = [None] * len(self.layers)
            per_layer_params = [self._params_for(theta, i) for i in range(len(self.layers))]
            per_layer_grads = [
                [self.layout.view(grad_out, slot) for slot in slots]
                for slots in self._layer_slots
            ]
        caches = []
        for i, layer in enumerate(self.layers):
            activations, cache = layer.forward(
                activations, per_layer_params[i], ws=per_layer_ws[i]
            )
            caches.append(cache)
        if use_ws:
            # The final logits buffer doubles as the gradient conduit.
            loss_value = softmax_cross_entropy_inplace(activations, y)
            grad = activations
        else:
            loss_value, grad = softmax_cross_entropy(activations, y)
        for i in range(len(self.layers) - 1, -1, -1):
            grad = self.layers[i].backward(
                grad, caches[i], per_layer_params[i], per_layer_grads[i], ws=per_layer_ws[i]
            )
        return loss_value, grad_out

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Class probabilities (softmax over the logits)."""
        return softmax(self.forward(x, theta))

    def predict(self, x: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.forward(x, theta), axis=-1)

    def accuracy(self, x: np.ndarray, y: np.ndarray, theta: np.ndarray) -> float:
        """Fraction of the batch classified correctly."""
        y = np.asarray(y)
        if y.size == 0:
            return float("nan")
        return float(np.mean(self.predict(x, theta) == y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Network({self.name!r}, d={self.n_params}, layers=[{inner}])"
