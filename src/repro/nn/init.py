"""Weight initializers.

Algorithm 1's ``rand_init()`` draws ``theta ~ N(0, 0.01)`` — i.e. a
zero-mean normal with *variance* 0.01 (std 0.1) over the whole flat
vector; :func:`normal_init` is the faithful default. He and Xavier
initializers are provided for the extension experiments (they are the
modern defaults for ReLU / linear stacks respectively and markedly
improve trainability of the deeper configurations).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.parameter import ParameterLayout
from repro.utils.validation import check_positive


def normal_init(
    layout: ParameterLayout,
    rng: np.random.Generator,
    *,
    std: float = 0.1,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Flat theta with every entry ``~ N(0, std**2)`` (paper default)."""
    check_positive("std", std)
    return rng.normal(0.0, std, size=layout.total_size).astype(dtype, copy=False)


def he_init(
    layout: ParameterLayout,
    rng: np.random.Generator,
    *,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """He-normal per weight tensor (``std = sqrt(2 / fan_in)``); biases zero."""
    theta = np.zeros(layout.total_size, dtype=dtype)
    for slot in layout:
        view = layout.view(theta, slot)
        if slot.name.endswith("/b"):
            continue
        fan_in = int(np.prod(slot.shape[:-1])) if len(slot.shape) > 1 else slot.shape[0]
        std = math.sqrt(2.0 / max(fan_in, 1))
        view[...] = rng.normal(0.0, std, size=slot.shape)
    return theta


def xavier_init(
    layout: ParameterLayout,
    rng: np.random.Generator,
    *,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Glorot-uniform per weight tensor; biases zero."""
    theta = np.zeros(layout.total_size, dtype=dtype)
    for slot in layout:
        view = layout.view(theta, slot)
        if slot.name.endswith("/b"):
            continue
        if len(slot.shape) > 1:
            fan_in = int(np.prod(slot.shape[:-1]))
            fan_out = slot.shape[-1]
        else:
            fan_in = fan_out = slot.shape[0]
        bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
        view[...] = rng.uniform(-bound, bound, size=slot.shape)
    return theta


INITIALIZERS = {
    "normal": normal_init,
    "he": he_init,
    "xavier": xavier_init,
}
