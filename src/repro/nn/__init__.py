"""From-scratch NumPy deep-learning substrate (the paper's MiniDNN role).

The defining design decision — mirroring the paper's "substantial
refactoring ... extracting all learnable parameters into a collective
data structure" — is that a network here *owns no parameters*. All
weights live in one externally supplied flat 1-D array ``theta`` (the
ParameterVector payload); layers read their weights through zero-copy
reshaped views, and backprop writes gradients into a caller-provided
flat buffer. This makes the network a pure function
``(x, theta) -> loss, grad`` that any of the parallel SGD algorithms in
:mod:`repro.core` can drive against whichever shared / private vector
their synchronization protocol dictates.
"""

from repro.nn.parameter import ParameterLayout
from repro.nn.network import Network
from repro.nn.workspace import StepWorkspace
from repro.nn.loss import softmax_cross_entropy, softmax_cross_entropy_inplace, softmax
from repro.nn.layers import Dense, ReLU, Flatten, Conv2D, MaxPool2D, Dropout
from repro.nn.init import normal_init, he_init, xavier_init
from repro.nn.architectures import mlp_mnist, cnn_mnist, mlp_custom, MLP_DIMENSION, CNN_DIMENSION

__all__ = [
    "ParameterLayout",
    "Network",
    "StepWorkspace",
    "softmax_cross_entropy",
    "softmax_cross_entropy_inplace",
    "softmax",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2D",
    "MaxPool2D",
    "Dropout",
    "normal_init",
    "he_init",
    "xavier_init",
    "mlp_mnist",
    "cnn_mnist",
    "mlp_custom",
    "MLP_DIMENSION",
    "CNN_DIMENSION",
]
