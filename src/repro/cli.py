"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One configured execution, printed as a metric table (optionally
    archived as JSON).
``experiment``
    One of the paper's experiment steps (s1, s1-eta, s2, s3, s4, s5),
    rendering the corresponding figures as text.
``table1``
    Print the paper's Table I with the implementing functions.
``calibrate``
    Measure real NumPy kernel times for the MLP/CNN workloads and print
    the resulting cost models (Fig. 9's data).
``analyze``
    Run with the telemetry probes attached and print the Section-IV
    validation measurements (occupancy vs n*/n*_gamma, the eq.-6
    staleness split, phase breakdown, CAS contention); optionally
    export/import JSONL and gate on Cor. 3.2 with ``--smoke``.
``trace``
    Record one run's per-thread execution timeline and export it as
    Chrome-trace JSON (open in Perfetto / ``chrome://tracing``), with
    an optional pure-SVG swimlane fallback.
``bench-history``
    Merge the ``BENCH_*.json`` headline numbers into a trajectory file
    and exit nonzero when the current numbers regress past the previous
    recorded entry (the CI performance gate); warns when the previous
    entry was recorded under different provenance (host/cpus/pool mode).
``db``
    The queryable result store: ``db ingest`` loads result JSONL files,
    service run directories, and ``BENCH_history.jsonl`` into a SQLite
    database (content-addressed — re-ingest is a no-op); ``db stats``
    summarizes what the store holds.
``report``
    With ``--db``, build the living Section-V report from an ingested
    store: a self-contained static HTML page with Mann-Whitney U /
    Vargha-Delaney A12 / bootstrap-CI comparison tables, embedded SVG
    figures, failure counts, and the benchmark trajectory. Without
    ``--db``, assemble the legacy markdown reproduction report.

Examples
--------
    python -m repro run --algorithm LSH_ps1 --m 16 --workload mlp
    python -m repro experiment s2 --profile quick
    python -m repro calibrate
    python -m repro analyze --algorithm LSH_ps1 --m 8 --jsonl runs.jsonl
    python -m repro analyze --smoke --tolerance 0.5
    python -m repro trace --algorithm LSH_psinf --m 4 --out trace.json --svg trace.svg
    python -m repro bench-history --record --label "$(git rev-parse --short HEAD)"
    python -m repro db ingest runs.jsonl service_run/ --db results.sqlite
    python -m repro report --db results.sqlite --out report.html
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.harness.config import RunConfig, Workloads, get_profile
from repro.harness.runner import run_once
from repro.utils.tables import render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leashed-SGD reproduction (IPDPS 2021) command-line runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one configured execution")
    run_p.add_argument("--algorithm", default="LSH_psinf",
                       help="SEQ | ASYNC | HOG | SYNC | LSH_ps<k> | LSH_psinf | LSH_ADAPT")
    run_p.add_argument("--m", type=int, default=8, help="worker threads")
    run_p.add_argument("--eta", type=float, default=None, help="step size")
    run_p.add_argument("--workload", default="quadratic",
                       choices=("quadratic", "mlp", "cnn"))
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--profile", default=None, choices=(None, "quick", "paper"))
    run_p.add_argument("--target-eps", type=float, default=None,
                       help="stop threshold as a fraction of the initial loss")
    run_p.add_argument("--json", default=None, metavar="PATH",
                       help="archive the RunResult as JSON")
    run_p.add_argument("--self-profile", action="store_true",
                       help="time the harness's own hot spots (scheduler loop, "
                            "kernels, arena) and print the span profile")

    exp_p = sub.add_parser("experiment", help="run a paper experiment step")
    exp_p.add_argument("step", nargs="?", default=None,
                       choices=("s1", "s1-eta", "s2", "s3", "s4", "s5"),
                       help="required unless --resume supplies a run directory")
    exp_p.add_argument("--profile", default=None, choices=(None, "quick", "paper"))
    exp_p.add_argument("--run-dir", default=None, metavar="DIR",
                       help="durable service run directory: journal every "
                            "task and completed run so a killed sweep can be "
                            "restarted with --resume (default: in-memory)")
    exp_p.add_argument("--resume", default=None, metavar="DIR",
                       help="resume a killed/interrupted sweep from its run "
                            "directory (step and profile come from its "
                            "manifest); only unfinished boxes re-execute")
    exp_p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-parallel runs (-1: all cores; default: "
                            "REPRO_WORKERS or serial)")
    exp_p.add_argument("--replicas", type=int, default=None, metavar="K",
                       help="lockstep replica cohort size: batch each cell's "
                            "repeat seeds into stacked kernels (default: "
                            "REPRO_REPLICAS or 1)")
    exp_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed run cache: serve already-"
                            "computed (config, problem) cells from DIR and "
                            "store new ones (default: REPRO_CACHE_DIR or "
                            "no caching)")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="disable the run cache even when --cache-dir or "
                            "REPRO_CACHE_DIR is set")
    exp_p.add_argument("--no-progress", action="store_true",
                       help="suppress the live progress heartbeat on stderr")

    trace_p = sub.add_parser(
        "trace",
        help="record one run's execution timeline and export it as "
             "Chrome-trace JSON (open in Perfetto / chrome://tracing)",
    )
    trace_p.add_argument("--algorithm", default="LSH_psinf",
                         help="SEQ | ASYNC | HOG | SYNC | LSH_ps<k> | LSH_psinf")
    trace_p.add_argument("--m", type=int, default=4, help="worker threads")
    trace_p.add_argument("--eta", type=float, default=None, help="step size")
    trace_p.add_argument("--workload", default="quadratic",
                         choices=("quadratic", "mlp", "cnn"))
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument("--profile", default=None, choices=(None, "quick", "paper"))
    trace_p.add_argument("--max-updates", type=int, default=None,
                         help="cap the run length (traces grow with updates)")
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="chrome-trace JSON output path")
    trace_p.add_argument("--svg", default=None, metavar="PATH",
                         help="also render the no-browser SVG swimlane chart")
    trace_p.add_argument("--service", default=None, metavar="RUN_DIR",
                         help="instead of simulating, export the queue-"
                              "lifecycle timeline of an experiment-service "
                              "run directory (written by finalize)")

    hist_p = sub.add_parser(
        "bench-history",
        help="merge BENCH_*.json headlines into a trajectory and gate on "
             "regressions vs the previous entry",
    )
    hist_p.add_argument("--bench-dir", default=".", metavar="DIR",
                        help="directory holding the BENCH_*.json files")
    hist_p.add_argument("--history", default=None, metavar="PATH",
                        help="trajectory JSONL (default: <bench-dir>/BENCH_history.jsonl)")
    hist_p.add_argument("--max-drop", type=float, default=None, metavar="FRAC",
                        help="regression threshold as a fractional drop (default 0.15)")
    hist_p.add_argument("--record", action="store_true",
                        help="append the current headlines to the trajectory")
    hist_p.add_argument("--label", default="", metavar="TEXT",
                        help="label for the recorded entry (e.g. a git SHA)")
    hist_p.add_argument("--report", default=None, metavar="PATH",
                        help="write the markdown trajectory report here")

    sub.add_parser("table1", help="print the paper's Table I")
    sub.add_parser("calibrate", help="measure real kernel times (Fig 9)")

    fig_p = sub.add_parser("figures", help="render the paper's figures as SVG")
    fig_p.add_argument("--out", default="figures", metavar="DIR")
    fig_p.add_argument("--seed", type=int, default=77)

    sweep_p = sub.add_parser("sweep", help="run a custom algorithm/m/eta grid")
    sweep_p.add_argument("--algorithms", default="ASYNC,HOG,LSH_ps0",
                         help="comma-separated algorithm names")
    sweep_p.add_argument("--m", default="4,16", help="comma-separated thread counts")
    sweep_p.add_argument("--etas", default="0.05", help="comma-separated step sizes")
    sweep_p.add_argument("--repeats", type=int, default=3)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument("--workload", default="quadratic",
                         choices=("quadratic", "mlp", "cnn"))
    sweep_p.add_argument("--target-eps", type=float, default=0.1)
    sweep_p.add_argument("--workers", type=int, default=None, metavar="N",
                         help="process-parallel runs (-1: all cores; default: "
                              "REPRO_WORKERS or serial)")
    sweep_p.add_argument("--replicas", type=int, default=None, metavar="K",
                         help="lockstep replica cohort size: batch each cell's "
                              "repeat seeds into stacked kernels (default: "
                              "REPRO_REPLICAS or 1)")
    sweep_p.add_argument("--json", default=None, metavar="PATH")

    ana_p = sub.add_parser(
        "analyze",
        help="run with telemetry probes and validate Section IV predictions",
    )
    ana_p.add_argument("--algorithm", default="LSH_ps1",
                       help="SEQ | ASYNC | HOG | SYNC | LSH_ps<k> | LSH_psinf")
    ana_p.add_argument("--m", type=int, default=8, help="worker threads")
    ana_p.add_argument("--eta", type=float, default=None, help="step size")
    ana_p.add_argument("--workload", default="quadratic",
                       choices=("quadratic", "mlp", "cnn"))
    ana_p.add_argument("--seed", type=int, default=0)
    ana_p.add_argument("--profile", default=None, choices=(None, "quick", "paper"))
    ana_p.add_argument("--probes", default=None, metavar="NAMES",
                       help="comma-separated probe names (default: all registered)")
    ana_p.add_argument("--jsonl", default=None, metavar="PATH",
                       help="append the run to a JSONL results file")
    ana_p.add_argument("--from-jsonl", dest="from_jsonl", default=None, metavar="PATH",
                       help="analyze archived runs instead of running")
    ana_p.add_argument("--svg", default=None, metavar="PATH",
                       help="render measured occupancy vs n*/n*_gamma as SVG")
    ana_p.add_argument("--smoke", action="store_true",
                       help="exit nonzero unless measured steady-state occupancy "
                            "is within --tolerance of n*_gamma (Cor. 3.2)")
    ana_p.add_argument("--tolerance", type=float, default=0.5, metavar="FRAC",
                       help="allowed relative deviation for --smoke (default 0.5)")
    ana_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="serve/store this run via the content-addressed "
                            "run cache (default: REPRO_CACHE_DIR or no "
                            "caching)")
    ana_p.add_argument("--no-cache", action="store_true",
                       help="disable the run cache even when --cache-dir or "
                            "REPRO_CACHE_DIR is set")

    report_p = sub.add_parser(
        "report",
        help="build the statistical HTML report from a result store "
             "(--db), or the legacy paper-vs-measured markdown from "
             "benchmarks/rendered/",
    )
    report_p.add_argument("--rendered", default="benchmarks/rendered", metavar="DIR")
    report_p.add_argument("--out", default="reproduction_report.md", metavar="PATH",
                          help="output path (default report.html in --db mode)")
    report_p.add_argument("--profile", default="quick")
    report_p.add_argument("--db", default=None, metavar="FILE",
                          help="build the self-contained HTML report from "
                               "this SQLite result store instead")
    report_p.add_argument("--eps", type=float, default=None, metavar="EPS",
                          help="comparison threshold (default: the most "
                               "common target epsilon in the store)")
    report_p.add_argument("--boot", type=int, default=2000, metavar="N",
                          help="bootstrap resamples for the CIs")
    report_p.add_argument("--seed", type=int, default=0,
                          help="bootstrap seed (pins the report bytes)")
    report_p.add_argument("--generated-at", default=None, metavar="TEXT",
                          help="footer timestamp text (default: current UTC "
                               "time; pin it for byte-identical rebuilds)")

    db_p = sub.add_parser(
        "db", help="the queryable SQLite result store (ROADMAP item 2)"
    )
    db_sub = db_p.add_subparsers(dest="db_command", required=True)
    ing_p = db_sub.add_parser(
        "ingest",
        help="ingest JSONL results, service run dirs, BENCH_history "
             "trajectories and trace JSON into the store (idempotent)",
    )
    ing_p.add_argument("paths", nargs="+", metavar="PATH",
                       help="results .jsonl / service run dir / "
                            "BENCH_history.jsonl / trace .json")
    ing_p.add_argument("--db", default="results.sqlite", metavar="FILE")
    stats_p = db_sub.add_parser("stats", help="summarize what the store holds")
    stats_p.add_argument("--db", default="results.sqlite", metavar="FILE")
    return parser


def _cmd_run(args) -> int:
    workloads = Workloads(get_profile(args.profile))
    problem = workloads.problem(args.workload)
    cost = workloads.cost(args.workload)
    profile = workloads.profile
    epsilons = (
        profile.mlp_epsilons if args.workload == "mlp"
        else profile.cnn_epsilons if args.workload == "cnn"
        else (0.5, 0.1, 0.01)
    )
    target = args.target_eps if args.target_eps is not None else min(epsilons)
    if target not in epsilons:
        epsilons = tuple(sorted(set(epsilons) | {target}, reverse=True))
    eta = args.eta if args.eta is not None else (
        profile.default_eta if args.workload in ("mlp", "cnn") else 0.05
    )
    config = RunConfig(
        algorithm=args.algorithm,
        m=args.m,
        eta=eta,
        seed=args.seed,
        epsilons=epsilons,
        target_epsilon=target,
        max_updates=profile.max_updates,
        max_virtual_time=profile.max_virtual_time,
        max_wall_seconds=profile.max_wall_seconds,
        self_profile=args.self_profile,
    )
    result = run_once(problem, cost, config)
    rows = [
        ["status", result.status.value],
        ["virtual time [s]", result.virtual_time],
        ["updates published", result.n_updates],
        ["gradients dropped", result.n_dropped],
        ["time / update [s]", result.time_per_update],
        ["mean staleness", result.staleness["mean"]],
        ["p90 staleness", result.staleness["p90"]],
        ["CAS failure rate", result.cas_failure_rate],
        ["mean lock wait [s]", result.mean_lock_wait],
        ["peak ParameterVectors", result.peak_pv_count],
        ["peak memory [MB]", result.peak_pv_bytes / 1e6],
        ["final loss", result.report.final_loss],
        ["final accuracy", result.final_accuracy],
        ["wall time [s]", result.wall_seconds],
    ]
    for eps in sorted(config.epsilons, reverse=True):
        rows.append([f"time to {eps:.1%}", result.time_to(eps)])
        rows.append([f"updates to {eps:.1%}", result.updates_to(eps)])
    print(
        render_table(
            ["metric", "value"], rows,
            title=f"{args.algorithm} on {args.workload}, m={args.m}, eta={eta:g}, seed={args.seed}",
        )
    )
    phases = result.wall_phases
    print(render_table(
        ["phase", "wall s"],
        [[name, f"{seconds:.4g}"] for name, seconds in phases.items()],
        title="wall-time split",
    ))
    if args.self_profile and result.profile:
        print(render_table(
            ["span", "calls", "total s", "mean us", "max us"],
            [
                [name, s["count"], f"{s['total_s']:.4g}",
                 f"{s['mean_s'] * 1e6:.2f}", f"{s['max_s'] * 1e6:.2f}"]
                for name, s in result.profile.items()
            ],
            title="self-profile (harness wall clock, not simulated time)",
        ))
    if args.json:
        from repro.utils.serialization import save_results

        path = save_results(result, args.json)
        print(f"\nresult archived to {path}")
    return 0 if result.status.value == "converged" else 1


def _cmd_experiment(args) -> int:
    from repro.harness import experiments as exp
    from repro.harness.cache import RunCache, resolve_cache_dir
    from repro.harness.progress import ProgressReporter
    from repro.service import ExperimentService, load_manifest

    step, run_dir = args.step, args.run_dir
    profile_name = args.profile
    if args.resume:
        if run_dir is not None and run_dir != args.resume:
            print("experiment: --resume already names the run directory; "
                  "drop --run-dir", file=sys.stderr)
            return 2
        run_dir = args.resume
        manifest = load_manifest(run_dir)
        step = step or manifest.get("step")
        profile_name = profile_name or manifest.get("profile")
    if step is None:
        print("experiment: a step (s1..s5) is required unless --resume "
              "names a run directory", file=sys.stderr)
        return 2
    workloads = Workloads(get_profile(profile_name))
    fn = {
        "s1": exp.s1_scalability,
        "s1-eta": exp.s1_stepsize,
        "s2": exp.s2_high_precision,
        "s3": exp.s3_cnn,
        "s4": exp.s4_high_parallelism,
        "s5": exp.s5_memory,
    }[step]
    cache_dir = resolve_cache_dir(args.cache_dir, no_cache=args.no_cache)
    cache = RunCache(cache_dir) if cache_dir is not None else None
    # Every step flows through the experiment service: a durable queue
    # when --run-dir/--resume name a directory, the same machinery
    # in-memory otherwise. The service owns the persistent pool.
    with ExperimentService(
        run_dir, workers=args.workers, replicas=args.replicas, cache=cache,
        manifest={"step": step, "profile": workloads.profile.name},
    ) as service:
        if args.no_progress:
            result = fn(workloads, service=service)
        else:
            with ProgressReporter() as heartbeat:
                result = fn(workloads, progress=heartbeat, service=service)
        summary = service.finalize()
    print(result)
    stats = summary["service"]
    print(f"service: {summary['n_tasks']} tasks / {summary['n_runs']} runs — "
          f"{stats['tasks_executed']} executed / "
          f"{stats['tasks_from_cache']} from cache / "
          f"{stats['tasks_from_journal']} resumed / "
          f"{stats['tasks_requeued']} requeued")
    if cache is not None:
        print(f"cache: {cache.stats} ({cache_dir})")
    if run_dir is not None:
        print(f"run dir: {run_dir} — merged.jsonl + summary.json "
              f"(fingerprint {summary['merged_fingerprint'][:16]})")
    return 0


def _cmd_trace(args) -> int:
    from repro.observe.timeline import export_chrome_trace, validate_chrome_trace

    if args.service:
        import json
        from pathlib import Path

        src = Path(args.service) / "service_timeline.json"
        if not src.exists():
            print(f"trace: {src} not found — finalize the service run first "
                  "(`repro experiment ... --run-dir` writes it on exit)",
                  file=sys.stderr)
            return 2
        timeline = json.loads(src.read_text())
        path = export_chrome_trace(timeline, args.out)
        summary = validate_chrome_trace(timeline)
        print(f"wrote {path} — {summary['n_events']} events on "
              f"{summary['n_tracks']} tracks ({summary['n_spans']} spans, "
              f"{summary['n_instants']} instants); service run {args.service}")
        if args.svg:
            print("note: --svg applies to simulation traces; skipped for "
                  "--service")
        return 0

    workloads = Workloads(get_profile(args.profile))
    problem = workloads.problem(args.workload)
    cost = workloads.cost(args.workload)
    profile = workloads.profile
    epsilons = (
        profile.mlp_epsilons if args.workload == "mlp"
        else profile.cnn_epsilons if args.workload == "cnn"
        else (0.5, 0.1)
    )
    eta = args.eta if args.eta is not None else (
        profile.default_eta if args.workload in ("mlp", "cnn") else 0.05
    )
    config = RunConfig(
        algorithm=args.algorithm,
        m=args.m,
        eta=eta,
        seed=args.seed,
        epsilons=epsilons,
        target_epsilon=min(epsilons),
        max_updates=args.max_updates or profile.max_updates,
        max_virtual_time=profile.max_virtual_time,
        max_wall_seconds=profile.max_wall_seconds,
        probes=("timeline",),
    )
    result = run_once(problem, cost, config)
    timeline = result.metrics.probe("timeline")
    path = export_chrome_trace(timeline, args.out)
    summary = validate_chrome_trace(timeline)
    print(f"wrote {path} — {summary['n_events']} events on "
          f"{summary['n_tracks']} tracks ({summary['n_spans']} spans, "
          f"{summary['n_instants']} instants); status {result.status.value}")
    if timeline.get("truncated"):
        print("note: trace hit the event cap and was truncated")
    if args.svg:
        from repro.viz.timeline import save_timeline_svg

        svg_path = save_timeline_svg(timeline, args.svg)
        print(f"wrote {svg_path}")
    return 0


def _cmd_bench_history(args) -> int:
    from repro.observe.bench_history import (
        DEFAULT_HISTORY,
        DEFAULT_MAX_DROP,
        append_history,
        check_regressions,
        extract_headlines,
        load_history,
        provenance_mismatches,
        render_report,
        unrecognized_bench_files,
    )
    from repro.observe.provenance import bench_manifest

    bench_dir = args.bench_dir
    history_path = args.history or f"{bench_dir.rstrip('/')}/{DEFAULT_HISTORY}"
    max_drop = args.max_drop if args.max_drop is not None else DEFAULT_MAX_DROP
    current = extract_headlines(bench_dir)
    if not current:
        print(f"bench-history: no recognized BENCH_*.json under {bench_dir}")
        return 1
    for name in unrecognized_bench_files(bench_dir):
        print(f"bench-history: note — no extractor for {name}; skipped")
    history = load_history(history_path)
    previous = history[-1]["metrics"] if history else {}
    if history:
        for mismatch in provenance_mismatches(
            bench_manifest(), history[-1].get("provenance") or {}
        ):
            print(f"bench-history: WARNING — {mismatch}")
    regressions = check_regressions(current, previous, max_drop=max_drop)
    report = render_report(history, current, regressions, max_drop=max_drop)
    print(report)
    if args.report:
        from pathlib import Path

        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"\nwrote {out}")
    if args.record:
        path = append_history(history_path, current, label=args.label)
        print(f"recorded {len(current)} metrics to {path}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        return 1
    return 0


def _cmd_table1() -> int:
    from repro.harness.experiments import render_table_i

    print(render_table_i())
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.grid import SweepGrid, archive, summarize

    workloads = Workloads(get_profile())
    problem = workloads.problem(args.workload)
    cost = workloads.cost(args.workload)
    target = float(args.target_eps)
    grid = SweepGrid(
        algorithms=tuple(a.strip() for a in args.algorithms.split(",") if a.strip()),
        thread_counts=tuple(int(v) for v in args.m.split(",")),
        etas=tuple(float(v) for v in args.etas.split(",")),
        repeats=args.repeats,
        seed=args.seed,
        epsilons=tuple(sorted({0.5, target}, reverse=True)),
        target_epsilon=target,
        max_updates=workloads.profile.max_updates,
        max_virtual_time=workloads.profile.max_virtual_time,
        max_wall_seconds=workloads.profile.max_wall_seconds,
    )
    results = grid.run(
        problem, cost,
        progress=lambda msg: print(f"running {msg} ..."),
        workers=args.workers,
        replicas=args.replicas,
    )
    print()
    print(summarize(results, target))
    if args.json:
        path = archive(results, args.json)
        print(f"\nresults archived to {path}")
    return 0


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _print_provenance(row: dict) -> None:
    """One compact header line per run identifying where the record came
    from. Tolerant of rows from other schema versions: unknown fields
    are ignored, known ones are rendered when present."""
    manifest = row.get("provenance") or {}
    if not isinstance(manifest, dict) or not manifest:
        return
    parts = []
    sha = manifest.get("git_sha")
    if sha and sha != "unknown":
        parts.append(f"git {str(sha)[:12]}{'+dirty' if manifest.get('git_dirty') else ''}")
    for key, prefix in (
        ("config_hash", "config "), ("python", "py "), ("numpy", "numpy "),
        ("hostname", "host "), ("cpu_count", "cores "),
    ):
        value = manifest.get(key)
        if value not in (None, ""):
            parts.append(f"{prefix}{value}")
    if parts:
        print(f"provenance: {' | '.join(parts)}")


def _print_analysis(row: dict) -> None:
    """Render one flat run row's probe measurements as tables."""
    config = row.get("config", {})
    label = (f"{config.get('algorithm', '?')} m={config.get('m', '?')} "
             f"eta={config.get('eta', '?')} seed={config.get('seed', '?')}")
    _print_provenance(row)
    rows = [
        ["status", row.get("status", "?")],
        ["updates published", row.get("n_updates", "?")],
        ["gradients dropped", row.get("n_dropped", "?")],
        ["virtual time [s]", _fmt(row.get("virtual_time", float("nan")))],
        ["CAS failure rate", _fmt(row.get("cas_failure_rate", float("nan")))],
        ["mean lock wait [s]", _fmt(row.get("mean_lock_wait", float("nan")))],
        ["kernel fallbacks", row.get("kernel_fallbacks", 0)],
    ]
    print(render_table(["metric", "value"], rows, title=label))
    probes = row.get("probes", {}) or {}
    occ = probes.get("occupancy")
    if occ:
        print(render_table(
            ["occupancy (Sec IV)", "value"],
            [
                ["measured steady-state", _fmt(occ["steady_state_mean"])],
                ["n* (Cor 3.1)", _fmt(occ["n_star"])],
                ["n*_gamma (Cor 3.2 / eq 7)", _fmt(occ["n_star_gamma"])],
                ["measured / n*_gamma", _fmt(occ["ratio_to_prediction"])],
                ["loop enter/exit events", occ["n_events"]],
            ],
        ))
    stale = probes.get("staleness")
    if stale:
        print(render_table(
            ["staleness decomposition (eq 6)", "value"],
            [
                ["mean tau_c (compute)", _fmt(stale["mean_tau_c"])],
                ["mean tau_s (scheduling)", _fmt(stale["mean_tau_s"])],
                ["mean tau (total)", _fmt(stale["mean_tau"])],
                ["E[tau_c] prediction", _fmt(stale["expected_tau_c"])],
                ["E[tau_s] prediction", _fmt(stale["expected_tau_s"])],
                ["p90 tau_c / tau_s",
                 f"{_fmt(stale['p90_tau_c'])} / {_fmt(stale['p90_tau_s'])}"],
            ],
        ))
    phases = probes.get("phase_time")
    if phases:
        print(render_table(
            ["phase", "virtual s", "fraction"],
            [
                [name, _fmt(phases["seconds"][name]), _fmt(phases["fractions"][name])]
                for name in phases["seconds"]
            ],
            title="per-phase virtual-time breakdown",
        ))
    cas = probes.get("cas_timeline")
    if cas:
        print(render_table(
            ["CAS contention", "value"],
            [
                ["attempts", cas["n_attempts"]],
                ["failures", cas["n_failures"]],
                ["failure rate", _fmt(cas["failure_rate"])],
            ],
        ))


def _occupancy_smoke(rows: list[dict], tolerance: float) -> int:
    """Corollary 3.2 gate: measured steady-state occupancy must sit
    within ``tolerance`` (relative) of n*_gamma for every Leashed run
    that carries an occupancy probe result."""
    checked = 0
    for row in rows:
        occ = (row.get("probes") or {}).get("occupancy")
        if not occ:
            continue
        ratio = occ.get("ratio_to_prediction", float("nan"))
        if not np.isfinite(ratio):
            continue
        checked += 1
        deviation = abs(ratio - 1.0)
        verdict = "OK" if deviation <= tolerance else "FAIL"
        print(f"smoke: measured/n*_gamma = {ratio:.3f} "
              f"(|dev| {deviation:.3f} vs tolerance {tolerance:g}) ... {verdict}")
        if deviation > tolerance:
            return 1
    if not checked:
        print("smoke: FAIL — no finite occupancy-vs-prediction ratio to check "
              "(need a Leashed run with the 'occupancy' probe)")
        return 1
    return 0


def _cmd_analyze(args) -> int:
    from repro.telemetry import STANDARD_PROBES, read_jsonl, write_jsonl
    from repro.utils.serialization import _decode, result_to_dict

    if args.from_jsonl:
        rows = read_jsonl(args.from_jsonl)
    else:
        workloads = Workloads(get_profile(args.profile))
        problem = workloads.problem(args.workload)
        cost = workloads.cost(args.workload)
        profile = workloads.profile
        epsilons = (
            profile.mlp_epsilons if args.workload == "mlp"
            else profile.cnn_epsilons if args.workload == "cnn"
            else (0.5, 0.1)
        )
        eta = args.eta if args.eta is not None else (
            profile.default_eta if args.workload in ("mlp", "cnn") else 0.05
        )
        probes = (
            tuple(p.strip() for p in args.probes.split(",") if p.strip())
            if args.probes is not None
            else STANDARD_PROBES
        )
        config = RunConfig(
            algorithm=args.algorithm,
            m=args.m,
            eta=eta,
            seed=args.seed,
            epsilons=epsilons,
            target_epsilon=min(epsilons),
            max_updates=profile.max_updates,
            max_virtual_time=profile.max_virtual_time,
            max_wall_seconds=profile.max_wall_seconds,
            probes=probes,
        )
        from repro.harness.cache import RunCache, resolve_cache_dir

        cache_dir = resolve_cache_dir(args.cache_dir, no_cache=args.no_cache)
        cache = RunCache(cache_dir) if cache_dir is not None else None
        if cache is not None:
            # Route through a volatile service so the queue/cache
            # interaction (tasks served vs executed) shows up in stats.
            from repro.service import ExperimentService

            with ExperimentService(workers=1, replicas=1, cache=cache) as svc:
                result = svc.map(problem, cost, [config])[0]
            print(f"cache: {cache.stats} ({cache_dir})")
        else:
            result = run_once(problem, cost, config)
        if args.jsonl:
            path = write_jsonl([result], args.jsonl, append=True)
            print(f"appended run to {path}")
        rows = [_decode(result_to_dict(result))]
    for row in rows:
        _print_analysis(row)
    if len(rows) > 1:
        # Multi-run archives get the outcome tally — STOPPED (budget
        # caps) split from DIVERGED (the paper's Diverge class), which
        # the per-run tables can't show side by side.
        from repro.harness.cache import result_from_row
        from repro.harness.results import failure_breakdown

        breakdown = failure_breakdown(result_from_row(row) for row in rows)
        print(render_table(
            ["algorithm", "converged", "diverged", "stopped", "crashed"],
            [[label, c["converged"], c["diverged"], c["stopped"], c["crashed"]]
             for label, c in breakdown.items()],
            title="run outcomes (STOPPED = budget cap, DIVERGED = loss guard)",
        ))
    if args.svg:
        from repro.viz.figures import fig_occupancy_validation

        for row in rows:
            occ = (row.get("probes") or {}).get("occupancy")
            if occ and len(occ.get("times", ())) >= 2:
                fig_occupancy_validation(occ).save(args.svg)
                print(f"wrote {args.svg}")
                break
        else:
            print("no occupancy series to plot; skipping --svg")
    if args.smoke:
        return _occupancy_smoke(rows, args.tolerance)
    return 0


def _cmd_db(args) -> int:
    from repro.store import ResultStore, ingest_paths

    if args.db_command == "ingest":
        with ResultStore(args.db) as store:
            report = ingest_paths(store, args.paths)
            total = store.count()
        print(f"ingest: {report}")
        print(f"store {args.db}: {total} runs total")
        return 0
    if args.db_command == "stats":
        with ResultStore(args.db) as store:
            rows = [
                ["runs", store.count()],
                ["algorithms", ", ".join(store.algorithms()) or "—"],
                ["workloads",
                 ", ".join(str(w) for w in store.workloads()) or "—"],
                ["sources", ", ".join(store.sources()) or "—"],
                ["epsilons",
                 ", ".join(f"{e:g}" for e in store.epsilons()) or "—"],
                ["bench entries", store.bench_entry_count()],
                ["traces", len(store.trace_links())],
            ]
            print(render_table(["store", "value"], rows, title=args.db))
            for counts in (store.failure_counts(),):
                if counts:
                    print(render_table(
                        ["algorithm", "converged", "diverged", "stopped",
                         "crashed"],
                        [[a, c.converged, c.diverged, c.stopped, c.crashed]
                         for a, c in sorted(counts.items())],
                        title="run outcomes",
                    ))
        return 0
    raise AssertionError(f"unhandled db command {args.db_command!r}")


def _cmd_report_db(args) -> int:
    from datetime import datetime, timezone

    from repro.report import validate_report_html, write_report
    from repro.store import ResultStore

    out = args.out
    if out == "reproduction_report.md":
        out = "report.html"
    generated_at = args.generated_at or (
        datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M:%S UTC")
    )
    with ResultStore(args.db) as store:
        path = write_report(
            store, out, eps=args.eps, n_boot=args.boot, seed=args.seed,
            generated_at=generated_at,
        )
    validate_report_html(path.read_text(encoding="utf-8"))
    print(f"wrote {path}")
    return 0


def _cmd_calibrate() -> int:
    from repro.sim.cost import calibrate_cost_model

    workloads = Workloads(get_profile())
    rows = []
    for kind in ("mlp", "cnn"):
        problem = workloads.problem(kind)
        rng = np.random.default_rng(0)
        theta = problem.init_theta(rng)
        grad_fn = problem.make_grad_fn(rng)
        buf = np.empty_like(theta)
        cm = calibrate_cost_model(lambda t: grad_fn(t, buf), theta, repeats=3)
        rows.append(
            [kind.upper(), problem.d, f"{cm.tc * 1e3:.2f}", f"{cm.tu * 1e3:.3f}",
             f"{cm.t_copy * 1e3:.3f}", f"{cm.ratio:.0f}"]
        )
    print(
        render_table(
            ["arch", "d", "Tc [ms]", "Tu [ms]", "copy [ms]", "Tc/Tu"],
            rows,
            title="Measured NumPy kernel times on this machine (Fig 9 analogue)",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench-history":
        return _cmd_bench_history(args)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "calibrate":
        return _cmd_calibrate()
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "figures":
        from repro.viz.figures import render_all_figures

        written = render_all_figures(args.out, seed=args.seed)
        for path in written:
            print(f"wrote {path}")
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        if args.db is not None:
            return _cmd_report_db(args)
        from repro.harness.report import write_report

        path = write_report(args.rendered, args.out, profile_name=args.profile)
        print(f"wrote {path}")
        return 0
    if args.command == "db":
        return _cmd_db(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
