"""repro — reproduction of *Consistent Lock-free Parallel Stochastic
Gradient Descent for Fast and Stable Convergence* (Bäckström, Walulya,
Papatriantafilou, Tsigas — IPDPS 2021).

Public API overview
-------------------
* :mod:`repro.core` — ParameterVector (Algorithm 1) and the algorithm
  family: :class:`~repro.core.LeashedSGD` (Algorithm 3, the paper's
  contribution), lock-based :class:`~repro.core.AsyncLockSGD`
  (Algorithm 2), :class:`~repro.core.HogwildSGD` (Algorithm 4) and
  :class:`~repro.core.SequentialSGD`.
* :mod:`repro.sim` — the deterministic shared-memory concurrency
  simulator these algorithms execute on (see DESIGN.md for why the
  paper's 36-core testbed is simulated).
* :mod:`repro.nn` — flat-parameter NumPy DL substrate with the paper's
  exact MLP / CNN architectures (Tables II-III).
* :mod:`repro.data` — synthetic MNIST stand-in + real IDX loaders.
* :mod:`repro.analysis` — Section IV's contention/staleness/memory models.
* :mod:`repro.telemetry` — the probe bus every algorithm emits protocol
  events on, the pluggable Section-IV validation probes, and the
  schema-versioned metrics / JSONL results pipeline.
* :mod:`repro.harness` — profiles, runner, and the S1-S5 experiments.

Quickstart
----------
>>> from repro import Workloads, RunConfig, run_once
>>> w = Workloads()
>>> result = run_once(
...     w.quadratic_problem(64), w.cost("quadratic"),
...     RunConfig(algorithm="LSH_ps1", m=8, eta=0.05, epsilons=(0.5, 0.1),
...               max_updates=5000),
... )
>>> result.status.value
'converged'
"""

from repro.core import (
    ALGORITHMS,
    AsyncLockSGD,
    ConvergenceMonitor,
    ConvergenceReport,
    DLProblem,
    HogwildSGD,
    LeashedSGD,
    ParameterVector,
    Problem,
    QuadraticProblem,
    RunStatus,
    SequentialSGD,
    SGDContext,
    make_algorithm,
)
from repro.harness import (
    PROFILE_PAPER,
    PROFILE_QUICK,
    Profile,
    RunConfig,
    RunResult,
    Workloads,
    get_profile,
    run_once,
    run_repeated,
)
from repro.nn import cnn_mnist, mlp_mnist
from repro.sim import CostModel, calibrate_cost_model
from repro.telemetry import (
    STANDARD_PROBES,
    Probe,
    ProbeBus,
    RunMetrics,
    read_jsonl,
    register_probe,
    write_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AsyncLockSGD",
    "ConvergenceMonitor",
    "ConvergenceReport",
    "CostModel",
    "DLProblem",
    "HogwildSGD",
    "LeashedSGD",
    "ParameterVector",
    "Problem",
    "PROFILE_PAPER",
    "PROFILE_QUICK",
    "Probe",
    "ProbeBus",
    "Profile",
    "QuadraticProblem",
    "RunConfig",
    "RunMetrics",
    "RunResult",
    "RunStatus",
    "STANDARD_PROBES",
    "SequentialSGD",
    "SGDContext",
    "Workloads",
    "calibrate_cost_model",
    "cnn_mnist",
    "get_profile",
    "make_algorithm",
    "mlp_mnist",
    "read_jsonl",
    "register_probe",
    "run_once",
    "run_repeated",
    "write_jsonl",
    "__version__",
]
