"""Cost model: virtual durations of the algorithms' building blocks.

The simulator charges virtual time for each action a thread performs:

* ``tc`` — one stochastic-gradient computation (the paper's ``T_c``),
* ``tu`` — one bulk parameter update ``theta -= eta * delta`` (``T_u``),
* ``t_copy`` — copying the d-dimensional vector,
* ``t_alloc`` — allocating a fresh ParameterVector,
* ``t_atomic`` — one single-word atomic operation (CAS / FAA / pointer
  load),
* ``t_lock`` — acquiring an uncontended mutex.

Section IV of the paper shows the whole contention/staleness phenomenology
is governed by the ratio ``T_c / T_u``; the Appendix (Fig. 9) reports
that for the MLP the ratio is comparatively low (update traffic on
d=134,794 parameters is significant next to batch gradient computation,
hence contention at high thread counts), while for the CNN the ratio is
high (convolutions are compute-heavy but d=27,354 is small, hence little
contention). The per-architecture defaults below encode those regimes;
:func:`calibrate_cost_model` instead *measures* the actual NumPy kernel
times on this machine, which is what the Fig. 9 bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.timing import time_callable
from repro.utils.validation import check_positive, check_non_negative


@dataclass(frozen=True)
class CostModel:
    """Virtual durations (seconds) of algorithmic building blocks.

    ``n_chunks`` sets the tearing granularity of unsynchronized bulk
    memory operations (HOGWILD!'s reads and in-place writes): a bulk
    operation of total cost ``T`` is executed as ``n_chunks`` atomic
    pieces of cost ``T / n_chunks`` with preemption points between them.
    """

    tc: float
    tu: float
    t_copy: float
    t_alloc: float = 2e-6
    t_atomic: float = 2.5e-8
    t_lock: float = 6e-8
    n_chunks: int = 16
    #: Cache-coherence contention: each *additional* thread concurrently
    #: performing unsynchronized bulk access to the same shared buffer
    #: multiplies a chunk's cost by ``1 + coherence_penalty`` per peer.
    #: This models the write-sharing invalidation traffic that limits
    #: HOGWILD!-style dense updates on real hardware (HOGWILD!'s own
    #: analysis assumes *sparse* updates precisely to avoid it); the
    #: consistent algorithms are unaffected — the mutex serializes
    #: AsyncSGD's accesses, and Leashed-SGD reads immutable published
    #: vectors (read-sharing is free) and writes private ones (P1).
    #: ``benchmarks/test_ablation_consistency.py`` ablates this knob.
    coherence_penalty: float = 0.75

    def __post_init__(self) -> None:
        check_positive("tc", self.tc)
        check_positive("tu", self.tu)
        check_non_negative("t_copy", self.t_copy)
        check_non_negative("t_alloc", self.t_alloc)
        check_non_negative("t_atomic", self.t_atomic)
        check_non_negative("t_lock", self.t_lock)
        check_non_negative("coherence_penalty", self.coherence_penalty)
        if self.n_chunks < 1:
            raise ConfigurationError(f"n_chunks must be >= 1, got {self.n_chunks!r}")

    def contended(self, base: float, concurrent_peers: int) -> float:
        """Cost of a bulk-chunk access with ``concurrent_peers`` other
        threads simultaneously accessing the same shared buffer."""
        return base * (1.0 + self.coherence_penalty * max(concurrent_peers, 0))

    @property
    def ratio(self) -> float:
        """The governing ratio ``T_c / T_u`` of Section IV."""
        return self.tc / self.tu

    def with_chunks(self, n_chunks: int) -> "CostModel":
        """A copy with a different tearing granularity."""
        return replace(self, n_chunks=n_chunks)

    def scaled(self, factor: float) -> "CostModel":
        """A copy with all durations multiplied by ``factor``."""
        check_positive("factor", factor)
        return replace(
            self,
            tc=self.tc * factor,
            tu=self.tu * factor,
            t_copy=self.t_copy * factor,
            t_alloc=self.t_alloc * factor,
            t_atomic=self.t_atomic * factor,
            t_lock=self.t_lock * factor,
        )

    # -- paper-regime defaults -----------------------------------------
    @classmethod
    def mlp_default(cls, d: int = 134_794) -> "CostModel":
        """MLP regime: comparatively low ``T_c/T_u`` (contention-prone).

        Durations scale linearly in d around the paper's MLP size.
        """
        check_positive("d", d)
        scale = d / 134_794.0
        return cls(tc=10e-3 * scale, tu=1.0e-3 * scale, t_copy=0.7e-3 * scale)

    @classmethod
    def cnn_default(cls, d: int = 27_354) -> "CostModel":
        """CNN regime: high ``T_c/T_u`` (compute-heavy, low contention)."""
        check_positive("d", d)
        scale = d / 27_354.0
        return cls(tc=12e-3, tu=0.2e-3 * scale, t_copy=0.14e-3 * scale)

    @classmethod
    def from_ratio(cls, *, tc: float, ratio: float, d: int | None = None) -> "CostModel":
        """Build a model from ``T_c`` and a target ``T_c/T_u`` ratio."""
        check_positive("tc", tc)
        check_positive("ratio", ratio)
        tu = tc / ratio
        return cls(tc=tc, tu=tu, t_copy=0.7 * tu)


def calibrate_cost_model(
    grad_fn,
    theta: np.ndarray,
    *,
    repeats: int = 3,
    n_chunks: int = 16,
) -> CostModel:
    """Measure real NumPy kernel times and build a :class:`CostModel`.

    Parameters
    ----------
    grad_fn:
        Callable ``grad_fn(theta) -> ndarray`` computing one stochastic
        gradient (captures model, dataset and batch size).
    theta:
        A parameter vector of the right dimension (used for the update /
        copy measurements and as ``grad_fn`` input).

    Returns
    -------
    CostModel
        With ``tc`` / ``tu`` / ``t_copy`` set to the *minimum* observed
        wall time of the corresponding kernel (minimum being the
        standard low-noise estimator for calibration).
    """
    theta = np.ascontiguousarray(np.asarray(theta, dtype=np.float64))
    delta = np.ones_like(theta)
    work = theta.copy()

    def do_update() -> None:
        work[...] -= 1e-9 * delta  # in-place axpy: the ParameterVector.update kernel

    def do_copy() -> None:
        np.copyto(delta, work)

    tc = time_callable(lambda: grad_fn(theta), repeats=repeats)["min"]
    tu = time_callable(do_update, repeats=max(repeats, 5))["min"]
    t_copy = time_callable(do_copy, repeats=max(repeats, 5))["min"]
    # Guard against sub-resolution measurements on very small models.
    tiny = 1e-9
    return CostModel(
        tc=max(tc, tiny),
        tu=max(tu, tiny),
        t_copy=max(t_copy, 0.0),
        n_chunks=n_chunks,
    )
