"""Simulated threads: cooperatively scheduled generator coroutines.

A :class:`SimThread` wraps a generator whose ``yield`` values drive the
scheduler:

* ``yield d`` where ``d`` is a non-negative number — the thread performs
  ``d`` virtual seconds of private work (gradient computation, a chunk
  of a bulk memory operation, ...). Everything executed between yields
  is atomic with respect to other threads.
* ``yield lock.acquire()`` — an :class:`repro.sim.sync.AcquireRequest`;
  the thread blocks until the scheduler grants it the mutex. When it is
  resumed it holds the lock.

The generator returning (``StopIteration``) terminates the thread.
"""

from __future__ import annotations

import enum
from typing import Generator, Union

from repro.errors import SimulationError

#: What a simulated thread's body may yield.
Yield = Union[float, int, "AcquireRequest"]  # noqa: F821 - forward ref to sync
ThreadBody = Generator[Yield, None, None]


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    CREATED = "created"
    READY = "ready"  # scheduled in the event queue
    BLOCKED = "blocked"  # parked on a lock's wait queue
    FINISHED = "finished"
    FAILED = "failed"  # body raised


class SimThread:
    """A named simulated thread executing a generator body."""

    __slots__ = ("name", "tid", "state", "_gen", "error", "speed_factor")

    def __init__(self, name: str, tid: int, body: ThreadBody, *, speed_factor: float = 1.0) -> None:
        if not (speed_factor > 0):
            raise SimulationError(f"speed_factor must be > 0, got {speed_factor!r}")
        self.name = name
        self.tid = int(tid)
        self._gen = body
        self.state = ThreadState.CREATED
        self.error: BaseException | None = None
        #: Per-thread multiplicative slowdown (models heterogeneous cores
        #: / hyper-thread siblings competing for a port).
        self.speed_factor = float(speed_factor)

    def step(self) -> Yield | None:
        """Advance the body to its next yield.

        Returns the yielded value, or ``None`` if the body finished.
        Exceptions from the body mark the thread FAILED and re-raise.
        """
        if self.state in (ThreadState.FINISHED, ThreadState.FAILED):
            raise SimulationError(f"thread {self.name!r} stepped after termination")
        try:
            value = next(self._gen)
        except StopIteration:
            self.state = ThreadState.FINISHED
            return None
        except BaseException as exc:
            self.state = ThreadState.FAILED
            self.error = exc
            raise
        return value

    def close(self) -> None:
        """Abort the body (used when the scheduler stops early)."""
        if self.state not in (ThreadState.FINISHED, ThreadState.FAILED):
            self._gen.close()
            self.state = ThreadState.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, tid={self.tid}, state={self.state.value})"
