"""Pooled parameter-buffer arena: recycle payloads, never free them.

The paper's memory-recycling scheme (Algorithm 1) bounds *live*
``ParameterVector`` instances (Lemma 2: <= 3m for Leashed-SGD), but the
reproduction used to hand every reclaimed payload back to the NumPy
allocator and ``np.zeros`` a fresh one per publication — the dominant
per-update cost once the scheduler fast path landed (PR 1). This module
closes the loop the paper implies: reclaimed payloads are parked on a
free list keyed by ``(d, dtype)`` and handed back out on the next
allocation, so a steady-state Leashed/async/HOGWILD run performs zero
NumPy data allocations per update.

Safety is not weakened by recycling:

* ``ParameterVector._release_payload`` still detaches ``theta`` from the
  dying instance, so every in-protocol access after reclamation raises
  through ``_require_live`` exactly as before.
* The remaining hazard — a *raw array alias* (``pv.theta`` captured
  before reclamation) read after the buffer was recycled — is covered by
  the debug **poison mode**: released buffers are NaN-filled before they
  enter the free list, so a stale alias reads NaN and the consumer's
  loss/convergence monitoring fails loudly instead of silently training
  on recycled data.
* The :class:`repro.sim.memory.MemoryAccountant` keeps accounting
  *simulated* allocations (every ``ParameterVector`` construction /
  reclamation registers as before, pool hit or not), so the Lemma 2
  live-instance bound checks are unchanged; it additionally records the
  arena's hit/miss tally for the run reports.

The arena is deliberately dumb: no locking (the simulator is
single-threaded; process-parallel harness workers each build their own
run-local arena) and exact-size matching only (every key in a run is one
of a handful of ``(d, dtype)`` pairs — the model dimension dominates).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.observe import profiler as _profiler

__all__ = ["BufferArena"]


class BufferArena:
    """Free-list pool of 1-D NumPy buffers keyed by ``(size, dtype)``.

    Parameters
    ----------
    poison:
        Debug mode: NaN-fill float buffers as they are released, so any
        use-after-free through a stale array alias surfaces as NaN
        propagation instead of silent reuse of recycled data.
    max_per_key:
        Optional cap on parked buffers per ``(size, dtype)`` key;
        releases beyond the cap drop the buffer to the allocator.
        ``None`` (default) parks everything — steady state never grows
        past the run's peak concurrent-buffer count.
    """

    def __init__(self, *, poison: bool = False, max_per_key: int | None = None) -> None:
        if max_per_key is not None and max_per_key < 0:
            raise SimulationError(f"max_per_key must be >= 0, got {max_per_key}")
        self.poison = bool(poison)
        self.max_per_key = max_per_key
        self._free: dict[tuple[int, np.dtype], list[np.ndarray]] = {}
        #: Acquisitions served from the free list / from a fresh allocation.
        self.hits = 0
        self.misses = 0
        #: Buffers released back (parked or dropped past the cap).
        self.released = 0
        self.dropped = 0
        #: Parked buffers evicted by :meth:`trim`.
        self.trimmed = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(size: int, dtype: np.dtype | type) -> tuple[int, np.dtype]:
        return int(size), np.dtype(dtype)

    def acquire(self, size: int, dtype: np.dtype | type = np.float32) -> np.ndarray:
        """A 1-D buffer of ``size`` elements, recycled when possible.

        The contents are **uninitialized** (arbitrary recycled data, or
        NaN under poison mode) — callers must fully overwrite before the
        first read, exactly as with ``np.empty``.
        """
        if size <= 0:
            raise SimulationError(f"arena buffer size must be > 0, got {size}")
        prof = _profiler.ACTIVE
        t0 = prof.start()
        free = self._free.get(self._key(size, dtype))
        if free:
            self.hits += 1
            buf = free.pop()
        else:
            self.misses += 1
            buf = np.empty(int(size), dtype=dtype)
        prof.stop("arena.acquire", t0)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Park ``buf`` for reuse. The caller must drop every reference:
        after release the buffer belongs to the arena (and will be
        NaN-poisoned under poison mode, then handed to a future
        :meth:`acquire`)."""
        if buf.ndim != 1:
            raise SimulationError(
                f"arena only pools flat 1-D buffers, got shape {buf.shape}"
            )
        prof = _profiler.ACTIVE
        t0 = prof.start()
        self.released += 1
        key = self._key(buf.size, buf.dtype)
        free = self._free.setdefault(key, [])
        if self.max_per_key is not None and len(free) >= self.max_per_key:
            self.dropped += 1
            prof.stop("arena.release", t0)
            return
        if self.poison and np.issubdtype(buf.dtype, np.floating):
            buf.fill(np.nan)
        free.append(buf)
        prof.stop("arena.release", t0)

    # ------------------------------------------------------------------
    @property
    def parked(self) -> int:
        """Buffers currently sitting on free lists."""
        return sum(len(v) for v in self._free.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of acquisitions served without allocating."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def stats(self) -> dict[str, float]:
        """Counters snapshot for run reports / benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "released": self.released,
            "dropped": self.dropped,
            "trimmed": self.trimmed,
            "parked": self.parked,
            "hit_rate": self.hit_rate,
        }

    def trim(self, keep_per_key: int = 0) -> int:
        """Bound each free list's high water to ``keep_per_key`` parked
        buffers, dropping the excess to the allocator.

        Within one run the free lists never exceed the run's own peak
        concurrent-buffer count, but a long-lived arena (the harness's
        end-of-run teardown, or callers re-using an arena across phases
        with shrinking working sets) accumulates the *historical* high
        water. ``trim`` releases it; the eviction count is returned and
        tallied in :attr:`trimmed` (reported through the
        :class:`repro.sim.memory.MemoryAccountant` as ``pool_trimmed``).
        """
        if keep_per_key < 0:
            raise SimulationError(f"keep_per_key must be >= 0, got {keep_per_key}")
        evicted = 0
        for key, free in list(self._free.items()):
            excess = len(free) - keep_per_key
            if excess > 0:
                del free[keep_per_key:]
                evicted += excess
            if not free:
                del self._free[key]
        self.trimmed += evicted
        return evicted

    def clear(self) -> None:
        """Drop every parked buffer (tests / end-of-run teardown).

        Unlike :meth:`trim` this is not accounted — it resets the pool
        without touching the counters."""
        self._free.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferArena(poison={self.poison}, parked={self.parked}, "
            f"hits={self.hits}, misses={self.misses})"
        )
