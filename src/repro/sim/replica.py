"""Lockstep execution of replica simulations with batched gradients.

The repeated-seed protocol (Section V: every configuration is run over
many seeds) runs K *independent* discrete-event simulations that differ
only in their RNG streams — and a sweep's η column at fixed m differs
only in a scalar each replica applies privately in ``step_from``, so
the harness merges whole same-shape grid columns into one cohort too
(see ``harness.parallel.plan_cohorts``). :class:`LockstepCohort`
advances the replicas together: each round, every live scheduler runs
(in cohort mode) until it has parked every in-flight
:class:`~repro.sim.grad.GradCompute` request it can defer (all m
workers' compute windows overlap when ``tc`` dominates the protocol
costs, so a round typically harvests close to K*m requests, not K) or
finishes; the parked requests are grouped by their tasks'
``stack_key`` and executed as stacked kernel calls
(:class:`repro.nn.replica.ReplicaKernel`), then every paused scheduler
is resumed and the next round begins.

The cohort owns one :class:`~repro.sim.arena.BufferArena` for the
kernels' stacking slabs: when a round outgrows a kernel and it is
rebuilt with headroom, the old kernel's slabs are released and mostly
recycled into the new one. This arena is host-side execution scratch —
deliberately *not* wired to any replica's ``MemoryAccountant``, so
every replica's ``pool_hits`` / ``pool_misses`` / ``pool_trimmed``
metrics stay identical to its serial run.

Replicas share no simulation state — each scheduler owns its queue,
clock, RNG streams, and model buffers — so the only cross-replica
interaction is the *batched execution* of gradient arithmetic, which the
kernel performs with per-replica bitwise-identical operations. Every
replica therefore produces exactly the event order, CAS/lock outcomes,
and parameter trajectory of its own serial run.

Replicas finish independently (a replica may DIVERGE or hit its stop
condition early); finished schedulers simply drop out of subsequent
rounds while the survivors keep batching among themselves.
"""

from __future__ import annotations

from typing import Sequence

from repro.observe import profiler as _profiler
from repro.sim.arena import BufferArena
from repro.sim.scheduler import Scheduler

__all__ = ["LockstepCohort"]

#: Distinguishes "kernel not built yet" from "built and unsupported".
_UNBUILT = object()


class LockstepCohort:
    """Drives K cohort-mode schedulers round by round.

    Parameters
    ----------
    schedulers:
        The replica schedulers. Cohort mode is enabled on each; they
        must not have been run yet (lockstep starts from event zero).
    """

    def __init__(self, schedulers: Sequence[Scheduler]) -> None:
        self.schedulers = list(schedulers)
        for scheduler in self.schedulers:
            scheduler.enable_cohort_mode()
        # One kernel (or None for "unsupported") per stack key, built
        # lazily from the first task seen with that key. The arena
        # recycles kernel slabs across headroom rebuilds (host-side
        # scratch only — see the module docstring).
        self._kernels: dict = {}
        self._arena = BufferArena()
        self.rounds = 0
        self.stacked_calls = 0

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Advance every replica to completion."""
        live = list(self.schedulers)
        kmax = len(self.schedulers)
        while live:
            paused: list[Scheduler] = []
            still_live: list[Scheduler] = []
            for scheduler in live:
                scheduler.run()
                if scheduler.stopped:
                    # Stopped mid-flight: the serial run would have
                    # executed these gradients into buffers nothing
                    # observes again — drop the host-side work.
                    scheduler.discard_pending_grads()
                elif scheduler.pending_grads:
                    paused.append(scheduler)
                    still_live.append(scheduler)
                # else: finished (queue drained) — drops out.
            live = still_live
            if not paused:
                return
            self.rounds += 1
            prof = _profiler.ACTIVE
            t0 = prof.start()
            self._execute_round(paused, kmax)
            prof.stop("cohort.round", t0)
            for scheduler in paused:
                scheduler.resume_after_grads()

    # ------------------------------------------------------------------
    def _execute_round(self, paused: list[Scheduler], kmax: int) -> None:
        """Execute every paused scheduler's gradients, stacking groups
        that share a task stack key. Within a scheduler, requests run in
        park (= yield) order, so any shared per-replica RNG stream is
        consumed exactly as the serial run consumes it."""
        groups: dict = {}
        for scheduler in paused:
            for _thread, request in scheduler.pending_grads:
                key = request.task.stack_key if request.task is not None else None
                if key is None:
                    # Closure-only gradient (no task): nothing to stack.
                    request.execute()
                else:
                    groups.setdefault(key, []).append(request)
        for key, requests in groups.items():
            kernel = self._kernels.get(key, _UNBUILT)
            if kernel is _UNBUILT or (
                kernel is not None and len(requests) > kernel.kmax
            ):
                # Multi-worker replicas park several requests each, so a
                # round can outgrow the initial K-sized kernel — rebuild
                # with headroom rather than serializing the overflow,
                # recycling the outgrown kernel's slabs via the arena.
                if kernel is not _UNBUILT and kernel is not None:
                    kernel.release()
                kernel = requests[0].task.make_kernel(
                    max(kmax, len(requests)), arena=self._arena
                )
                self._kernels[key] = kernel
            if kernel is None:
                # Stackable-looking group the kernel builder declined
                # (unsupported layer, dtype mismatch, ...): execute
                # serially and make the de-vectorization observable —
                # one event per request on its own replica's bus.
                # Singleton groups are excluded: a lone survivor would
                # have nothing to stack with even on a supported
                # network, so it is not a de-vectorization.
                emit = len(requests) > 1
                for request in requests:
                    if emit:
                        bus = getattr(request.task, "probes", None)
                        if bus is not None:
                            bus.kernel_fallback(
                                request.task.kernel_fallback_kind(), len(requests)
                            )
                    request.execute()
            else:
                if len(requests) > 1:
                    self.stacked_calls += 1
                kernel.execute(requests)
