"""Lockstep execution of replica simulations with batched gradients.

The repeated-seed protocol (Section V: every configuration is run over
many seeds) runs K *independent* discrete-event simulations that differ
only in their RNG streams. :class:`LockstepCohort` advances them
together: each round, every live scheduler runs (in cohort mode) until
it has parked every in-flight :class:`~repro.sim.grad.GradCompute`
request it can defer (all m workers' compute windows overlap when
``tc`` dominates the protocol costs, so a round typically harvests
close to K*m requests, not K) or finishes; the parked requests are
grouped by their tasks' ``stack_key`` and executed as stacked kernel
calls (:class:`repro.nn.replica.ReplicaKernel`), then every paused
scheduler is resumed and the next round begins.

Replicas share no simulation state — each scheduler owns its queue,
clock, RNG streams, and model buffers — so the only cross-replica
interaction is the *batched execution* of gradient arithmetic, which the
kernel performs with per-replica bitwise-identical operations. Every
replica therefore produces exactly the event order, CAS/lock outcomes,
and parameter trajectory of its own serial run.

Replicas finish independently (a replica may DIVERGE or hit its stop
condition early); finished schedulers simply drop out of subsequent
rounds while the survivors keep batching among themselves.
"""

from __future__ import annotations

from typing import Sequence

from repro.observe import profiler as _profiler
from repro.sim.scheduler import Scheduler

__all__ = ["LockstepCohort"]

#: Distinguishes "kernel not built yet" from "built and unsupported".
_UNBUILT = object()


class LockstepCohort:
    """Drives K cohort-mode schedulers round by round.

    Parameters
    ----------
    schedulers:
        The replica schedulers. Cohort mode is enabled on each; they
        must not have been run yet (lockstep starts from event zero).
    """

    def __init__(self, schedulers: Sequence[Scheduler]) -> None:
        self.schedulers = list(schedulers)
        for scheduler in self.schedulers:
            scheduler.enable_cohort_mode()
        # One kernel (or None for "unsupported") per stack key, built
        # lazily from the first task seen with that key.
        self._kernels: dict = {}
        self.rounds = 0
        self.stacked_calls = 0

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Advance every replica to completion."""
        live = list(self.schedulers)
        kmax = len(self.schedulers)
        while live:
            paused: list[Scheduler] = []
            still_live: list[Scheduler] = []
            for scheduler in live:
                scheduler.run()
                if scheduler.stopped:
                    # Stopped mid-flight: the serial run would have
                    # executed these gradients into buffers nothing
                    # observes again — drop the host-side work.
                    scheduler.discard_pending_grads()
                elif scheduler.pending_grads:
                    paused.append(scheduler)
                    still_live.append(scheduler)
                # else: finished (queue drained) — drops out.
            live = still_live
            if not paused:
                return
            self.rounds += 1
            prof = _profiler.ACTIVE
            t0 = prof.start()
            self._execute_round(paused, kmax)
            prof.stop("cohort.round", t0)
            for scheduler in paused:
                scheduler.resume_after_grads()

    # ------------------------------------------------------------------
    def _execute_round(self, paused: list[Scheduler], kmax: int) -> None:
        """Execute every paused scheduler's gradients, stacking groups
        that share a task stack key. Within a scheduler, requests run in
        park (= yield) order, so any shared per-replica RNG stream is
        consumed exactly as the serial run consumes it."""
        groups: dict = {}
        for scheduler in paused:
            for _thread, request in scheduler.pending_grads:
                key = request.task.stack_key if request.task is not None else None
                if key is None:
                    # Closure-only gradient (no task): nothing to stack.
                    request.execute()
                else:
                    groups.setdefault(key, []).append(request)
        for key, requests in groups.items():
            kernel = self._kernels.get(key, _UNBUILT)
            if kernel is _UNBUILT or (
                kernel is not None and len(requests) > kernel.kmax
            ):
                # Multi-worker replicas park several requests each, so a
                # round can outgrow the initial K-sized kernel — rebuild
                # with headroom rather than serializing the overflow.
                kernel = requests[0].task.make_kernel(max(kmax, len(requests)))
                self._kernels[key] = kernel
            if kernel is None:
                for request in requests:
                    request.execute()
            else:
                if len(requests) > 1:
                    self.stacked_calls += 1
                kernel.execute(requests)
