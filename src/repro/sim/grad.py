"""The gradient-computation scheduling seam.

Worker bodies used to call their gradient closure inline and then yield
the compute duration ``tc``. To let a cohort of replica simulations
batch their gradient work into stacked kernels (see
:mod:`repro.sim.replica`), the call itself becomes a yielded *request*:
a :class:`GradCompute` carries the closure, its operands, and the
virtual duration. The scheduler decides how it runs:

* **Serial mode** (the default): the scheduler executes the request
  immediately and reschedules the thread after ``duration`` — the same
  host work at the same virtual instant, consuming the scheduler RNG in
  the same order as the old inline pattern (no draws during the
  gradient, then one jitter draw, then one tiebreak draw). Results are
  bitwise identical.
* **Cohort mode**: the scheduler parks the request so a
  :class:`~repro.sim.replica.LockstepCohort` can harvest pending
  gradients across replicas and execute the batch as stacked array
  kernels. A *deferrable* request (the default) parks without pausing
  the event loop: the thread's continuation is scheduled immediately
  (consuming the scheduler RNG exactly as the serial path does) and the
  loop keeps processing other threads' events, harvesting *their*
  gradient requests too — the loop only pauses when the next event
  belongs to a thread whose gradient is still unexecuted. With m
  workers per replica, a round then stacks up to K*m gradients instead
  of K.

Deferrability contract
----------------------
Deferring moves the host-side execution of ``fn`` from the yield
instant to the round boundary, while *virtual* time and event order
stay untouched. That is invisible exactly when nothing the simulation
can observe changes in between:

* ``theta`` (the gradient input) must not be mutated by any *other*
  thread between the yield and the thread's resume. All current worker
  bodies satisfy this structurally: HOGWILD-family and the
  lock-baseline compute on a worker-private copy, Leashed-SGD on a
  pinned published vector (immutable by Lemma 2), SEQ's single worker
  owns its vector, and SyncSGD's shared vector only changes behind a
  barrier the yielding worker has not reached yet.
* ``out`` and the ``post`` hook's operands must be worker-private (or
  immutable, like the pinned view Leashed's divergence probe copies).

A body that computes directly on shared mutable state must yield
``GradCompute(..., deferrable=False)``, restoring the pause-per-request
behaviour.

:class:`GradTask` is the optional batching handle: problems that can
stage their sampling separately from the math (see
``DLProblem.make_grad_task``) attach one, and requests whose tasks share
a ``stack_key`` may be fused. A request without a task always executes
serially — correct in either mode, just not batched.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["GradCompute", "GradTask"]


class GradTask:
    """Batching interface of one worker's gradient stream.

    ``run`` must be *the* gradient function of the worker (the serial
    scheduler and any non-batched fallback call it), so that serial and
    cohort executions consume the worker's RNG stream identically.
    """

    #: Requests whose tasks share an equal, non-None key may execute as
    #: one stacked kernel call. None disables batching for this task.
    stack_key: tuple | None = None

    #: The run's ProbeBus, bound by the worker factory so stacked
    #: executors can emit host-side ``kernel_fallback`` events. None
    #: (the class default) silently drops them.
    probes = None

    def run(self, theta: np.ndarray, out: np.ndarray) -> None:
        """Compute one stochastic gradient of ``theta`` into ``out``."""
        raise NotImplementedError

    def stage(self):
        """Draw this step's sample identity (e.g. batch indices) from
        the worker RNG — exactly the draw :meth:`run` would have made —
        without computing anything. Stacked executors call this once
        per replica, then perform the math jointly."""
        raise NotImplementedError

    def make_kernel(self, kmax: int, arena=None):
        """A stacked executor for up to ``kmax`` same-key tasks, or
        ``None`` if this task cannot be batched (unsupported layer,
        dtype mismatch, ...). Called once per cohort per ``stack_key``.
        ``arena`` is the cohort's :class:`~repro.sim.arena.BufferArena`
        for the kernel's scratch slabs (kernels allocate directly when
        it is None)."""
        return None

    def bind_probes(self, bus) -> None:
        """Attach the run's ProbeBus (for ``kernel_fallback`` events)."""
        self.probes = bus

    def kernel_fallback_kind(self) -> str:
        """Why :meth:`make_kernel` declined, for the ``kernel_fallback``
        event's ``kind`` field (e.g. the unsupported layer kind)."""
        return "unstackable"


class GradCompute:
    """A worker's request to run one gradient computation.

    Yielded by worker bodies in place of the old ``grad_fn(theta, out);
    yield tc`` pair. ``post`` optionally runs right after the gradient
    (at the same virtual instant), for measurement hooks that must see
    the read view before the thread resumes.
    """

    __slots__ = ("fn", "theta", "out", "duration", "task", "post", "deferrable")

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], None],
        theta: np.ndarray,
        out: np.ndarray,
        duration: float,
        task: GradTask | None = None,
        post: Callable[[], None] | None = None,
        deferrable: bool = True,
    ) -> None:
        self.fn = fn
        self.theta = theta
        self.out = out
        self.duration = duration
        self.task = task
        self.post = post
        #: Whether a cohort scheduler may keep processing other threads'
        #: events before this request executes (see module docstring for
        #: the contract). Serial execution ignores the flag.
        self.deferrable = deferrable

    def execute(self) -> None:
        """Run the gradient (and the post hook) serially."""
        self.fn(self.theta, self.out)
        if self.post is not None:
            self.post()
