"""Virtual wall-clock for the discrete-event simulator.

All of the paper's time measurements (time to epsilon-convergence, time
per iteration, memory timelines, staleness-over-time plots) are taken on
this clock, in virtual seconds. The clock only moves forward; the
scheduler owns advancement.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """Monotonically non-decreasing simulated time, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if not (start >= 0.0):
            raise SimulationError(f"clock must start at a non-negative time, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises
        ------
        SimulationError
            If ``t`` would move the clock backwards (events must be
            processed in timestamp order).
        """
        if t < self._now:
            raise SimulationError(
                f"attempt to move the virtual clock backwards: {t!r} < {self._now!r}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"
