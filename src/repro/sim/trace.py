"""Event tracing for simulated SGD executions.

The paper's evaluation needs several per-event series: published updates
with their staleness (Fig. 6 / 7-right), CAS attempt outcomes and
dropped gradients (persistence-bound behaviour, Section IV.2), LAU-SPC
retry-loop occupancy over time (to validate eq. (4)/(5)), and lock wait
times (lock contention of the AsyncSGD baseline). The
:class:`TraceRecorder` collects these cheaply as typed records and
offers the aggregations the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class UpdateRecord:
    """One *published* SGD update."""

    time: float
    thread: int
    seq: int  # global sequence number of the update (total order)
    staleness: int  # tau = tau_c + tau_s, per Section II.2
    cas_failures: int = 0  # failed CAS attempts before this publish (Leashed)


@dataclass(frozen=True)
class DroppedGradientRecord:
    """A gradient abandoned because the persistence bound was exceeded."""

    time: float
    thread: int
    cas_failures: int


@dataclass(frozen=True)
class RetryLoopRecord:
    """One thread's stay inside the LAU-SPC retry loop."""

    enter_time: float
    exit_time: float
    thread: int
    attempts: int
    published: bool


@dataclass(frozen=True)
class LockWaitRecord:
    """One lock acquisition: how long the thread waited."""

    request_time: float
    acquire_time: float
    thread: int


@dataclass(frozen=True)
class ViewDivergenceRecord:
    """Elastic-consistency measurement (Alistarh et al. [2]): the L2
    distance between a worker's gradient-input view and the globally
    current parameter vector at read time."""

    time: float
    thread: int
    l2: float


class TraceRecorder:
    """Accumulates execution events; aggregation methods feed the benches."""

    def __init__(self) -> None:
        self.updates: list[UpdateRecord] = []
        self.dropped: list[DroppedGradientRecord] = []
        self.retry_loops: list[RetryLoopRecord] = []
        self.lock_waits: list[LockWaitRecord] = []
        self.view_divergences: list[ViewDivergenceRecord] = []

    # -- recording ----------------------------------------------------
    def record_update(self, record: UpdateRecord) -> None:
        """Append a published-update record."""
        self.updates.append(record)

    def record_dropped(self, record: DroppedGradientRecord) -> None:
        """Append a dropped-gradient record."""
        self.dropped.append(record)

    def record_retry_loop(self, record: RetryLoopRecord) -> None:
        """Append a completed LAU-SPC loop stay."""
        self.retry_loops.append(record)

    def record_lock_wait(self, record: LockWaitRecord) -> None:
        """Append a lock wait."""
        self.lock_waits.append(record)

    def record_view_divergence(self, record: ViewDivergenceRecord) -> None:
        """Append an elastic-consistency measurement."""
        self.view_divergences.append(record)

    # -- aggregations ----------------------------------------------------
    @property
    def n_updates(self) -> int:
        """Number of published updates (global SGD iterations)."""
        return len(self.updates)

    def staleness_values(self) -> np.ndarray:
        """All observed staleness values, in publish order."""
        return np.asarray([u.staleness for u in self.updates], dtype=int)

    def staleness_summary(self) -> dict[str, float]:
        """Mean / median / p90 / max staleness (NaN when no updates)."""
        values = self.staleness_values()
        if values.size == 0:
            nan = float("nan")
            return {"mean": nan, "median": nan, "p90": nan, "max": nan}
        return {
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }

    def staleness_over_time(self, *, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Mean staleness per time bin — the x/y of Fig. 6's trend."""
        if not self.updates:
            return np.zeros(0), np.zeros(0)
        times = np.asarray([u.time for u in self.updates])
        values = np.asarray([u.staleness for u in self.updates], dtype=float)
        edges = np.linspace(0.0, float(times.max()) or 1.0, bins + 1)
        which = np.clip(np.digitize(times, edges) - 1, 0, bins - 1)
        sums = np.bincount(which, weights=values, minlength=bins)
        counts = np.bincount(which, minlength=bins)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        centers = 0.5 * (edges[:-1] + edges[1:])
        return centers, means

    def retry_loop_occupancy(self, *, resolution: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Number of threads inside the LAU-SPC loop as a step function,
        sampled at ``resolution`` points — the measured counterpart of
        the analytical ``n_t`` of eq. (4)/(5)."""
        if not self.retry_loops:
            return np.zeros(0), np.zeros(0)
        deltas: list[tuple[float, int]] = []
        for r in self.retry_loops:
            deltas.append((r.enter_time, +1))
            deltas.append((r.exit_time, -1))
        deltas.sort()
        times = np.asarray([t for t, _ in deltas])
        curve = np.cumsum([d for _, d in deltas])
        sample_t = np.linspace(0.0, float(times.max()), max(2, resolution))
        idx = np.searchsorted(times, sample_t, side="right") - 1
        occupancy = np.where(idx >= 0, curve[np.clip(idx, 0, None)], 0.0)
        return sample_t, occupancy

    def cas_failure_rate(self) -> float:
        """Failed CAS attempts / total CAS attempts across the run."""
        failures = sum(u.cas_failures for u in self.updates) + sum(
            d.cas_failures for d in self.dropped
        )
        successes = len(self.updates)
        total = failures + successes
        return failures / total if total else 0.0

    def mean_lock_wait(self) -> float:
        """Mean time spent blocked on the mutex (0 when lock-free)."""
        if not self.lock_waits:
            return 0.0
        waits = [w.acquire_time - w.request_time for w in self.lock_waits]
        return float(np.mean(waits))

    def view_divergence_summary(self) -> dict[str, float]:
        """Mean / p90 / max of the recorded elastic-consistency L2
        distances (NaN when the instrumentation was off)."""
        values = np.asarray([r.l2 for r in self.view_divergences])
        if values.size == 0:
            nan = float("nan")
            return {"mean": nan, "p90": nan, "max": nan}
        return {
            "mean": float(values.mean()),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }

    def updates_per_thread(self, m: int) -> np.ndarray:
        """Published-update counts per thread id (thread balance)."""
        counts = np.zeros(int(m), dtype=int)
        for u in self.updates:
            if 0 <= u.thread < m:
                counts[u.thread] += 1
        return counts
