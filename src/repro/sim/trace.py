"""Event tracing for simulated SGD executions.

The paper's evaluation needs several per-event series: published updates
with their staleness (Fig. 6 / 7-right), CAS attempt outcomes and
dropped gradients (persistence-bound behaviour, Section IV.2), LAU-SPC
retry-loop occupancy over time (to validate eq. (4)/(5)), and lock wait
times (lock contention of the AsyncSGD baseline). The
:class:`TraceRecorder` collects these cheaply and offers the
aggregations the benches print.

Storage is *columnar*: each record kind appends its fields onto
parallel Python lists, so the per-event cost is a few list appends
instead of a frozen-dataclass allocation, and every aggregation turns a
column into one NumPy array instead of a Python-level attribute walk.
The record dataclasses remain the public vocabulary: ``record_*``
accepts them, and the ``updates`` / ``dropped`` / ``retry_loops`` /
``lock_waits`` / ``view_divergences`` properties materialize them
on demand (cached until the next append). Hot paths should prefer the
positional ``add_*`` methods, which skip record construction entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UpdateRecord:
    """One *published* SGD update."""

    time: float
    thread: int
    seq: int  # global sequence number of the update (total order)
    staleness: int  # tau = tau_c + tau_s, per Section II.2
    cas_failures: int = 0  # failed CAS attempts before this publish (Leashed)


@dataclass(frozen=True)
class DroppedGradientRecord:
    """A gradient abandoned because the persistence bound was exceeded."""

    time: float
    thread: int
    cas_failures: int


@dataclass(frozen=True)
class RetryLoopRecord:
    """One thread's stay inside the LAU-SPC retry loop."""

    enter_time: float
    exit_time: float
    thread: int
    attempts: int
    published: bool


@dataclass(frozen=True)
class LockWaitRecord:
    """One lock acquisition: how long the thread waited."""

    request_time: float
    acquire_time: float
    thread: int


@dataclass(frozen=True)
class ViewDivergenceRecord:
    """Elastic-consistency measurement (Alistarh et al. [2]): the L2
    distance between a worker's gradient-input view and the globally
    current parameter vector at read time."""

    time: float
    thread: int
    l2: float


class TraceRecorder:
    """Accumulates execution events; aggregation methods feed the benches."""

    def __init__(self) -> None:
        # updates
        self._upd_time: list[float] = []
        self._upd_thread: list[int] = []
        self._upd_seq: list[int] = []
        self._upd_staleness: list[int] = []
        self._upd_cas: list[int] = []
        # dropped gradients
        self._drop_time: list[float] = []
        self._drop_thread: list[int] = []
        self._drop_cas: list[int] = []
        # retry loops
        self._retry_enter: list[float] = []
        self._retry_exit: list[float] = []
        self._retry_thread: list[int] = []
        self._retry_attempts: list[int] = []
        self._retry_published: list[bool] = []
        # lock waits
        self._lock_request: list[float] = []
        self._lock_acquire: list[float] = []
        self._lock_thread: list[int] = []
        # view divergences
        self._vd_time: list[float] = []
        self._vd_thread: list[int] = []
        self._vd_l2: list[float] = []
        # raw CAS attempts observed via the bus (Leashed-SGD emits one
        # per pointer CAS); evidence that cas_failure_rate is applicable
        self.cas_attempt_count = 0
        # replica-kernel de-vectorization tally (host-side execution
        # events: no virtual time, outside the identity contract)
        self._kernel_fallbacks = 0
        self._kernel_fallback_kinds: dict[str, int] = {}
        # materialized-record caches (invalidated on append)
        self._updates_view: list[UpdateRecord] | None = []
        self._dropped_view: list[DroppedGradientRecord] | None = []
        self._retry_view: list[RetryLoopRecord] | None = []
        self._lock_view: list[LockWaitRecord] | None = []
        self._vd_view: list[ViewDivergenceRecord] | None = []

    # -- fast positional recording ------------------------------------
    def add_update(
        self, time: float, thread: int, seq: int, staleness: int, cas_failures: int = 0
    ) -> None:
        """Append a published update without building an UpdateRecord."""
        self._upd_time.append(time)
        self._upd_thread.append(thread)
        self._upd_seq.append(seq)
        self._upd_staleness.append(staleness)
        self._upd_cas.append(cas_failures)
        self._updates_view = None

    def add_dropped(self, time: float, thread: int, cas_failures: int) -> None:
        """Append a dropped gradient without building a record."""
        self._drop_time.append(time)
        self._drop_thread.append(thread)
        self._drop_cas.append(cas_failures)
        self._dropped_view = None

    def add_retry_loop(
        self, enter_time: float, exit_time: float, thread: int, attempts: int, published: bool
    ) -> None:
        """Append a completed LAU-SPC loop stay without building a record."""
        self._retry_enter.append(enter_time)
        self._retry_exit.append(exit_time)
        self._retry_thread.append(thread)
        self._retry_attempts.append(attempts)
        self._retry_published.append(published)
        self._retry_view = None

    def add_lock_wait(self, request_time: float, acquire_time: float, thread: int) -> None:
        """Append a lock wait without building a record."""
        self._lock_request.append(request_time)
        self._lock_acquire.append(acquire_time)
        self._lock_thread.append(thread)
        self._lock_view = None

    def add_view_divergence(self, time: float, thread: int, l2: float) -> None:
        """Append an elastic-consistency measurement without a record."""
        self._vd_time.append(time)
        self._vd_thread.append(thread)
        self._vd_l2.append(l2)
        self._vd_view = None

    # -- ProbeBus subscription (see repro.telemetry.bus) ---------------
    # The recorder is one of the two built-in bus subscribers; these
    # handlers keep the columnar fast path (plain list appends, no
    # record objects). ``loop_enter`` carries the matching LAU-SPC
    # loop-entry time for retry-loop algorithms (NaN otherwise), letting
    # one publish/drop event also reconstruct the retry-loop columns
    # bit-exactly as the old paired add_update/add_retry_loop calls.
    def on_publish(
        self,
        time: float,
        thread: int,
        seq: int,
        staleness: int,
        cas_failures: int = 0,
        loop_enter: float = float("nan"),
    ) -> None:
        """Bus handler for one published update."""
        self._upd_time.append(time)
        self._upd_thread.append(thread)
        self._upd_seq.append(seq)
        self._upd_staleness.append(staleness)
        self._upd_cas.append(cas_failures)
        self._updates_view = None
        if loop_enter == loop_enter:  # not NaN: a retry-loop stay ended
            self.add_retry_loop(loop_enter, time, thread, cas_failures + 1, True)

    def on_drop(
        self,
        time: float,
        thread: int,
        cas_failures: int,
        loop_enter: float = float("nan"),
    ) -> None:
        """Bus handler for a persistence-bound gradient drop."""
        self._drop_time.append(time)
        self._drop_thread.append(thread)
        self._drop_cas.append(cas_failures)
        self._dropped_view = None
        if loop_enter == loop_enter:
            self.add_retry_loop(loop_enter, time, thread, cas_failures, False)

    def on_cas_attempt(
        self, time: float, thread: int, success: bool, failures_before: int
    ) -> None:
        """Bus handler for one CAS on the global pointer (tally only;
        the per-update failure counts arrive with publish/drop)."""
        self.cas_attempt_count += 1

    def on_lock_wait(self, request_time: float, acquire_time: float, thread: int) -> None:
        """Bus handler for one mutex acquisition."""
        self.add_lock_wait(request_time, acquire_time, thread)

    def on_view_divergence(self, time: float, thread: int, l2: float) -> None:
        """Bus handler for an elastic-consistency measurement."""
        self.add_view_divergence(time, thread, l2)

    def on_kernel_fallback(self, kind: str, replicas: int) -> None:
        """Bus handler for one serially-executed request that a stacked
        replica kernel declined (``kind`` names the reason)."""
        self._kernel_fallbacks += 1
        kinds = self._kernel_fallback_kinds
        kinds[kind] = kinds.get(kind, 0) + 1

    @property
    def kernel_fallbacks(self) -> int:
        """Total gradient requests that de-vectorized to serial execution."""
        return self._kernel_fallbacks

    @property
    def kernel_fallback_kinds(self) -> dict[str, int]:
        """Fallback tallies keyed by the declining reason/layer kind."""
        return dict(self._kernel_fallback_kinds)

    # -- record-object recording (back-compat) ------------------------
    def record_update(self, record: UpdateRecord) -> None:
        """Append a published-update record."""
        self.add_update(record.time, record.thread, record.seq, record.staleness, record.cas_failures)

    def record_dropped(self, record: DroppedGradientRecord) -> None:
        """Append a dropped-gradient record."""
        self.add_dropped(record.time, record.thread, record.cas_failures)

    def record_retry_loop(self, record: RetryLoopRecord) -> None:
        """Append a completed LAU-SPC loop stay."""
        self.add_retry_loop(
            record.enter_time, record.exit_time, record.thread, record.attempts, record.published
        )

    def record_lock_wait(self, record: LockWaitRecord) -> None:
        """Append a lock wait."""
        self.add_lock_wait(record.request_time, record.acquire_time, record.thread)

    def record_view_divergence(self, record: ViewDivergenceRecord) -> None:
        """Append an elastic-consistency measurement."""
        self.add_view_divergence(record.time, record.thread, record.l2)

    # -- materialized record views ------------------------------------
    @property
    def updates(self) -> list[UpdateRecord]:
        """Published updates as records (materialized lazily)."""
        if self._updates_view is None:
            self._updates_view = [
                UpdateRecord(t, th, s, st, c)
                for t, th, s, st, c in zip(
                    self._upd_time, self._upd_thread, self._upd_seq,
                    self._upd_staleness, self._upd_cas,
                )
            ]
        return self._updates_view

    @property
    def dropped(self) -> list[DroppedGradientRecord]:
        """Dropped gradients as records (materialized lazily)."""
        if self._dropped_view is None:
            self._dropped_view = [
                DroppedGradientRecord(t, th, c)
                for t, th, c in zip(self._drop_time, self._drop_thread, self._drop_cas)
            ]
        return self._dropped_view

    @property
    def retry_loops(self) -> list[RetryLoopRecord]:
        """LAU-SPC loop stays as records (materialized lazily)."""
        if self._retry_view is None:
            self._retry_view = [
                RetryLoopRecord(en, ex, th, a, p)
                for en, ex, th, a, p in zip(
                    self._retry_enter, self._retry_exit, self._retry_thread,
                    self._retry_attempts, self._retry_published,
                )
            ]
        return self._retry_view

    @property
    def lock_waits(self) -> list[LockWaitRecord]:
        """Lock waits as records (materialized lazily)."""
        if self._lock_view is None:
            self._lock_view = [
                LockWaitRecord(r, a, th)
                for r, a, th in zip(self._lock_request, self._lock_acquire, self._lock_thread)
            ]
        return self._lock_view

    @property
    def view_divergences(self) -> list[ViewDivergenceRecord]:
        """Elastic-consistency measurements as records (lazy)."""
        if self._vd_view is None:
            self._vd_view = [
                ViewDivergenceRecord(t, th, l2)
                for t, th, l2 in zip(self._vd_time, self._vd_thread, self._vd_l2)
            ]
        return self._vd_view

    # -- aggregations ----------------------------------------------------
    @property
    def n_updates(self) -> int:
        """Number of published updates (global SGD iterations)."""
        return len(self._upd_time)

    def staleness_values(self) -> np.ndarray:
        """All observed staleness values, in publish order."""
        return np.asarray(self._upd_staleness, dtype=int)

    def staleness_summary(self) -> dict[str, float]:
        """Mean / median / p90 / max staleness (NaN when no updates)."""
        values = self.staleness_values()
        if values.size == 0:
            nan = float("nan")
            return {"mean": nan, "median": nan, "p90": nan, "max": nan}
        return {
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }

    def staleness_over_time(self, *, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Mean staleness per time bin — the x/y of Fig. 6's trend."""
        if not self._upd_time:
            return np.zeros(0), np.zeros(0)
        times = np.asarray(self._upd_time)
        values = np.asarray(self._upd_staleness, dtype=float)
        edges = np.linspace(0.0, float(times.max()) or 1.0, bins + 1)
        which = np.clip(np.digitize(times, edges) - 1, 0, bins - 1)
        sums = np.bincount(which, weights=values, minlength=bins)
        counts = np.bincount(which, minlength=bins)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        centers = 0.5 * (edges[:-1] + edges[1:])
        return centers, means

    def retry_loop_occupancy(self, *, resolution: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Number of threads inside the LAU-SPC loop as a step function,
        sampled at ``resolution`` points — the measured counterpart of
        the analytical ``n_t`` of eq. (4)/(5)."""
        if not self._retry_enter:
            return np.zeros(0), np.zeros(0)
        deltas: list[tuple[float, int]] = []
        for t in self._retry_enter:
            deltas.append((t, +1))
        for t in self._retry_exit:
            deltas.append((t, -1))
        deltas.sort()
        times = np.asarray([t for t, _ in deltas])
        curve = np.cumsum([d for _, d in deltas])
        sample_t = np.linspace(0.0, float(times.max()), max(2, resolution))
        idx = np.searchsorted(times, sample_t, side="right") - 1
        occupancy = np.where(idx >= 0, curve[np.clip(idx, 0, None)], 0.0)
        return sample_t, occupancy

    def cas_failure_rate(self) -> float:
        """Failed CAS attempts / total CAS attempts across the run.

        NaN when there is no evidence any CAS ever happened — no
        ``cas_attempt`` bus event and no nonzero per-update failure
        count (lock-based or sequential algorithms) — so cross-algorithm
        tables distinguish "not applicable" from a genuinely
        contention-free 0.0.
        """
        failures = sum(self._upd_cas) + sum(self._drop_cas)
        successes = len(self._upd_time)
        total = failures + successes
        if total == 0 or (self.cas_attempt_count == 0 and failures == 0):
            return float("nan")
        return failures / total

    def mean_lock_wait(self) -> float:
        """Mean time spent blocked on the mutex.

        NaN when no lock acquisition was ever recorded (lock-free
        algorithms): "not applicable", not "zero contention".
        """
        if not self._lock_request:
            return float("nan")
        waits = np.asarray(self._lock_acquire) - np.asarray(self._lock_request)
        return float(np.mean(waits))

    def view_divergence_summary(self) -> dict[str, float]:
        """Mean / p90 / max of the recorded elastic-consistency L2
        distances (NaN when the instrumentation was off)."""
        values = np.asarray(self._vd_l2)
        if values.size == 0:
            nan = float("nan")
            return {"mean": nan, "p90": nan, "max": nan}
        return {
            "mean": float(values.mean()),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }

    def updates_per_thread(self, m: int) -> np.ndarray:
        """Published-update counts per thread id (thread balance)."""
        m = int(m)
        counts = np.zeros(m, dtype=int)
        if self._upd_thread:
            tids = np.asarray(self._upd_thread)
            in_range = tids[(tids >= 0) & (tids < m)]
            counts += np.bincount(in_range, minlength=m)
        return counts
