"""Deterministic discrete-event simulator of an asynchronous
shared-memory multiprocessor.

This package is the substitute for the paper's 2x18-core Xeon testbed
(see DESIGN.md section 2): it models ``m`` asynchronous threads whose
interleaving is controlled by a seeded scheduler, with simulated atomic
primitives (CAS, fetch-and-add), a blocking mutex, exact memory
accounting for parameter-vector instances, and a calibrated cost model
translating algorithmic actions (gradient computation, bulk update,
copy, synchronization ops) into virtual wall-clock durations.

Interleaving granularity
------------------------
A simulated thread is a Python generator. Code executed *between* two
``yield`` statements is atomic; every ``yield`` is a preemption point at
which virtual time advances and any other thread may run. The SGD
algorithms in :mod:`repro.core` place their yields exactly where the
paper's algorithms have linearization points or long computations, so
races (torn HOGWILD! writes, CAS failures, the stale-pointer re-check in
``latest_pointer()``) occur at the same granularity as on real hardware.
"""

from repro.sim.arena import BufferArena
from repro.sim.clock import VirtualClock
from repro.sim.cost import CostModel, calibrate_cost_model
from repro.sim.memory import MemoryAccountant
from repro.sim.scheduler import Scheduler, SchedulerConfig
from repro.sim.sync import AtomicCounter, AtomicRef, SimLock, AcquireRequest
from repro.sim.thread import SimThread, ThreadState
from repro.sim.trace import TraceRecorder, UpdateRecord, RetryLoopRecord

__all__ = [
    "BufferArena",
    "VirtualClock",
    "CostModel",
    "calibrate_cost_model",
    "MemoryAccountant",
    "Scheduler",
    "SchedulerConfig",
    "AtomicCounter",
    "AtomicRef",
    "SimLock",
    "AcquireRequest",
    "SimThread",
    "ThreadState",
    "TraceRecorder",
    "UpdateRecord",
    "RetryLoopRecord",
]
