"""Exact memory accounting for simulated shared objects.

The paper measures process memory with ``ps`` at one-second granularity
(Fig. 10) and proves bounds on live ``ParameterVector`` instances
(Lemma 2: Leashed-SGD <= 3m; the baselines hold 2m+1 constantly). Here
every allocation and reclamation is registered explicitly, so we get the
exact live-instance count and live bytes as functions of virtual time —
strictly sharper than sampling RSS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import MemoryAccountingError


@dataclass(frozen=True)
class AllocationRecord:
    """One allocation's lifetime (``freed_at`` is NaN while live)."""

    block_id: int
    tag: str
    nbytes: int
    allocated_at: float
    freed_at: float = float("nan")


class MemoryAccountant:
    """Tracks simulated allocations over virtual time.

    Parameters
    ----------
    clock_fn:
        Zero-argument callable returning the current virtual time
        (normally ``scheduler.clock`` 's ``now`` property getter).
    """

    def __init__(self, clock_fn: Callable[[], float]) -> None:
        self._clock_fn = clock_fn
        self._next_id = 0
        self._live: dict[int, tuple[str, int, float]] = {}
        self._events: list[tuple[float, int]] = []  # (time, +nbytes / -nbytes)
        self._count_events: list[tuple[float, int]] = []  # (time, +1 / -1)
        self._history: list[AllocationRecord] = []
        self.live_bytes = 0
        self.live_count = 0
        self.peak_bytes = 0
        self.peak_count = 0
        # Arena (buffer-pool) tally: how many simulated allocations were
        # served by recycling a parked payload vs. by a real allocation.
        # Pool hits still count as allocations above — the Lemma 2
        # live-instance bounds are about *simulated* instances, which the
        # arena does not change — but the split is what the benchmarks
        # check to prove the steady-state step is allocation-free.
        self.pool_hits = 0
        self.pool_misses = 0
        # Parked arena buffers evicted by BufferArena.trim at teardown
        # (or by an explicit high-water trim mid-run).
        self.pool_trimmed = 0
        # Algorithm-1 reclamation decisions observed via the probe bus
        # (a replaced vector marked stale and handed to the reader-count
        # scheme); the matching free() lands when the last reader leaves.
        self.reclaim_events = 0

    # ------------------------------------------------------------------
    def allocate(self, tag: str, nbytes: int) -> int:
        """Register a new block; returns its id."""
        if nbytes < 0:
            raise MemoryAccountingError(f"nbytes must be >= 0, got {nbytes!r}")
        now = self._clock_fn()
        block_id = self._next_id
        self._next_id += 1
        self._live[block_id] = (tag, nbytes, now)
        self.live_bytes += nbytes
        self.live_count += 1
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.peak_count = max(self.peak_count, self.live_count)
        self._events.append((now, nbytes))
        self._count_events.append((now, 1))
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block; double frees and unknown ids raise."""
        if block_id not in self._live:
            raise MemoryAccountingError(f"free of unknown or already-freed block {block_id}")
        tag, nbytes, allocated_at = self._live.pop(block_id)
        now = self._clock_fn()
        self.live_bytes -= nbytes
        self.live_count -= 1
        if self.live_bytes < 0 or self.live_count < 0:
            raise MemoryAccountingError("accounting went negative (internal error)")
        self._events.append((now, -nbytes))
        self._count_events.append((now, -1))
        self._history.append(AllocationRecord(block_id, tag, nbytes, allocated_at, now))

    # -- ProbeBus subscription (see repro.telemetry.bus) ---------------
    def on_reclaim(self, time: float, thread: int, seq: int) -> None:
        """Bus handler: one vector entered Algorithm 1's reclamation."""
        self.reclaim_events += 1

    def record_pool(self, hit: bool) -> None:
        """Tally one arena acquisition (recycled payload vs. fresh)."""
        if hit:
            self.pool_hits += 1
        else:
            self.pool_misses += 1

    def record_pool_trim(self, count: int) -> None:
        """Tally ``count`` parked buffers evicted by an arena trim."""
        if count < 0:
            raise MemoryAccountingError(f"trim count must be >= 0, got {count!r}")
        self.pool_trimmed += count

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of payload acquisitions served by recycling."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else float("nan")

    def is_live(self, block_id: int) -> bool:
        """Whether a block id is currently allocated."""
        return block_id in self._live

    def live_count_by_tag(self, tag: str) -> int:
        """How many live blocks carry ``tag``."""
        return sum(1 for t, _, _ in self._live.values() if t == tag)

    # ------------------------------------------------------------------
    def timeline(self, *, resolution: int = 200) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sampled (times, live_bytes, live_count) arrays over the run.

        This regenerates the paper's Fig. 10 memory-over-time series.
        """
        if not self._events:
            return np.zeros(0), np.zeros(0), np.zeros(0)
        times = np.asarray([t for t, _ in self._events])
        byte_deltas = np.asarray([d for _, d in self._events], dtype=float)
        count_deltas = np.asarray([d for _, d in self._count_events], dtype=float)
        bytes_curve = np.cumsum(byte_deltas)
        count_curve = np.cumsum(count_deltas)
        t_end = max(times[-1], self._clock_fn())
        sample_t = np.linspace(0.0, t_end, max(2, resolution))
        idx = np.searchsorted(times, sample_t, side="right") - 1
        sampled_bytes = np.where(idx >= 0, bytes_curve[np.clip(idx, 0, None)], 0.0)
        sampled_count = np.where(idx >= 0, count_curve[np.clip(idx, 0, None)], 0.0)
        return sample_t, sampled_bytes, sampled_count

    def mean_live_bytes(self) -> float:
        """Time-weighted average of live bytes over the run so far."""
        if not self._events:
            return 0.0
        times = np.asarray([t for t, _ in self._events] + [self._clock_fn()])
        curve = np.concatenate([[0.0], np.cumsum([d for _, d in self._events])])
        if times[-1] <= times[0]:
            return float(curve[-1])
        durations = np.diff(times, prepend=0.0)
        # curve[i] is live bytes after event i, holding until times[i+1].
        held = curve[: len(durations)]
        total = float(np.sum(held * durations))
        return total / float(times[-1])

    @property
    def history(self) -> list[AllocationRecord]:
        """Completed (freed) allocations."""
        return list(self._history)
