"""The discrete-event scheduler driving simulated threads.

Threads are kept in a priority queue ordered by wake-up time; equal
timestamps are broken by a seeded random priority, modelling the
nondeterministic ordering of a real OS scheduler while staying fully
replayable. Every yielded duration is multiplied by a lognormal jitter
factor (configurable ``jitter_sigma``), modelling timing noise from
cache misses, interrupts and hyper-thread interference — this is what
spreads the staleness distributions the paper studies.

Performance notes
-----------------
The run loop is the innermost loop of every experiment (tens of
millions of events for a paper-scale sweep), so it avoids per-event
overhead aggressively:

* Heap entries are plain ``(time, tiebreak, seq, thread)`` tuples. The
  unique ``seq`` guarantees comparisons never reach the (uncomparable)
  thread object, and tuple comparison is several times cheaper than a
  ``dataclass(order=True)``.
* Random numbers (tiebreak priorities and lognormal jitter factors) are
  drawn in vectorized blocks and consumed from plain Python lists,
  amortizing the ``Generator`` call overhead across thousands of
  events. Draws stay fully deterministic given the seed, but the
  *order* of the underlying RNG stream differs from releases that drew
  one scalar per event (see docs/simulator.md, "Performance").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.sync import AcquireRequest, BarrierRequest
from repro.sim.thread import SimThread, ThreadState

#: How many random numbers are drawn per refill. Large enough that the
#: Generator call is amortized to noise, small enough that short runs
#: don't waste noticeable time drawing numbers they never use.
_RNG_BLOCK = 8192


@dataclass
class SchedulerConfig:
    """Tunables of the simulated machine's scheduler.

    Attributes
    ----------
    jitter_sigma:
        Sigma of the multiplicative lognormal noise applied to every
        yielded duration. 0 disables jitter (useful in unit tests).
    speed_spread_sigma:
        Sigma of the per-thread lognormal speed factor, modelling
        heterogeneous effective core speeds (e.g. hyper-thread
        siblings). 0 makes all threads equally fast.
    max_events:
        Hard safety cap on processed events.
    """

    jitter_sigma: float = 0.08
    speed_spread_sigma: float = 0.05
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise SimulationError(f"jitter_sigma must be >= 0, got {self.jitter_sigma!r}")
        if self.speed_spread_sigma < 0:
            raise SimulationError(
                f"speed_spread_sigma must be >= 0, got {self.speed_spread_sigma!r}"
            )
        if self.max_events <= 0:
            raise SimulationError(f"max_events must be > 0, got {self.max_events!r}")


class Scheduler:
    """Runs a set of :class:`SimThread` objects over a shared
    :class:`VirtualClock` until completion, a stop request, or a time
    cap."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.clock = VirtualClock()
        self.config = config or SchedulerConfig()
        self._rng = rng
        # Heap of (time, tiebreak, seq, thread) tuples; seq is unique so
        # comparisons never reach the thread object.
        self._queue: list[tuple[float, float, int, SimThread]] = []
        self._seq = 0
        self._threads: list[SimThread] = []
        self._stopped = False
        self._events_processed = 0
        self._blocked_count = 0
        self._suspend_after: dict[int, float] = {}
        self._suspended: list[SimThread] = []
        # Pre-drawn RNG blocks (refilled on demand).
        self._tiebreaks: list[float] = []
        self._tiebreak_idx = 0
        self._jitters: list[float] = []
        self._jitter_idx = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total scheduling events handled so far."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Request the run loop to terminate after the current event."""
        self._stopped = True

    # -- fault injection ----------------------------------------------
    def suspend_after(self, thread: SimThread, time: float) -> None:
        """Fault injection: freeze ``thread`` at its first scheduling
        point at or after virtual ``time`` — it simply never runs again
        (modelling a de-scheduled, crashed or wedged thread). Whatever
        it holds (a mutex!) stays held: this is the failure mode against
        which lock-freedom is defined, and the failure-injection tests
        use it to demonstrate that Leashed-SGD keeps making system-wide
        progress where the lock-based baseline stalls."""
        self._suspend_after[thread.tid] = float(time)

    @property
    def suspended_threads(self) -> list[SimThread]:
        """Threads frozen by :meth:`suspend_after` so far."""
        return list(self._suspended)

    # ------------------------------------------------------------------
    def spawn(self, name: str, body_factory: Callable[[SimThread], "object"]) -> SimThread:
        """Create, register, and schedule a thread at the current time.

        ``body_factory`` receives the new :class:`SimThread` (so bodies
        can know their own identity) and returns its generator.
        """
        tid = len(self._threads)
        speed = 1.0
        if self.config.speed_spread_sigma > 0:
            speed = float(np.exp(self._rng.normal(0.0, self.config.speed_spread_sigma)))
        thread = SimThread(name, tid, None, speed_factor=speed)  # type: ignore[arg-type]
        thread._gen = body_factory(thread)  # type: ignore[attr-defined]
        self._threads.append(thread)
        self._schedule(thread, self.now)
        return thread

    def spawn_all(self, factories: Iterable[tuple[str, Callable[[SimThread], "object"]]]) -> list[SimThread]:
        """Spawn a batch of threads; returns them in order."""
        return [self.spawn(name, factory) for name, factory in factories]

    # -- amortized RNG -------------------------------------------------
    def _next_tiebreak(self) -> float:
        """One uniform tiebreak priority from the pre-drawn block."""
        i = self._tiebreak_idx
        block = self._tiebreaks
        if i >= len(block):
            block = self._tiebreaks = self._rng.random(_RNG_BLOCK).tolist()
            i = 0
        self._tiebreak_idx = i + 1
        return block[i]

    def _next_jitter_factor(self) -> float:
        """One lognormal jitter factor from the pre-drawn block."""
        i = self._jitter_idx
        block = self._jitters
        if i >= len(block):
            block = self._jitters = np.exp(
                self._rng.normal(0.0, self.config.jitter_sigma, _RNG_BLOCK)
            ).tolist()
            i = 0
        self._jitter_idx = i + 1
        return block[i]

    # ------------------------------------------------------------------
    def _schedule(self, thread: SimThread, at: float) -> None:
        thread.state = ThreadState.READY
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (at, self._next_tiebreak(), seq, thread))

    def _wake(self, thread: SimThread, *, delay: float = 0.0) -> None:
        """Wake a lock-blocked thread ``delay`` seconds from now."""
        if thread.state is not ThreadState.BLOCKED:
            raise SimulationError(f"waking thread {thread.name!r} that is not blocked")
        self._blocked_count -= 1
        self._schedule(thread, self.now + delay)

    def _jitter(self, duration: float, thread: SimThread) -> float:
        if duration < 0:
            raise SimulationError(f"thread {thread.name!r} yielded a negative duration {duration!r}")
        d = duration * thread.speed_factor
        if self.config.jitter_sigma > 0 and d > 0:
            d *= self._next_jitter_factor()
        return d

    # ------------------------------------------------------------------
    def run(self, *, until: float = float("inf")) -> None:
        """Process events until no thread remains runnable, a stop is
        requested, or virtual time would pass ``until``.

        Raises
        ------
        DeadlockError
            If threads remain blocked on locks but nothing can run.
        SimulationError
            If the ``max_events`` safety cap is hit.
        """
        # Locals for everything touched per event: in CPython, LOAD_FAST
        # beats repeated attribute lookups by a wide margin in a loop
        # this hot.
        queue = self._queue
        heappush = heapq.heappush
        heappop = heapq.heappop
        clock = self.clock
        max_events = self.config.max_events
        jitter_on = self.config.jitter_sigma > 0
        suspend_after = self._suspend_after
        events = self._events_processed
        try:
            while queue and not self._stopped:
                if events >= max_events:
                    nxt = queue[0][3]
                    raise SimulationError(
                        f"scheduler exceeded max_events={max_events} at virtual "
                        f"time {clock.now:.6g}s (next runnable thread: {nxt.name!r}); "
                        "likely a zero-duration spin loop in a thread body"
                    )
                entry = heappop(queue)
                at = entry[0]
                if at > until:
                    # Put it back so a later run(until=...) continues seamlessly.
                    heappush(queue, entry)
                    clock.advance_to(until)
                    return
                clock.advance_to(at)
                events += 1
                thread = entry[3]
                if suspend_after:
                    deadline = suspend_after.get(thread.tid)
                    if deadline is not None and at >= deadline:
                        self._suspended.append(thread)
                        del suspend_after[thread.tid]
                        continue  # frozen: never rescheduled, holdings kept
                yielded = thread.step()
                if yielded is None:
                    continue  # thread finished
                if isinstance(yielded, (int, float)):
                    # Hot path: a plain duration. Inlines _jitter + _schedule.
                    if yielded < 0:
                        raise SimulationError(
                            f"thread {thread.name!r} yielded a negative duration {yielded!r}"
                        )
                    d = yielded * thread.speed_factor
                    if jitter_on and d > 0:
                        i = self._jitter_idx
                        block = self._jitters
                        if i >= len(block):
                            block = self._jitters = np.exp(
                                self._rng.normal(0.0, self.config.jitter_sigma, _RNG_BLOCK)
                            ).tolist()
                            i = 0
                        self._jitter_idx = i + 1
                        d *= block[i]
                    thread.state = ThreadState.READY
                    i = self._tiebreak_idx
                    block = self._tiebreaks
                    if i >= len(block):
                        block = self._tiebreaks = self._rng.random(_RNG_BLOCK).tolist()
                        i = 0
                    self._tiebreak_idx = i + 1
                    seq = self._seq
                    self._seq = seq + 1
                    heappush(queue, (clock.now + d, block[i], seq, thread))
                elif isinstance(yielded, AcquireRequest):
                    granted = yielded.lock._on_acquire(thread, self)
                    if granted:
                        self._schedule(thread, clock.now + yielded.lock.acquire_cost)
                    else:
                        thread.state = ThreadState.BLOCKED
                        self._blocked_count += 1
                elif isinstance(yielded, BarrierRequest):
                    thread.state = ThreadState.BLOCKED
                    self._blocked_count += 1
                    released = yielded.barrier._on_arrive(thread, self)
                    if released:
                        self._wake(thread, delay=yielded.barrier.release_cost)
                else:
                    raise SimulationError(
                        f"thread {thread.name!r} yielded unsupported value {yielded!r}"
                    )
        finally:
            self._events_processed = events
        if not queue and self._blocked_count > 0 and not self._stopped:
            blocked = [t.name for t in self._threads if t.state is ThreadState.BLOCKED]
            raise DeadlockError(f"all runnable threads exhausted; blocked: {blocked}")

    def close(self) -> None:
        """Abort all live thread bodies (for early termination)."""
        for thread in self._threads:
            thread.close()
