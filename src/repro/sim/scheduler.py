"""The discrete-event scheduler driving simulated threads.

Threads are kept in a priority queue ordered by wake-up time; equal
timestamps are broken by a seeded random priority, modelling the
nondeterministic ordering of a real OS scheduler while staying fully
replayable. Every yielded duration is multiplied by a lognormal jitter
factor (configurable ``jitter_sigma``), modelling timing noise from
cache misses, interrupts and hyper-thread interference — this is what
spreads the staleness distributions the paper studies.

Performance notes
-----------------
The run loop is the innermost loop of every experiment (tens of
millions of events for a paper-scale sweep), so it avoids per-event
overhead aggressively:

* Heap entries are plain ``(time, tiebreak, seq, thread)`` tuples. The
  unique ``seq`` guarantees comparisons never reach the (uncomparable)
  thread object, and tuple comparison is several times cheaper than a
  ``dataclass(order=True)``.
* Random numbers (tiebreak priorities and lognormal jitter factors) are
  drawn in vectorized blocks and consumed from plain Python lists,
  amortizing the ``Generator`` call overhead across thousands of
  events. Draws stay fully deterministic given the seed, but the
  *order* of the underlying RNG stream differs from releases that drew
  one scalar per event (see docs/simulator.md, "Performance").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.observe import profiler as _profiler
from repro.sim.clock import VirtualClock
from repro.sim.grad import GradCompute
from repro.sim.sync import AcquireRequest, BarrierRequest
from repro.sim.thread import SimThread, ThreadState

#: How many random numbers are drawn per refill. Large enough that the
#: Generator call is amortized to noise, small enough that short runs
#: don't waste noticeable time drawing numbers they never use.
_RNG_BLOCK = 8192


@dataclass
class SchedulerConfig:
    """Tunables of the simulated machine's scheduler.

    Attributes
    ----------
    jitter_sigma:
        Sigma of the multiplicative lognormal noise applied to every
        yielded duration. 0 disables jitter (useful in unit tests).
    speed_spread_sigma:
        Sigma of the per-thread lognormal speed factor, modelling
        heterogeneous effective core speeds (e.g. hyper-thread
        siblings). 0 makes all threads equally fast.
    max_events:
        Hard safety cap on processed events.
    """

    jitter_sigma: float = 0.08
    speed_spread_sigma: float = 0.05
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise SimulationError(f"jitter_sigma must be >= 0, got {self.jitter_sigma!r}")
        if self.speed_spread_sigma < 0:
            raise SimulationError(
                f"speed_spread_sigma must be >= 0, got {self.speed_spread_sigma!r}"
            )
        if self.max_events <= 0:
            raise SimulationError(f"max_events must be > 0, got {self.max_events!r}")


class Scheduler:
    """Runs a set of :class:`SimThread` objects over a shared
    :class:`VirtualClock` until completion, a stop request, or a time
    cap."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.clock = VirtualClock()
        self.config = config or SchedulerConfig()
        self._rng = rng
        # Heap of (time, tiebreak, seq, thread) tuples; seq is unique so
        # comparisons never reach the thread object.
        self._queue: list[tuple[float, float, int, SimThread]] = []
        self._seq = 0
        self._threads: list[SimThread] = []
        self._stopped = False
        self._events_processed = 0
        self._blocked_count = 0
        self._suspend_after: dict[int, float] = {}
        self._suspended: list[SimThread] = []
        # Pre-drawn RNG blocks (refilled on demand).
        self._tiebreaks: list[float] = []
        self._tiebreak_idx = 0
        self._jitters: list[float] = []
        self._jitter_idx = 0
        # Cohort (lockstep-replica) mode: GradCompute requests park for
        # batched execution instead of running inline, so an external
        # driver can stack them across replica schedulers (see
        # repro.sim.replica). Each entry is (thread, request, scheduled):
        # deferrable requests schedule their thread's continuation
        # immediately (scheduled=True) and the loop keeps running;
        # non-deferrable ones pause the loop and are rescheduled by
        # resume_after_grads().
        self._cohort = False
        self._pending_grads: list[tuple[SimThread, GradCompute, bool]] = []
        self._pending_tids: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total scheduling events handled so far."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Request the run loop to terminate after the current event."""
        self._stopped = True

    # -- cohort (lockstep-replica) mode --------------------------------
    def enable_cohort_mode(self) -> None:
        """Make :meth:`run` park GradCompute requests instead of
        executing them inline. Used by
        :class:`repro.sim.replica.LockstepCohort` to harvest batchable
        gradient work across replica schedulers; a serial scheduler
        never parks."""
        self._cohort = True

    @property
    def pending_grads(self) -> list[tuple[SimThread, GradCompute]]:
        """Parked ``(thread, request)`` pairs, in yield order.

        Deferrable requests accumulate while the loop keeps running;
        the loop pauses either at a non-deferrable request or when the
        next event belongs to a thread with an unexecuted gradient.
        """
        return [(thread, request) for thread, request, _ in self._pending_grads]

    def resume_after_grads(self) -> None:
        """Clear the parked requests after the cohort executed them.

        Deferred requests' threads were already rescheduled when they
        parked; a trailing non-deferrable request's thread is
        rescheduled here. Both orders consume the scheduler RNG exactly
        as the serial inline path does: one jitter draw (when enabled
        and the duration is positive), then one tiebreak draw, at the
        same point of the stream.
        """
        if not self._pending_grads:
            raise SimulationError("resume_after_grads without a pending gradient")
        for thread, request, scheduled in self._pending_grads:
            if not scheduled:
                self._schedule_after(thread, request.duration)
        self._pending_grads.clear()
        self._pending_tids.clear()

    def discard_pending_grads(self) -> None:
        """Drop parked requests without executing them (end of run).

        When the monitor stops a replica while gradients are in flight,
        the serial run *would* have executed them — into buffers whose
        contents nothing ever observes again. Dropping the host-side
        work changes no observable result and avoids touching buffers
        during teardown.
        """
        self._pending_grads.clear()
        self._pending_tids.clear()

    # -- fault injection ----------------------------------------------
    def suspend_after(self, thread: SimThread, time: float) -> None:
        """Fault injection: freeze ``thread`` at its first scheduling
        point at or after virtual ``time`` — it simply never runs again
        (modelling a de-scheduled, crashed or wedged thread). Whatever
        it holds (a mutex!) stays held: this is the failure mode against
        which lock-freedom is defined, and the failure-injection tests
        use it to demonstrate that Leashed-SGD keeps making system-wide
        progress where the lock-based baseline stalls."""
        self._suspend_after[thread.tid] = float(time)

    @property
    def suspended_threads(self) -> list[SimThread]:
        """Threads frozen by :meth:`suspend_after` so far."""
        return list(self._suspended)

    # ------------------------------------------------------------------
    def spawn(self, name: str, body_factory: Callable[[SimThread], "object"]) -> SimThread:
        """Create, register, and schedule a thread at the current time.

        ``body_factory`` receives the new :class:`SimThread` (so bodies
        can know their own identity) and returns its generator.
        """
        tid = len(self._threads)
        speed = 1.0
        if self.config.speed_spread_sigma > 0:
            speed = float(np.exp(self._rng.normal(0.0, self.config.speed_spread_sigma)))
        thread = SimThread(name, tid, None, speed_factor=speed)  # type: ignore[arg-type]
        thread._gen = body_factory(thread)  # type: ignore[attr-defined]
        self._threads.append(thread)
        self._schedule(thread, self.now)
        return thread

    def spawn_all(self, factories: Iterable[tuple[str, Callable[[SimThread], "object"]]]) -> list[SimThread]:
        """Spawn a batch of threads; returns them in order."""
        return [self.spawn(name, factory) for name, factory in factories]

    # -- amortized RNG -------------------------------------------------
    def _next_tiebreak(self) -> float:
        """One uniform tiebreak priority from the pre-drawn block."""
        i = self._tiebreak_idx
        block = self._tiebreaks
        if i >= len(block):
            block = self._tiebreaks = self._rng.random(_RNG_BLOCK).tolist()
            i = 0
        self._tiebreak_idx = i + 1
        return block[i]

    def _next_jitter_factor(self) -> float:
        """One lognormal jitter factor from the pre-drawn block."""
        i = self._jitter_idx
        block = self._jitters
        if i >= len(block):
            block = self._jitters = np.exp(
                self._rng.normal(0.0, self.config.jitter_sigma, _RNG_BLOCK)
            ).tolist()
            i = 0
        self._jitter_idx = i + 1
        return block[i]

    # ------------------------------------------------------------------
    def _schedule(self, thread: SimThread, at: float) -> None:
        thread.state = ThreadState.READY
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (at, self._next_tiebreak(), seq, thread))

    def _wake(self, thread: SimThread, *, delay: float = 0.0) -> None:
        """Wake a lock-blocked thread ``delay`` seconds from now."""
        if thread.state is not ThreadState.BLOCKED:
            raise SimulationError(f"waking thread {thread.name!r} that is not blocked")
        self._blocked_count -= 1
        self._schedule(thread, self.now + delay)

    def _schedule_after(self, thread: SimThread, duration: float) -> None:
        """Schedule ``thread`` ``duration`` virtual seconds from now,
        drawing jitter-then-tiebreak — the exact RNG order of the
        plain-duration fast path in :meth:`run`."""
        if duration < 0:
            raise SimulationError(
                f"thread {thread.name!r} yielded a negative duration {duration!r}"
            )
        d = duration * thread.speed_factor
        if self.config.jitter_sigma > 0 and d > 0:
            d *= self._next_jitter_factor()
        thread.state = ThreadState.READY
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self.clock.now + d, self._next_tiebreak(), seq, thread))

    def _jitter(self, duration: float, thread: SimThread) -> float:
        if duration < 0:
            raise SimulationError(f"thread {thread.name!r} yielded a negative duration {duration!r}")
        d = duration * thread.speed_factor
        if self.config.jitter_sigma > 0 and d > 0:
            d *= self._next_jitter_factor()
        return d

    # ------------------------------------------------------------------
    def run(self, *, until: float = float("inf")) -> None:
        """Process events until no thread remains runnable, a stop is
        requested, or virtual time would pass ``until``.

        Raises
        ------
        DeadlockError
            If threads remain blocked on locks but nothing can run.
        SimulationError
            If the ``max_events`` safety cap is hit.
        """
        # Locals for everything touched per event: in CPython, LOAD_FAST
        # beats repeated attribute lookups by a wide margin in a loop
        # this hot.
        queue = self._queue
        heappush = heapq.heappush
        heappop = heapq.heappop
        clock = self.clock
        max_events = self.config.max_events
        jitter_on = self.config.jitter_sigma > 0
        suspend_after = self._suspend_after
        pending_tids = self._pending_tids
        events = self._events_processed
        # Self-profiler span for the whole loop segment (a cohort-mode
        # scheduler runs many segments per replica); ACTIVE is a no-op
        # object unless the run opted in via RunConfig.self_profile.
        prof = _profiler.ACTIVE
        prof_t0 = prof.start()
        try:
            while queue and not self._stopped:
                if events >= max_events:
                    nxt = queue[0][3]
                    raise SimulationError(
                        f"scheduler exceeded max_events={max_events} at virtual "
                        f"time {clock.now:.6g}s (next runnable thread: {nxt.name!r}); "
                        "likely a zero-duration spin loop in a thread body"
                    )
                entry = heappop(queue)
                at = entry[0]
                if at > until:
                    # Put it back so a later run(until=...) continues seamlessly.
                    heappush(queue, entry)
                    clock.advance_to(until)
                    return
                thread = entry[3]
                if pending_tids and thread.tid in pending_tids:
                    # The next event belongs to a thread whose deferred
                    # gradient has not been executed yet: pause for the
                    # cohort round. The entry goes back unchanged (same
                    # time/tiebreak/seq → same heap position) and is
                    # re-popped after the round.
                    heappush(queue, entry)
                    break
                clock.advance_to(at)
                events += 1
                if suspend_after:
                    deadline = suspend_after.get(thread.tid)
                    if deadline is not None and at >= deadline:
                        self._suspended.append(thread)
                        del suspend_after[thread.tid]
                        continue  # frozen: never rescheduled, holdings kept
                yielded = thread.step()
                if yielded is None:
                    continue  # thread finished
                if isinstance(yielded, (int, float)):
                    # Hot path: a plain duration. Inlines _jitter + _schedule.
                    if yielded < 0:
                        raise SimulationError(
                            f"thread {thread.name!r} yielded a negative duration {yielded!r}"
                        )
                    d = yielded * thread.speed_factor
                    if jitter_on and d > 0:
                        i = self._jitter_idx
                        block = self._jitters
                        if i >= len(block):
                            block = self._jitters = np.exp(
                                self._rng.normal(0.0, self.config.jitter_sigma, _RNG_BLOCK)
                            ).tolist()
                            i = 0
                        self._jitter_idx = i + 1
                        d *= block[i]
                    thread.state = ThreadState.READY
                    i = self._tiebreak_idx
                    block = self._tiebreaks
                    if i >= len(block):
                        block = self._tiebreaks = self._rng.random(_RNG_BLOCK).tolist()
                        i = 0
                    self._tiebreak_idx = i + 1
                    seq = self._seq
                    self._seq = seq + 1
                    heappush(queue, (clock.now + d, block[i], seq, thread))
                elif isinstance(yielded, GradCompute):
                    if self._cohort:
                        # Park the request for the cohort driver, which
                        # executes it (possibly stacked with other
                        # replicas') and calls resume_after_grads().
                        if yielded.deferrable:
                            # Schedule the continuation now — the exact
                            # RNG draws of the serial path — and keep
                            # processing other threads' events, so one
                            # round harvests every in-flight gradient.
                            self._pending_grads.append((thread, yielded, True))
                            pending_tids.add(thread.tid)
                            self._schedule_after(thread, yielded.duration)
                            continue
                        self._pending_grads.append((thread, yielded, False))
                        break
                    # Serial: run the gradient now, at the instant the
                    # worker yielded — exactly when the old inline call
                    # happened — then reschedule after its duration
                    # (jitter draw then tiebreak draw, as above).
                    yielded.execute()
                    self._schedule_after(thread, yielded.duration)
                elif isinstance(yielded, AcquireRequest):
                    granted = yielded.lock._on_acquire(thread, self)
                    if granted:
                        self._schedule(thread, clock.now + yielded.lock.acquire_cost)
                    else:
                        thread.state = ThreadState.BLOCKED
                        self._blocked_count += 1
                elif isinstance(yielded, BarrierRequest):
                    thread.state = ThreadState.BLOCKED
                    self._blocked_count += 1
                    released = yielded.barrier._on_arrive(thread, self)
                    if released:
                        self._wake(thread, delay=yielded.barrier.release_cost)
                else:
                    raise SimulationError(
                        f"thread {thread.name!r} yielded unsupported value {yielded!r}"
                    )
        finally:
            self._events_processed = events
            prof.stop("scheduler.run", prof_t0)
        if (
            not queue
            and self._blocked_count > 0
            and not self._stopped
            and not self._pending_grads
        ):
            blocked = [t.name for t in self._threads if t.state is ThreadState.BLOCKED]
            raise DeadlockError(f"all runnable threads exhausted; blocked: {blocked}")

    def close(self) -> None:
        """Abort all live thread bodies (for early termination)."""
        for thread in self._threads:
            thread.close()
