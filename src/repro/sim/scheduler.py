"""The discrete-event scheduler driving simulated threads.

Threads are kept in a priority queue ordered by wake-up time; equal
timestamps are broken by a seeded random priority, modelling the
nondeterministic ordering of a real OS scheduler while staying fully
replayable. Every yielded duration is multiplied by a lognormal jitter
factor (configurable ``jitter_sigma``), modelling timing noise from
cache misses, interrupts and hyper-thread interference — this is what
spreads the staleness distributions the paper studies.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import DeadlockError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.sync import AcquireRequest, BarrierRequest
from repro.sim.thread import SimThread, ThreadState


@dataclass
class SchedulerConfig:
    """Tunables of the simulated machine's scheduler.

    Attributes
    ----------
    jitter_sigma:
        Sigma of the multiplicative lognormal noise applied to every
        yielded duration. 0 disables jitter (useful in unit tests).
    speed_spread_sigma:
        Sigma of the per-thread lognormal speed factor, modelling
        heterogeneous effective core speeds (e.g. hyper-thread
        siblings). 0 makes all threads equally fast.
    max_events:
        Hard safety cap on processed events.
    """

    jitter_sigma: float = 0.08
    speed_spread_sigma: float = 0.05
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise SimulationError(f"jitter_sigma must be >= 0, got {self.jitter_sigma!r}")
        if self.speed_spread_sigma < 0:
            raise SimulationError(
                f"speed_spread_sigma must be >= 0, got {self.speed_spread_sigma!r}"
            )
        if self.max_events <= 0:
            raise SimulationError(f"max_events must be > 0, got {self.max_events!r}")


@dataclass(order=True)
class _QueueEntry:
    time: float
    tiebreak: float
    seq: int
    thread: SimThread = field(compare=False)


class Scheduler:
    """Runs a set of :class:`SimThread` objects over a shared
    :class:`VirtualClock` until completion, a stop request, or a time
    cap."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.clock = VirtualClock()
        self.config = config or SchedulerConfig()
        self._rng = rng
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._threads: list[SimThread] = []
        self._stopped = False
        self._events_processed = 0
        self._blocked_count = 0
        self._suspend_after: dict[int, float] = {}
        self._suspended: list[SimThread] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total scheduling events handled so far."""
        return self._events_processed

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Request the run loop to terminate after the current event."""
        self._stopped = True

    # -- fault injection ----------------------------------------------
    def suspend_after(self, thread: SimThread, time: float) -> None:
        """Fault injection: freeze ``thread`` at its first scheduling
        point at or after virtual ``time`` — it simply never runs again
        (modelling a de-scheduled, crashed or wedged thread). Whatever
        it holds (a mutex!) stays held: this is the failure mode against
        which lock-freedom is defined, and the failure-injection tests
        use it to demonstrate that Leashed-SGD keeps making system-wide
        progress where the lock-based baseline stalls."""
        self._suspend_after[thread.tid] = float(time)

    @property
    def suspended_threads(self) -> list[SimThread]:
        """Threads frozen by :meth:`suspend_after` so far."""
        return list(self._suspended)

    # ------------------------------------------------------------------
    def spawn(self, name: str, body_factory: Callable[[SimThread], "object"]) -> SimThread:
        """Create, register, and schedule a thread at the current time.

        ``body_factory`` receives the new :class:`SimThread` (so bodies
        can know their own identity) and returns its generator.
        """
        tid = len(self._threads)
        speed = 1.0
        if self.config.speed_spread_sigma > 0:
            speed = float(np.exp(self._rng.normal(0.0, self.config.speed_spread_sigma)))
        thread = SimThread(name, tid, None, speed_factor=speed)  # type: ignore[arg-type]
        thread._gen = body_factory(thread)  # type: ignore[attr-defined]
        self._threads.append(thread)
        self._schedule(thread, self.now)
        return thread

    def spawn_all(self, factories: Iterable[tuple[str, Callable[[SimThread], "object"]]]) -> list[SimThread]:
        """Spawn a batch of threads; returns them in order."""
        return [self.spawn(name, factory) for name, factory in factories]

    # ------------------------------------------------------------------
    def _schedule(self, thread: SimThread, at: float) -> None:
        thread.state = ThreadState.READY
        entry = _QueueEntry(at, float(self._rng.random()), next(self._seq), thread)
        heapq.heappush(self._queue, entry)

    def _wake(self, thread: SimThread, *, delay: float = 0.0) -> None:
        """Wake a lock-blocked thread ``delay`` seconds from now."""
        if thread.state is not ThreadState.BLOCKED:
            raise SimulationError(f"waking thread {thread.name!r} that is not blocked")
        self._blocked_count -= 1
        self._schedule(thread, self.now + delay)

    def _jitter(self, duration: float, thread: SimThread) -> float:
        if duration < 0:
            raise SimulationError(f"thread {thread.name!r} yielded a negative duration {duration!r}")
        d = duration * thread.speed_factor
        if self.config.jitter_sigma > 0 and d > 0:
            d *= float(np.exp(self._rng.normal(0.0, self.config.jitter_sigma)))
        return d

    # ------------------------------------------------------------------
    def run(self, *, until: float = float("inf")) -> None:
        """Process events until no thread remains runnable, a stop is
        requested, or virtual time would pass ``until``.

        Raises
        ------
        DeadlockError
            If threads remain blocked on locks but nothing can run.
        SimulationError
            If the ``max_events`` safety cap is hit.
        """
        while self._queue and not self._stopped:
            if self._events_processed >= self.config.max_events:
                raise SimulationError(
                    f"scheduler exceeded max_events={self.config.max_events}; "
                    "likely a zero-duration spin loop in a thread body"
                )
            entry = heapq.heappop(self._queue)
            if entry.time > until:
                # Put it back so a later run(until=...) continues seamlessly.
                heapq.heappush(self._queue, entry)
                self.clock.advance_to(until)
                return
            self.clock.advance_to(entry.time)
            self._events_processed += 1
            thread = entry.thread
            deadline = self._suspend_after.get(thread.tid)
            if deadline is not None and entry.time >= deadline:
                self._suspended.append(thread)
                del self._suspend_after[thread.tid]
                continue  # frozen: never rescheduled, holdings kept
            yielded = thread.step()
            if yielded is None:
                continue  # thread finished
            if isinstance(yielded, (int, float)):
                self._schedule(thread, self.now + self._jitter(float(yielded), thread))
            elif isinstance(yielded, AcquireRequest):
                granted = yielded.lock._on_acquire(thread, self)
                if granted:
                    self._schedule(thread, self.now + yielded.lock.acquire_cost)
                else:
                    thread.state = ThreadState.BLOCKED
                    self._blocked_count += 1
            elif isinstance(yielded, BarrierRequest):
                thread.state = ThreadState.BLOCKED
                self._blocked_count += 1
                released = yielded.barrier._on_arrive(thread, self)
                if released:
                    self._wake(thread, delay=yielded.barrier.release_cost)
            else:
                raise SimulationError(
                    f"thread {thread.name!r} yielded unsupported value {yielded!r}"
                )
        if not self._queue and self._blocked_count > 0 and not self._stopped:
            blocked = [t.name for t in self._threads if t.state is ThreadState.BLOCKED]
            raise DeadlockError(f"all runnable threads exhausted; blocked: {blocked}")

    def close(self) -> None:
        """Abort all live thread bodies (for early termination)."""
        for thread in self._threads:
            thread.close()
