"""Simulated synchronization primitives.

These model the single-word atomic operations of the paper's system
model (Section II.2): ``CompareAndSwap`` on a reference cell
(:class:`AtomicRef`), ``FetchAndAdd`` on an integer cell
(:class:`AtomicCounter`), plus a blocking mutex (:class:`SimLock`) for
the lock-based AsyncSGD baseline.

Because simulated-thread code between two yields executes atomically,
the *methods* here are trivially linearizable; what makes them
semantically faithful is that the SGD algorithms only invoke one
shared-memory primitive per scheduling step and yield (a small
synchronization cost) around it, so the interesting interleavings — a
CAS failing because a competitor published first, a pointer going stale
between load and ``start_reading`` — all occur.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.thread import SimThread


class AtomicCounter:
    """An integer cell supporting fetch-and-add and read, e.g. the
    ParameterVector sequence number ``t`` and reader count ``n_rdrs``."""

    __slots__ = ("_value",)

    def __init__(self, initial: int = 0) -> None:
        self._value = int(initial)

    def load(self) -> int:
        """Atomic read."""
        return self._value

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta``; return the *previous* value."""
        old = self._value
        self._value = old + delta
        return old

    def store(self, value: int) -> None:
        """Atomic write (used only at initialization)."""
        self._value = int(value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicCounter({self._value})"


class AtomicRef:
    """A reference cell supporting load / store / compare-and-swap.

    Comparison is by identity (``is``), matching pointer CAS on real
    hardware: the ABA problem is out of scope because the paper's
    recycling scheme never re-publishes a reclaimed instance.
    """

    __slots__ = ("_ref",)

    def __init__(self, initial: Any = None) -> None:
        self._ref = initial

    def load(self) -> Any:
        """Atomic read of the reference."""
        return self._ref

    def store(self, value: Any) -> None:
        """Atomic unconditional write."""
        self._ref = value

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        """If the cell holds ``expected`` (identity), write ``new``.

        Returns ``True`` on success; on failure the cell is unchanged.
        """
        if self._ref is expected:
            self._ref = new
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicRef({self._ref!r})"


class AtomicFlag:
    """A boolean cell with test-and-set semantics (the ``deleted`` flag
    of Algorithm 1, which is claimed with ``CAS(deleted, false, true)``)."""

    __slots__ = ("_value",)

    def __init__(self, initial: bool = False) -> None:
        self._value = bool(initial)

    def load(self) -> bool:
        """Atomic read."""
        return self._value

    def store(self, value: bool) -> None:
        """Atomic write."""
        self._value = bool(value)

    def test_and_set(self) -> bool:
        """Atomically set to True; return whether *this* call claimed it
        (i.e. the previous value was False)."""
        claimed = not self._value
        self._value = True
        return claimed


@dataclass(frozen=True)
class AcquireRequest:
    """Yielded by a simulated thread to block on a :class:`SimLock`."""

    lock: "SimLock"


class SimBarrier:
    """A reusable m-party barrier, built on the lock/park machinery.

    Used by the synchronous-SGD comparator: workers wait until all m
    have arrived, then are released together. Implemented as a SimLock
    variant: arrivals park; the last arrival wakes everyone.

    Protocol: a thread yields ``barrier.arrive()``; when resumed, the
    whole cohort has arrived. The last arriver is charged
    ``release_cost`` (it performs the wake-ups); the rest resume free.
    """

    __slots__ = ("name", "parties", "_waiting", "release_cost", "_scheduler", "generation")

    def __init__(self, name: str, parties: int, *, release_cost: float = 0.0) -> None:
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        if release_cost < 0:
            raise SimulationError(f"release_cost must be >= 0, got {release_cost}")
        self.name = name
        self.parties = int(parties)
        self._waiting: list[SimThread] = []
        self.release_cost = float(release_cost)
        self._scheduler = None
        #: Completed barrier rounds (for tests / tracing).
        self.generation = 0

    def arrive(self) -> "BarrierRequest":
        """Build the request to ``yield`` from a simulated thread."""
        return BarrierRequest(self)

    # -- scheduler protocol ---------------------------------------------
    def _on_arrive(self, thread: SimThread, scheduler) -> bool:
        """Returns True if this arrival releases the cohort."""
        self._scheduler = scheduler
        self._waiting.append(thread)
        if len(self._waiting) >= self.parties:
            waiters, self._waiting = self._waiting, []
            self.generation += 1
            # Wake everyone except the releasing thread (the scheduler
            # reschedules that one itself, charged release_cost).
            for waiter in waiters:
                if waiter is not thread:
                    scheduler._wake(waiter, delay=self.release_cost)
            return True
        return False

    @property
    def n_waiting(self) -> int:
        """Threads currently parked at the barrier."""
        return len(self._waiting)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimBarrier({self.name!r}, {len(self._waiting)}/{self.parties})"


@dataclass(frozen=True)
class BarrierRequest:
    """Yielded by a simulated thread to wait on a :class:`SimBarrier`."""

    barrier: "SimBarrier"


class SimLock:
    """A blocking mutex with a FIFO wait queue.

    Waiters park until the holder releases; the scheduler charges
    ``acquire_cost`` virtual seconds for a successful (uncontended or
    woken) acquisition, modelling the atomic-instruction + cache-line
    transfer cost of a real lock.
    """

    __slots__ = ("name", "_owner", "_waiters", "acquire_cost", "_scheduler")

    def __init__(self, name: str = "lock", *, acquire_cost: float = 0.0) -> None:
        if acquire_cost < 0:
            raise SimulationError(f"acquire_cost must be >= 0, got {acquire_cost!r}")
        self.name = name
        self._owner: SimThread | None = None
        self._waiters: Deque[SimThread] = deque()
        self.acquire_cost = float(acquire_cost)
        self._scheduler = None  # set by Scheduler.add_lock / first acquire

    # -- protocol used by simulated threads -------------------------------
    def acquire(self) -> AcquireRequest:
        """Build the request to ``yield`` from a simulated thread."""
        return AcquireRequest(self)

    def release(self, thread: SimThread) -> None:
        """Release the mutex (called inline, between yields).

        Wakes the first waiter, if any, scheduling it at the current
        virtual time plus ``acquire_cost``.
        """
        if self._owner is not thread:
            raise SimulationError(
                f"thread {thread.name!r} released lock {self.name!r} "
                f"owned by {getattr(self._owner, 'name', None)!r}"
            )
        if self._waiters:
            next_thread = self._waiters.popleft()
            self._owner = next_thread
            if self._scheduler is None:
                raise SimulationError(f"lock {self.name!r} has waiters but no scheduler attached")
            self._scheduler._wake(next_thread, delay=self.acquire_cost)
        else:
            self._owner = None

    # -- protocol used by the scheduler ------------------------------------
    def _on_acquire(self, thread: SimThread, scheduler) -> bool:
        """Handle an acquire request. Returns True if granted now."""
        self._scheduler = scheduler
        if self._owner is None:
            self._owner = thread
            return True
        self._waiters.append(thread)
        return False

    @property
    def owner(self) -> SimThread | None:
        """The current holder (None if free)."""
        return self._owner

    @property
    def n_waiters(self) -> int:
        """Number of parked threads — a direct contention measurement."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SimLock({self.name!r}, owner={getattr(self._owner, 'name', None)!r}, "
            f"waiters={len(self._waiters)})"
        )
