"""Statistical comparison reports (ROADMAP item 2, analysis half).

:mod:`repro.report.stats` carries the scipy-free test battery
(Mann-Whitney U, Vargha-Delaney A12, bootstrap CIs);
:mod:`repro.report.html` the self-contained page primitives and the
structural validator; :mod:`repro.report.build` assembles the living
Section V from a :class:`repro.store.ResultStore`. Entry point:
``repro report --db results.sqlite``.
"""

from repro.report.build import build_report, write_report
from repro.report.html import validate_report_html
from repro.report.stats import (
    BootstrapCI,
    MannWhitneyResult,
    a12_magnitude,
    bootstrap_ci,
    mann_whitney_u,
    rankdata,
    vargha_delaney_a12,
)

__all__ = [
    "BootstrapCI",
    "MannWhitneyResult",
    "a12_magnitude",
    "bootstrap_ci",
    "build_report",
    "mann_whitney_u",
    "rankdata",
    "validate_report_html",
    "vargha_delaney_a12",
    "write_report",
]
