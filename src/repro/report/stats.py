"""Statistical machinery for cross-algorithm comparisons.

The paper's Section V claims are *comparative* — LSH reaches the
ε-threshold faster and more stably than HOGWILD/ASYNC — and the related
work this repo leans on (Alistarh et al., Nadiradze et al.) argues such
claims only carry weight as distributions over seeds. This module is
the fuzzbench-style toolkit the report layer runs on every
per-(workload, m, η) sample:

* :func:`mann_whitney_u` — the rank-sum test with tie correction and
  continuity correction, normal approximation (the standard regime for
  the repeat counts sweeps produce; exact enumeration buys nothing at
  n >= 8 and this stays dependency-free);
* :func:`vargha_delaney_a12` — the A12 effect size (probability a
  random draw from ``a`` exceeds one from ``b``), because a p-value
  without a magnitude invites over-reading;
* :func:`bootstrap_ci` — percentile bootstrap confidence intervals on
  the median, deterministic under a fixed seed so reports are
  byte-reproducible.

Pure python + numpy; no scipy (hard constraint).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BootstrapCI",
    "MannWhitneyResult",
    "bootstrap_ci",
    "mann_whitney_u",
    "rankdata",
    "vargha_delaney_a12",
]


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Ranks (1-based) with ties sharing their average rank — the
    fractional ranking Mann-Whitney and A12 are defined over."""
    arr = np.asarray(values, dtype=float)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = np.arange(1, arr.size + 1, dtype=float)
    # Average ranks within each tie group.
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Two-sided Mann-Whitney U outcome for samples ``a`` vs ``b``."""

    u: float           #: U statistic of sample ``a``.
    p_value: float     #: Two-sided p (normal approximation, tie + continuity corrected).
    n_a: int
    n_b: int

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 verdict (reports still print p)."""
        return self.p_value < 0.05


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test on two independent samples.

    Normal approximation with tie correction in the variance and a
    0.5 continuity correction — the textbook large-sample form. Raises
    :class:`~repro.errors.ConfigurationError` on an empty sample (the
    report layer filters those out and reports them as missing data).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        raise ConfigurationError(
            f"mann_whitney_u needs non-empty samples (got n_a={n1}, n_b={n2})"
        )
    pooled = np.concatenate([a, b])
    ranks = rankdata(pooled)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    _, counts = np.unique(pooled, return_counts=True)
    tie_term = float(((counts**3 - counts).sum())) / (n * (n - 1)) if n > 1 else 0.0
    sigma_sq = n1 * n2 / 12.0 * ((n + 1) - tie_term)
    if sigma_sq <= 0:
        # All values tied: no evidence either way.
        return MannWhitneyResult(u=u1, p_value=1.0, n_a=n1, n_b=n2)
    z = (u1 - mu - math.copysign(0.5, u1 - mu)) / math.sqrt(sigma_sq) if u1 != mu else 0.0
    p = min(1.0, math.erfc(abs(z) / math.sqrt(2.0)))
    return MannWhitneyResult(u=u1, p_value=p, n_a=n1, n_b=n2)


def vargha_delaney_a12(a: Sequence[float], b: Sequence[float]) -> float:
    """Vargha-Delaney A12: P(draw from ``a`` > draw from ``b``) + half
    the tie probability. 0.5 = stochastically equal; > 0.5 = ``a``
    tends larger. For time-to-threshold comparisons *smaller* is
    better, so A12 < 0.5 means ``a`` is the faster algorithm."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        raise ConfigurationError(
            f"vargha_delaney_a12 needs non-empty samples (got n_a={n1}, n_b={n2})"
        )
    ranks = rankdata(np.concatenate([a, b]))
    r1 = float(ranks[:n1].sum())
    return (r1 / n1 - (n1 + 1) / 2.0) / n2


def a12_magnitude(a12: float) -> str:
    """The conventional Vargha-Delaney magnitude label for an A12
    value (thresholds 0.56 / 0.64 / 0.71 on the distance from 0.5)."""
    distance = abs(a12 - 0.5)
    if distance < 0.06:
        return "negligible"
    if distance < 0.14:
        return "small"
    if distance < 0.21:
        return "medium"
    return "large"


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval on a statistic."""

    estimate: float    #: The statistic on the observed sample.
    low: float
    high: float
    confidence: float  #: e.g. 0.95.
    n_boot: int


def bootstrap_ci(
    values: Sequence[float],
    *,
    stat: Callable[[np.ndarray], float] | None = None,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI on ``stat`` (default: median) of
    ``values``. Deterministic under ``seed`` — the report's
    byte-determinism contract rides on this."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("bootstrap_ci needs a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 1:
        raise ConfigurationError(f"n_boot must be >= 1, got {n_boot}")
    if stat is None:
        stat = lambda x: float(np.median(x))  # noqa: E731
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_boot, dtype=float)
    indices = rng.integers(0, arr.size, size=(n_boot, arr.size))
    for i in range(n_boot):
        estimates[i] = stat(arr[indices[i]])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=float(stat(arr)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_boot=n_boot,
    )
