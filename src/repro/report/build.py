"""Assemble the statistical comparison report from a result store.

:func:`build_report` turns a :class:`~repro.store.ResultStore` into
the living Section V: per-(workload, m, η) ranking tables with
bootstrap CIs, pairwise Mann-Whitney U + Vargha-Delaney A12 panels,
embedded :mod:`repro.viz` box plots, failure/divergence tallies split
by outcome, telemetry aggregates (staleness / occupancy vs the
Cor-3.2 prediction / kernel fallbacks), Perfetto trace links, and the
BENCH_history trajectory page.

Byte-determinism: every iteration below runs over sorted store output
(the store ``ORDER BY``-s every query), bootstrap draws come from a
caller-pinned seed, and the only timestamp on the page is the
caller-supplied ``generated_at`` string in the footer — so
``build_report(store, generated_at=X)`` is a pure function of the
database content.
"""

from __future__ import annotations

from itertools import combinations
from pathlib import Path

from repro.errors import ConfigurationError
from repro.report.html import esc, html_page, html_table, section
from repro.report.stats import (
    a12_magnitude,
    bootstrap_ci,
    mann_whitney_u,
    vargha_delaney_a12,
)
from repro.store.db import GroupStats, ResultStore

__all__ = ["build_report", "write_report"]

#: Ranking places groups with no converged sample after every group
#: with one; among the sampleless, more failures ranks later.
_NO_SAMPLE = float("inf")


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}g}"


def _median(values) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def _overview(store: ResultStore, eps: float) -> str:
    algorithms = store.algorithms()
    rows = [
        ("stored runs", store.count()),
        ("algorithms", ", ".join(algorithms)),
        ("workloads", ", ".join(str(w) for w in store.workloads())),
        ("sources", ", ".join(store.sources())),
        ("comparison threshold ε", _fmt(eps)),
        ("bench trajectory entries", store.bench_entry_count()),
    ]
    return section(
        "Overview",
        html_table(("", ""), rows, caption="Store contents"),
        '<p class="note">ε-convergence time is virtual seconds to first '
        "cross the threshold; comparisons are distributions over seeds, "
        "not single-run medians.</p>",
    )


def _cells(groups: list[GroupStats]) -> dict[tuple, list[GroupStats]]:
    """Group the store's (workload, algorithm, m, η) boxes into
    comparison cells keyed by (workload, m, η)."""
    cells: dict[tuple, list[GroupStats]] = {}
    for group in groups:
        key = (group.key.workload, group.key.m, group.key.eta)
        cells.setdefault(key, []).append(group)
    return cells


def _rank_sort_key(group: GroupStats):
    if group.times:
        return (0, _median(group.times), group.key.algorithm)
    return (1, group.failures.diverged + group.failures.crashed, group.key.algorithm)


def _ranking_table(
    groups: list[GroupStats], *, n_boot: int, confidence: float, seed: int
) -> tuple[str, dict[str, int]]:
    """The per-cell ranking table; also returns {algorithm: rank}."""
    ordered = sorted(groups, key=_rank_sort_key)
    rows, ranks = [], {}
    for rank, group in enumerate(ordered, start=1):
        ranks[group.key.algorithm] = rank
        if group.times:
            ci = bootstrap_ci(
                group.times, n_boot=n_boot, confidence=confidence, seed=seed
            )
            median = _fmt(ci.estimate)
            interval = f"[{_fmt(ci.low)}, {_fmt(ci.high)}]"
        else:
            median, interval = "—", "—"
        f = group.failures
        rows.append((
            rank, group.key.algorithm, len(group.times), median, interval,
            f.converged, f.diverged, f.stopped, f.crashed,
        ))
    table = html_table(
        ("rank", "algorithm", "n", "median t(ε)",
         f"{confidence:.0%} bootstrap CI", "converged", "diverged",
         "stopped", "crashed"),
        rows,
        caption="Ranking by median ε-convergence time (virtual s); "
        "groups with no converged run rank last",
        numeric=(0, 2, 3, 5, 6, 7, 8),
    )
    return table, ranks


def _pairwise_table(groups: list[GroupStats]) -> str:
    """Mann-Whitney U + A12 for every algorithm pair with samples."""
    sampled = [g for g in groups if g.times]
    rows, highlight = [], []
    for a, b in combinations(sampled, 2):
        mw = mann_whitney_u(a.times, b.times)
        a12 = vargha_delaney_a12(a.times, b.times)
        # Smaller time wins, so A12 < 0.5 means `a` is faster.
        faster = (a if a12 < 0.5 else b).key.algorithm if a12 != 0.5 else "—"
        if mw.significant:
            highlight.append(len(rows))
        rows.append((
            a.key.algorithm, b.key.algorithm, f"{mw.n_a}/{mw.n_b}",
            _fmt(mw.u), _fmt(mw.p_value), "yes" if mw.significant else "no",
            _fmt(a12, 3), a12_magnitude(a12), faster,
        ))
    if not rows:
        return '<p class="note">No algorithm pair has two non-empty samples.</p>'
    return html_table(
        ("A", "B", "n A/B", "U", "p (two-sided)", "p<0.05",
         "A12", "magnitude", "faster"),
        rows,
        caption="Pairwise Mann-Whitney U on ε-convergence time "
        "(A12 < 0.5: A tends faster; highlighted rows significant at α=0.05)",
        numeric=(3, 4, 6),
        highlight=highlight,
    )


def _cell_figure(groups: list[GroupStats], *, title: str) -> str:
    """The cell's convergence box plot, inlined as SVG (skipped with a
    note when no group has a sample — an empty chart misleads)."""
    from repro.viz.figures import fig_convergence_boxes

    boxes = {g.key.algorithm: list(g.times) for g in groups if g.times}
    if not boxes:
        return '<p class="note">No converged runs to plot for this cell.</p>'
    failures = {
        g.key.algorithm: (g.failures.diverged + g.failures.stopped,
                          g.failures.crashed)
        for g in groups
    }
    svg = fig_convergence_boxes(boxes, title=title, failures=failures).render()
    return f"<figure>\n{svg}<figcaption>{esc(title)}: box = IQR, whiskers = range; D/C counts diverged+stopped / crashed runs.</figcaption>\n</figure>"


def _comparison_sections(
    store: ResultStore, eps: float, *, n_boot: int, confidence: float, seed: int
) -> tuple[str, str]:
    """All per-cell sections plus the cross-cell average-rank table."""
    groups = store.group_stats(eps)
    if not groups:
        return (
            section("Comparisons",
                    '<p class="note warn">The store holds no runs.</p>'),
            "",
        )
    parts = []
    rank_sum: dict[str, list[int]] = {}
    for (workload, m, eta), cell_groups in sorted(
        _cells(groups).items(), key=lambda kv: (str(kv[0][0]), kv[0][1], kv[0][2])
    ):
        where = f"{workload} · " if workload else ""
        title = f"{where}m={m}, η={eta:g}"
        ranking, ranks = _ranking_table(
            cell_groups, n_boot=n_boot, confidence=confidence, seed=seed
        )
        for algorithm, rank in ranks.items():
            rank_sum.setdefault(algorithm, []).append(rank)
        parts.append(section(
            title,
            ranking,
            _pairwise_table(cell_groups),
            _cell_figure(cell_groups, title=f"t(ε={eps:g}) — {title}"),
            level=3,
        ))
    body = section(f"Comparisons at ε = {eps:g}", *parts)
    overall_rows = sorted(
        ((sum(r) / len(r), algorithm, len(r)) for algorithm, r in rank_sum.items()),
    )
    overall = ""
    if len(overall_rows) > 1 and any(len(r) > 1 for r in rank_sum.values()):
        overall = section(
            "Average rank across cells",
            html_table(
                ("algorithm", "mean rank", "cells"),
                [(a, _fmt(mean, 3), n) for mean, a, n in overall_rows],
                caption="Lower is better; averaged over every "
                "(workload, m, η) cell above",
                numeric=(1, 2),
            ),
        )
    return body, overall


def _failures_section(store: ResultStore) -> str:
    counts = store.failure_counts()
    if not counts:
        return ""
    rows = [
        (a, c.total, c.converged, c.diverged, c.stopped, c.crashed)
        for a, c in sorted(counts.items())
    ]
    return section(
        "Run outcomes",
        html_table(
            ("algorithm", "runs", "converged", "diverged", "stopped", "crashed"),
            rows,
            caption="Outcome tallies over every stored run "
            "(STOPPED = hit a wall/update budget before ε; "
            "DIVERGED = loss blew past the divergence guard)",
            numeric=(1, 2, 3, 4, 5),
        ),
    )


def _aggregates_section(store: ResultStore) -> str:
    rows = [
        (a["algorithm"], a["n_runs"], _fmt(a["mean_staleness"], 3),
         _fmt(a["p90_staleness"], 3), _fmt(a["mean_occupancy_ratio"], 3),
         a["kernel_fallbacks"], a["n_dropped"],
         _fmt(a["mean_cas_failure_rate"], 3), _fmt(a["mean_lock_wait"]))
        for a in store.aggregates()
    ]
    if not rows:
        return ""
    return section(
        "Telemetry aggregates",
        html_table(
            ("algorithm", "runs", "mean staleness", "p90 staleness",
             "occupancy / n*γ", "kernel fallbacks", "dropped", "CAS fail rate",
             "mean lock wait"),
            rows,
            caption="Per-algorithm means over stored runs; occupancy is the "
            "measured LAU retry-loop occupancy over the Cor-3.2 fixed point",
            numeric=(1, 2, 3, 4, 5, 6, 7, 8),
        ),
    )


def _traces_section(store: ResultStore) -> str:
    links = store.trace_links()
    if not links:
        return ""
    items = "\n".join(
        f'<li><a href="{esc(Path(t["path"]).as_posix())}">{esc(t["path"])}</a>'
        f' <span class="note">({esc(t["kind"])}'
        + (f', run dir {esc(t["run_dir"])}' if t["run_dir"] else "")
        + ")</span></li>"
        for t in links
    )
    return section(
        "Trace artifacts",
        f"<ul>\n{items}\n</ul>",
        '<p class="note">Chrome-trace JSON; open in a local Perfetto or '
        "chrome://tracing instance (paths resolve relative to where the "
        "store was ingested).</p>",
    )


def _bench_section(store: ResultStore) -> str:
    """The BENCH_history trajectory page: one chart per metric family,
    values normalized to each metric's first recorded value so wildly
    different units share an axis."""
    from repro.viz.charts import PALETTE, Chart

    trajectory = store.bench_trajectory()
    if not trajectory:
        return ""
    families: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for metric, points in trajectory.items():
        finite = [(i, v) for i, _, v in points if v is not None]
        if len(finite) < 2:
            continue
        family = metric.split(".", 1)[0]
        families.setdefault(family, {})[metric] = finite
    charts = []
    for family in sorted(families):
        series = families[family]
        x_max = max(i for pts in series.values() for i, _ in pts)
        ratios = {
            metric: [(i, v / pts[0][1]) for i, v in pts]
            for metric, pts in series.items()
            if pts[0][1]
        }
        if not ratios:
            continue
        lo = min(r for pts in ratios.values() for _, r in pts)
        hi = max(r for pts in ratios.values() for _, r in pts)
        chart = Chart(
            title=f"{family}.* trajectory", x_label="history entry",
            y_label="ratio to first record", width=640,
        )
        chart.set_scales((0.0, max(x_max, 1)), (min(lo, 1.0), max(hi, 1.0)))
        chart.draw_frame()
        for k, metric in enumerate(sorted(ratios)):
            xs = [i for i, _ in ratios[metric]]
            ys = [r for _, r in ratios[metric]]
            chart.add_line(xs, ys, label=metric,
                           color=PALETTE[k % len(PALETTE)])
        chart.draw_legend()
        charts.append(f"<figure>\n{chart.render()}</figure>")
    rows = []
    for metric in sorted(trajectory):
        points = trajectory[metric]
        finite = [v for _, _, v in points if v is not None]
        rows.append((
            metric, len(points),
            _fmt(finite[0]) if finite else "—",
            _fmt(finite[-1]) if finite else "—",
            _fmt(finite[-1] / finite[0], 3)
            if len(finite) >= 2 and finite[0] else "—",
        ))
    table = html_table(
        ("metric", "records", "first", "latest", "latest/first"),
        rows, caption="Recorded benchmark headline metrics",
        numeric=(1, 2, 3, 4),
    )
    if not charts:
        charts = ['<p class="note">No metric has two recorded points yet — '
                  "charts appear once the trajectory grows.</p>"]
    return section("Benchmark trajectory", table, *charts)


def build_report(
    store: ResultStore,
    *,
    eps: float | None = None,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
    generated_at: str = "(not recorded)",
    title: str = "Reproduction report — consistent lock-free parallel SGD",
) -> str:
    """The full report page as a string (see the module docstring for
    the determinism contract). ``eps`` defaults to the most common
    ``target_epsilon`` across stored runs."""
    if eps is None:
        eps = store.default_epsilon()
    if eps is None:
        raise ConfigurationError(
            "store holds no runs with a target epsilon — ingest results "
            "first or pass an explicit eps"
        )
    comparisons, overall = _comparison_sections(
        store, eps, n_boot=n_boot, confidence=confidence, seed=seed
    )
    body = "\n".join(part for part in (
        _overview(store, eps),
        comparisons,
        overall,
        _failures_section(store),
        _aggregates_section(store),
        _traces_section(store),
        _bench_section(store),
    ) if part)
    return html_page(title, body, generated_at=generated_at)


def write_report(store: ResultStore, path: str | Path, **kwargs) -> Path:
    """Build and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(store, **kwargs), encoding="utf-8")
    return path
