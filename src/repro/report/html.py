"""Self-contained static HTML primitives for ``repro report``.

The report is a single file: inline CSS, inline SVG, zero network
fetches — it must open identically from a CI artifact tarball, a
laptop, or an air-gapped review machine. This module holds the
low-level emitters (escaping, tables, sections, the page shell) and
:func:`validate_report_html`, the structural gate CI's report-smoke
job runs on the generated page.

Byte-determinism contract: nothing here reads clocks or randomness.
The page shell places the caller-supplied ``generated_at`` string in
exactly one footer block (``id="generated-at"``) so two builds from
the same store differ in zero bytes when the caller pins it — the
determinism test diffs entire pages.
"""

from __future__ import annotations

import html as _html
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "esc",
    "html_page",
    "html_table",
    "section",
    "validate_report_html",
]

#: The whole stylesheet, inline. Dark-on-light, table-heavy.
_CSS = """\
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 70rem; padding: 0 1rem;
       color: #1a1a1a; background: #ffffff; line-height: 1.45; }
h1 { border-bottom: 2px solid #0072B2; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; border-bottom: 1px solid #d0d0d0; padding-bottom: .2rem; }
h3 { margin-top: 1.4rem; color: #333; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .92rem; }
caption { caption-side: top; text-align: left; font-weight: 600;
          padding-bottom: .3rem; }
th, td { border: 1px solid #c8c8c8; padding: .25rem .6rem; text-align: left; }
th { background: #eef3f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.sig td { background: #eaf6ea; }
figure { margin: 1rem 0; }
figcaption { font-size: .85rem; color: #555; }
code { background: #f4f4f4; padding: 0 .25rem; border-radius: 3px; }
footer { margin-top: 3rem; border-top: 1px solid #d0d0d0; padding-top: .6rem;
         font-size: .8rem; color: #666; }
.note { color: #666; font-size: .88rem; }
.warn { color: #8a3b00; }
"""


def esc(value) -> str:
    """HTML-escape a value (everything user-derived goes through
    here — algorithm names, workload keys, file paths)."""
    return _html.escape(str(value), quote=True)


def html_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    caption: str = "",
    numeric: Sequence[int] = (),
    highlight: Iterable[int] = (),
) -> str:
    """One ``<table>``. ``numeric`` lists right-aligned column indices;
    ``highlight`` lists row indices rendered with the significance
    background. Cell values are escaped — pre-built markup is not
    accepted here by design."""
    numeric = set(numeric)
    highlight = set(highlight)
    out = ["<table>"]
    if caption:
        out.append(f"<caption>{esc(caption)}</caption>")
    out.append(
        "<thead><tr>" + "".join(f"<th>{esc(h)}</th>" for h in headers)
        + "</tr></thead>"
    )
    out.append("<tbody>")
    for i, row in enumerate(rows):
        cls = ' class="sig"' if i in highlight else ""
        cells = "".join(
            f'<td class="num">{esc(v)}</td>' if j in numeric else f"<td>{esc(v)}</td>"
            for j, v in enumerate(row)
        )
        out.append(f"<tr{cls}>{cells}</tr>")
    out.append("</tbody></table>")
    return "\n".join(out)


def section(title: str, *bodies: str, level: int = 2) -> str:
    """A heading plus its pre-built body markup."""
    tag = f"h{level}"
    return f"<{tag}>{esc(title)}</{tag}>\n" + "\n".join(b for b in bodies if b)


def html_page(title: str, body: str, *, generated_at: str) -> str:
    """The full page shell around pre-built ``body`` markup. The
    ``generated_at`` string lands in the single footer block — the only
    place a timestamp is permitted on the page."""
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{esc(title)}</title>
<style>
{_CSS}</style>
</head>
<body>
<h1>{esc(title)}</h1>
{body}
<footer id="generated-at">Generated at: {esc(generated_at)}</footer>
</body>
</html>
"""


def validate_report_html(text: str) -> None:
    """Structural gate on a generated report page; raises
    :class:`~repro.errors.ConfigurationError` on the first violation.

    Checks the self-containment contract (no scripts, no stylesheet
    links, no external fetches), that at least one figure made it in,
    and that the timestamp stayed confined to its single footer block.
    """
    problems = []
    if not text.startswith("<!doctype html>"):
        problems.append("missing <!doctype html> prologue")
    if text.count("<style>") != 1:
        problems.append("expected exactly one inline <style> block")
    lowered = text.lower()
    for forbidden, why in (
        ("<script", "scripts are forbidden (report must be inert)"),
        ("<link", "external stylesheets are forbidden (CSS must be inline)"),
        ('src="http', "external resource fetch (src)"),
        ("src='http", "external resource fetch (src)"),
        ('href="http', "external hyperlink target (must be offline-viewable)"),
        ("href='http", "external hyperlink target (must be offline-viewable)"),
        ("url(http", "external CSS fetch"),
        ("@import", "external CSS import"),
    ):
        if forbidden in lowered:
            problems.append(why)
    if "<svg" not in text:
        problems.append("no embedded SVG figure found")
    if text.count('id="generated-at"') != 1:
        problems.append("expected exactly one generated-at footer block")
    if "</html>" not in text:
        problems.append("page is truncated (no </html>)")
    if problems:
        raise ConfigurationError(
            "report HTML failed validation: " + "; ".join(problems)
        )
