"""Thread-balance dynamics of the LAU-SPC retry loop (Section IV.1).

The paper models the number of threads ``n_t`` inside the LAU-SPC retry
loop as a time-varying birth/death process: threads arrive after a
gradient computation of duration ``T_c`` and depart after an update of
duration ``T_u``:

    n_{t+1} = n_t + (m - n_t)/T_c - n_t/T_u                       (eq. 4)

whose closed form (Theorem 3) is

    n_t = [1 - (1 - 1/T_c - 1/T_u)^t] / (1 + T_c/T_u) * m
          + (1 - 1/T_c - 1/T_u)^t * n_0                           (eq. 5)

with the stable fixed point (Corollary 3.1)

    n* = m / (T_c/T_u + 1),

and, under a persistence bound raising the departure rate by a factor
``1 + gamma`` (eq. 6), the shifted fixed point (Corollary 3.2, eq. 7)

    n*_gamma = m / ((T_c/T_u) (1 + gamma) + 1).

Note: the recurrence treats one recurrence step as one unit of the time
axis on which ``T_c``/``T_u`` are expressed, so it is a valid discrete
model whenever ``1/T_c + 1/T_u < 1`` (per the paper's geometric-series
derivation); :func:`is_stable` checks exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


def _decay(tc: float, tu: float) -> float:
    return 1.0 - 1.0 / tc - 1.0 / tu


def occupancy_recurrence(
    m: int, tc: float, tu: float, *, n0: float = 0.0, steps: int = 100
) -> np.ndarray:
    """Iterate eq. (4) for ``steps`` steps; returns ``n_0 .. n_steps``.

    Parameters
    ----------
    m:
        Total threads.
    tc, tu:
        Gradient-computation and update durations, in recurrence-step
        units.
    n0:
        Initial retry-loop occupancy.
    """
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    check_non_negative("n0", n0)
    out = np.empty(steps + 1)
    out[0] = n0
    for i in range(steps):
        n = out[i]
        out[i + 1] = n + (m - n) / tc - n / tu
    return out


def occupancy_closed_form(
    m: int, tc: float, tu: float, t: np.ndarray | float, *, n0: float = 0.0
) -> np.ndarray | float:
    """Evaluate eq. (5) at step(s) ``t``."""
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    a = _decay(tc, tu)
    t_arr = np.asarray(t, dtype=float)
    decay_pow = np.power(a, t_arr)
    value = (1.0 - decay_pow) / (1.0 + tc / tu) * m + decay_pow * n0
    return value if isinstance(t, np.ndarray) else float(value)


def fixed_point(m: int, tc: float, tu: float) -> float:
    """Corollary 3.1: ``n* = m / (T_c/T_u + 1)``."""
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    return m / (tc / tu + 1.0)


def fixed_point_with_persistence(m: int, tc: float, tu: float, gamma: float) -> float:
    """Corollary 3.2 / eq. (7): ``n*_gamma = m / ((T_c/T_u)(1+gamma) + 1)``."""
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    check_non_negative("gamma", gamma, allow_inf=True)
    if np.isinf(gamma):
        return 0.0
    return m / ((tc / tu) * (1.0 + gamma) + 1.0)


def is_stable(tc: float, tu: float) -> bool:
    """Whether the recurrence's decay factor lies in (-1, 1), i.e. the
    discrete model converges to the fixed point for any ``n_0``."""
    check_positive("tc", tc)
    check_positive("tu", tu)
    return abs(_decay(tc, tu)) < 1.0
