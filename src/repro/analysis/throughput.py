"""Computational-efficiency model: predicted time per published update.

The paper measures time/iteration empirically (Fig 3 right); this module
derives first-order predictions per synchronization scheme from the cost
model, making the crossovers quantitative:

* SEQ — one thread does everything:
  ``T = tc + tu``.
* ASYNC (lock-based) — m workers pipeline gradient computation, but every
  update *and* every read-copy pass through one mutex:
  ``T = max((tc + t_copy + tu)/m, t_copy + tu)``; the second term is the
  lock-saturation floor that makes baseline time/iteration flat in m
  once saturated.
* HOG — no waiting, but unsynchronized bulk accesses pay coherence
  traffic proportional to the expected number of concurrent accessors:
  each worker spends ``s = t_copy + tu`` of every ``tc + s`` iteration
  inside the shared buffer, so a first-order estimate of concurrent
  peers is ``p = (m-1) * s_eff / (tc + s_eff)`` solved self-consistently
  with ``s_eff = s * (1 + penalty * p)``:
  ``T = (tc + s_eff) / m``.
* Leashed-SGD — publications serialize through the CAS point: each
  successful publish occupies the "commit channel" for about
  ``t_copy + tu``, so
  ``T = max((tc + t_alloc + t_copy + tu)/m, t_copy + tu)``;
  unlike the mutex, the channel is non-blocking — the max expresses
  throughput, not progress. With a finite persistence bound throughput
  can only improve (failed competitors stop retrying), so the same
  expression is an upper bound for LSH_ps<k>.

``benchmarks/test_ablation_throughput.py`` compares these against
measured time/update.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.cost import CostModel
from repro.utils.validation import check_positive


def predicted_time_per_update(algorithm: str, m: int, cost: CostModel) -> float:
    """First-order time per published update, in virtual seconds.

    ``algorithm``: SEQ | ASYNC | HOG | LSH (any persistence).
    """
    check_positive("m", m)
    s = cost.t_copy + cost.tu
    if algorithm == "SEQ":
        return cost.tc + cost.tu
    if algorithm == "ASYNC":
        return max((cost.tc + s) / m, s)
    if algorithm == "HOG":
        # self-consistent concurrent-accessor estimate (2 iterations of
        # the fixed point are plenty at first order)
        s_eff = s
        for _ in range(8):
            p = (m - 1) * s_eff / (cost.tc + s_eff)
            s_eff = s * (1.0 + cost.coherence_penalty * p)
        return (cost.tc + s_eff) / m
    if algorithm.startswith("LSH"):
        return max((cost.tc + cost.t_alloc + s) / m, s)
    raise ConfigurationError(f"no throughput model for algorithm {algorithm!r}")


def saturation_threads(algorithm: str, cost: CostModel) -> float:
    """Thread count beyond which the serialized stage saturates (the
    knee of the Fig 3 right curves); inf for HOG (no serialization)."""
    s = cost.t_copy + cost.tu
    if algorithm == "ASYNC":
        return (cost.tc + s) / s
    if algorithm.startswith("LSH"):
        return (cost.tc + cost.t_alloc + s) / s
    if algorithm in ("SEQ", "HOG"):
        return float("inf")
    raise ConfigurationError(f"no throughput model for algorithm {algorithm!r}")


def predicted_speedup(algorithm: str, m: int, cost: CostModel) -> float:
    """Throughput speedup over SEQ at thread count ``m``."""
    return predicted_time_per_update("SEQ", 1, cost) / predicted_time_per_update(
        algorithm, m, cost
    )
