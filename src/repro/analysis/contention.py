"""Staleness decomposition and contention estimates (Section IV.2).

The complete staleness of an update splits as ``tau = tau_c + tau_s``
(following [4]):

* ``tau_c`` — updates published *while the gradient was being computed*:
  with m-1 other threads each publishing roughly every
  ``T_c + T_u_effective`` seconds, a computation of length ``T_c``
  overlaps about ``(m-1) * T_c / (T_c + T_u)`` publications,
* ``tau_s`` — competing ready gradients scheduled before this one in the
  LAU-SPC loop; the paper estimates ``E[tau_s] ~ n*_gamma``, the
  persistence-shifted retry-loop occupancy, which the persistence bound
  regulates down to 0 (at ``T_p = 0``, no failed CAS precedes any
  published update, so ``tau_s = 0`` exactly).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dynamics import fixed_point_with_persistence
from repro.utils.validation import check_non_negative, check_positive


def persistence_gamma(persistence: float) -> float:
    """Map a persistence bound ``T_p`` to the departure-rate boost
    ``gamma`` of eq. (6).

    ``T_p = inf`` means no boost (``gamma = 0``); a finite bound lets a
    thread leave after at most ``T_p + 1`` attempts, i.e. roughly one
    extra departure per ``T_p + 1`` attempts -> ``gamma = 1/(T_p + 1)``.
    This monotone map (``T_p=0 -> gamma=1``, growing bound -> smaller
    gamma) is the modelling choice; the paper leaves gamma abstract.
    """
    check_non_negative("persistence", persistence, allow_inf=True)
    if np.isinf(persistence):
        return 0.0
    return 1.0 / (persistence + 1.0)


def expected_scheduling_staleness(
    m: int, tc: float, tu: float, *, persistence: float = float("inf")
) -> float:
    """``E[tau_s] ~ n*_gamma`` (Section IV.2), exactly 0 at ``T_p = 0``."""
    check_positive("m", m)
    if persistence == 0:
        return 0.0
    gamma = persistence_gamma(persistence)
    return fixed_point_with_persistence(m, tc, tu, gamma)


def expected_compute_staleness(m: int, tc: float, tu: float) -> float:
    """``E[tau_c]``: publications overlapping one gradient computation.

    In steady state each of the other ``m - 1`` threads publishes about
    once per ``T_c + T_u`` seconds, so a window of length ``T_c``
    overlaps ``(m-1) * T_c / (T_c + T_u)`` of them.
    """
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    return (m - 1) * tc / (tc + tu)


def expected_total_staleness(
    m: int, tc: float, tu: float, *, persistence: float = float("inf")
) -> float:
    """``E[tau] = E[tau_c] + E[tau_s]``."""
    return expected_compute_staleness(m, tc, tu) + expected_scheduling_staleness(
        m, tc, tu, persistence=persistence
    )
