"""Memory-consumption model (Lemma 2 and the Section III discussion).

* Baselines (AsyncSGD, HOGWILD!): **exactly 2m + 1** ParameterVector
  instances held constantly — the shared PARAM plus per-thread
  ``local_param`` and ``local_grad``.
* Leashed-SGD: at most **3m** instances simultaneously (Lemma 2 (ii)) —
  per thread a pinned ``latest_param``, a private ``new_param``, and
  ``local_grad`` — but on average fewer, because ``new_param`` only
  exists between the end of a gradient computation and its publication:
  with gradient computation dominating (``T_c >> T_u``) the expected
  live count approaches ``m + 1`` gradients + ~1-2 published vectors,
  which is where the paper's observed ~17% CNN memory saving comes from.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive


def baseline_instances(m: int) -> int:
    """Constant live ParameterVector count of ASYNC / HOG: ``2m + 1``."""
    check_positive("m", m)
    return 2 * int(m) + 1


def leashed_max_instances(m: int) -> int:
    """Lemma 2 (ii): Leashed-SGD holds at most ``3m`` instances.

    (The transient worst case in this implementation is ``3m + 1``:
    all m threads simultaneously pin distinct stale vectors *and* hold
    private candidates while a freshly published vector exists that no
    thread has pinned yet; the paper's count folds the published vector
    into some thread's ``latest_param``.)
    """
    check_positive("m", m)
    return 3 * int(m)


def leashed_expected_instances(m: int, tc: float, tu: float, t_copy: float = 0.0) -> float:
    """Expected live count: ``m`` gradient buffers + ``1`` published
    vector + the fraction of threads currently inside the LAU-SPC loop
    holding a candidate (``new_param`` lives for ~``t_copy + tu`` of
    each ``tc + t_copy + tu`` iteration)."""
    check_positive("m", m)
    check_positive("tc", tc)
    check_positive("tu", tu)
    check_non_negative("t_copy", t_copy)
    frac_in_loop = (t_copy + tu) / (tc + t_copy + tu)
    return m + 1 + m * frac_in_loop


def predicted_memory_bytes(instances: float, d: int, *, itemsize: int = 4) -> float:
    """Bytes for ``instances`` ParameterVectors of dimension ``d``."""
    check_positive("d", d)
    check_positive("itemsize", itemsize)
    return float(instances) * d * itemsize
