"""Analytical models from Section IV of the paper: LAU-SPC retry-loop
dynamics (eq. 4/5, Theorem 3), fixed points and the persistence-shifted
fixed point (Corollaries 3.1/3.2), staleness estimation, and the memory
bounds of Lemma 2."""

from repro.analysis.dynamics import (
    occupancy_recurrence,
    occupancy_closed_form,
    fixed_point,
    fixed_point_with_persistence,
    is_stable,
)
from repro.analysis.contention import (
    expected_scheduling_staleness,
    expected_compute_staleness,
    expected_total_staleness,
    persistence_gamma,
)
from repro.analysis.memory_model import (
    baseline_instances,
    leashed_max_instances,
    predicted_memory_bytes,
)
from repro.analysis.stability import (
    max_stable_eta,
    predicted_frontier,
    stability_margin,
)
from repro.analysis.throughput import (
    predicted_time_per_update,
    predicted_speedup,
    saturation_threads,
)

__all__ = [
    "occupancy_recurrence",
    "occupancy_closed_form",
    "fixed_point",
    "fixed_point_with_persistence",
    "is_stable",
    "expected_scheduling_staleness",
    "expected_compute_staleness",
    "expected_total_staleness",
    "persistence_gamma",
    "baseline_instances",
    "leashed_max_instances",
    "predicted_memory_bytes",
    "max_stable_eta",
    "predicted_frontier",
    "stability_margin",
    "predicted_time_per_update",
    "predicted_speedup",
    "saturation_threads",
]
