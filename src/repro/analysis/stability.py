"""Stability frontier of delayed SGD: how large a step size survives a
given staleness.

Classical delay-difference analysis: on a quadratic direction with
curvature ``h``, asynchronous SGD behaves as the delayed recurrence

    theta_{t+1} = theta_t - eta * h * theta_{t - tau},

which is asymptotically stable iff

    eta * h < 2 * sin( pi / (2 * (2*tau + 1)) )

(the classic root-locus condition for x_{t+1} = x_t - a x_{t-tau}; at
``tau = 0`` it recovers the familiar ``eta*h < 2``, and it decays like
``pi / (2*tau)`` for large delays — the "iterations grow linearly in the
maximum staleness" regime of De Sa et al. [11] seen from the stability
side).

Combining it with the staleness expectations of
:mod:`repro.analysis.contention` yields a *predicted stability
frontier* per algorithm: the maximum step size each synchronization
scheme should tolerate at a given thread count. The paper's Fig 8
observation — Leashed-SGD converges for larger eta than the baselines —
is this frontier ordering, since the persistence bound cuts E[tau];
``benchmarks/test_ablation_stability.py`` measures the empirical
frontier and checks the ordering.
"""

from __future__ import annotations

import math

from repro.analysis.contention import expected_total_staleness
from repro.utils.validation import check_non_negative, check_positive


def max_stable_eta(h: float, tau: float) -> float:
    """Largest stable step size for curvature ``h`` and delay ``tau``.

    ``tau`` may be fractional (an expected staleness); the condition is
    interpolated continuously.
    """
    check_positive("h", h)
    check_non_negative("tau", tau)
    return 2.0 * math.sin(math.pi / (2.0 * (2.0 * tau + 1.0))) / h


def predicted_frontier(
    m: int,
    tc: float,
    tu: float,
    *,
    h: float = 1.0,
    persistence: float = float("inf"),
) -> float:
    """Predicted maximum stable eta for a Leashed-SGD-style algorithm
    with the given persistence bound at thread count ``m``.

    Uses ``E[tau]`` from the Section IV contention model; for the
    baselines pass ``persistence=inf`` (no CAS-drop regulation) — their
    expected staleness is the same tau_c plus the unregulated tau_s.
    """
    tau = expected_total_staleness(m, tc, tu, persistence=persistence)
    return max_stable_eta(h, tau)


def stability_margin(eta: float, h: float, tau: float) -> float:
    """How far inside (>1) or outside (<1) the stable region an
    operating point sits: ``max_stable_eta / eta``."""
    check_positive("eta", eta)
    return max_stable_eta(h, tau) / eta
