"""Dataset container and seeded mini-batch sampling.

The paper samples MNIST "in mini-batches of 512"; each simulated worker
thread owns a :class:`MiniBatcher` with an independent RNG stream, so
the batch sequence of one thread is unaffected by how many other threads
exist — keeping convergence comparisons across parallelism levels
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ShapeError


@dataclass(frozen=True)
class Dataset:
    """Images + integer labels.

    ``images`` may be ``(n, H, W)`` (spatial) or ``(n, d)`` (flat); the
    accessors below produce whichever layout a network needs without
    mutating the stored array.
    """

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"images ({self.images.shape[0]}) and labels ({self.labels.shape[0]}) "
                "disagree on sample count"
            )
        if self.labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {self.labels.shape}")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def n_classes(self) -> int:
        """Number of distinct classes (assumes labels are 0..K-1)."""
        return int(self.labels.max()) + 1 if len(self) else 0

    def as_flat(self) -> np.ndarray:
        """``(n, prod(dims))`` view/copy suitable for MLP input."""
        return self.images.reshape(len(self), -1)

    def as_images(self, channels: int = 1) -> np.ndarray:
        """``(n, channels, H, W)`` array suitable for CNN input."""
        if self.images.ndim == 3:
            if channels != 1:
                raise ShapeError(f"stored images are single-channel; asked for {channels}")
            return self.images[:, None, :, :]
        if self.images.ndim == 4:
            return self.images
        raise ShapeError(f"cannot interpret images of shape {self.images.shape} spatially")

    def subset(self, n: int) -> "Dataset":
        """The first ``n`` samples (used by reduced fidelity profiles)."""
        if not (0 < n <= len(self)):
            raise ConfigurationError(f"subset size {n} out of range (1..{len(self)})")
        return Dataset(images=self.images[:n], labels=self.labels[:n])


class MiniBatcher:
    """Uniform with-replacement mini-batch sampler over a dataset.

    Parameters
    ----------
    data:
        The dataset, already in the layout the consumer wants
        (pass ``Dataset(images=ds.as_flat(), ...)`` for MLPs, etc. — or
        use :meth:`for_network`).
    batch_size:
        Samples per batch (paper: 512).
    rng:
        Private generator for this sampler.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, batch_size: int, rng: np.random.Generator) -> None:
        if x.shape[0] != y.shape[0]:
            raise ShapeError(f"x ({x.shape[0]}) and y ({y.shape[0]}) disagree on sample count")
        if not (0 < batch_size):
            raise ConfigurationError(f"batch_size must be > 0, got {batch_size}")
        if x.shape[0] == 0:
            raise ConfigurationError("cannot batch an empty dataset")
        self._x = x
        self._y = y
        self.batch_size = int(min(batch_size, x.shape[0]))
        self._rng = rng
        self._idx_block: np.ndarray | None = None
        self._idx_pos = 0

    #: Batches of indices drawn per RNG call on the buffered path — one
    #: ``Generator.integers`` call has ~6us of fixed overhead, so the
    #: hot path draws indices in blocks and slices them per batch.
    _INDEX_BLOCK_BATCHES = 64

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw one uniform with-replacement mini-batch."""
        idx = self._rng.integers(0, self._x.shape[0], size=self.batch_size)
        return self._x[idx], self._y[idx]

    def next_batch_into(
        self, x_out: np.ndarray, y_out: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw a mini-batch into caller-owned buffers (no allocation).

        Produces the exact index sequence of :meth:`next_batch` from the
        same seed — bounded integer sampling is element-wise, so one
        block draw is bitwise-equal to the concatenation of per-batch
        draws — and gathers the same samples (``take`` == fancy
        indexing, element for element). The block draw *pre-consumes*
        the RNG stream, though, so switching methods mid-stream on one
        instance diverges; each consumer picks one path and stays on it.
        """
        idx = self.next_batch_indices()
        self._x.take(idx, axis=0, out=x_out)
        self._y.take(idx, axis=0, out=y_out)
        return x_out, y_out

    def next_batch_indices(self) -> np.ndarray:
        """The next batch's sample indices from the blocked stream.

        Consumes the RNG exactly as :meth:`next_batch_into` (it is that
        method's index half), so a consumer may interleave the two
        freely — the replica-stacked executor stages indices here and
        gathers the samples itself. The returned array is a view into
        the current block: use it before the next draw or copy it.
        """
        block = self._idx_block
        if block is None or self._idx_pos >= block.shape[0]:
            block = self._idx_block = self._rng.integers(
                0, self._x.shape[0], size=self._INDEX_BLOCK_BATCHES * self.batch_size
            )
            self._idx_pos = 0
        idx = block[self._idx_pos : self._idx_pos + self.batch_size]
        self._idx_pos += self.batch_size
        return idx

    @property
    def n_samples(self) -> int:
        """Size of the underlying dataset."""
        return int(self._x.shape[0])
