"""Procedural MNIST stand-in: 10-class 28x28 digit glyphs.

Each class is a classic 5x7 bitmap digit, upscaled onto a 28x28 canvas,
then perturbed per sample by a random integer translation (up to +-3
pixels), multiplicative intensity scaling, additive Gaussian pixel
noise, and Gaussian blur of randomized width. The generator is fully
vectorized (samples are produced per (shift, class) group with
``np.roll``), so 60k images take well under a second.

Why this is an adequate substitute for the paper's MNIST (DESIGN.md
section 2): the experiments compare *synchronization schemes* of
parallel SGD on a non-convex DL loss; they need a learnable 10-class
image task of the same input dimensionality, batch size and network
architectures — not MNIST's specific pixel statistics. Translation +
noise make the task non-trivially non-linear (a single template match
does not solve it), so the loss descends over hundreds of SGD
iterations, giving the convergence curves the experiments measure.

For runs against the genuine files, :func:`load_idx_images` /
:func:`load_idx_labels` read the standard IDX format from disk.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

import numpy as np
from scipy import ndimage

from repro.data.batcher import Dataset
from repro.errors import ConfigurationError

# Classic 5x7 bitmap font for the ten digits.
_GLYPHS_5x7 = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    3: ("11111", "00010", "00100", "00010", "00001", "10001", "01110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}

IMAGE_SIZE = 28
N_CLASSES = 10


def _base_glyph(digit: int, *, blur_sigma: float = 0.7) -> np.ndarray:
    """The 28x28 canonical image of ``digit`` (float32 in [0, 1])."""
    rows = _GLYPHS_5x7[digit]
    bitmap = np.asarray([[int(c) for c in row] for row in rows], dtype=np.float32)
    scaled = np.kron(bitmap, np.ones((3, 4), dtype=np.float32))  # 21 x 20
    canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
    top = (IMAGE_SIZE - scaled.shape[0]) // 2
    left = (IMAGE_SIZE - scaled.shape[1]) // 2
    canvas[top : top + scaled.shape[0], left : left + scaled.shape[1]] = scaled
    if blur_sigma > 0:
        canvas = ndimage.gaussian_filter(canvas, blur_sigma)
        peak = canvas.max()
        if peak > 0:
            canvas /= peak
    return canvas


class SyntheticMNIST:
    """A generated train/eval corpus with MNIST's shapes.

    Attributes
    ----------
    train, eval:
        :class:`repro.data.batcher.Dataset` instances; images are
        ``(n, 28, 28)`` float32 in [0, 1], labels ``(n,)`` int64.
    """

    def __init__(self, train: Dataset, eval: Dataset) -> None:  # noqa: A002
        self.train = train
        self.eval = eval

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyntheticMNIST(train={len(self.train)}, eval={len(self.eval)})"


def _generate_split(
    n: int,
    rng: np.random.Generator,
    *,
    max_shift: int,
    noise_std: float,
) -> Dataset:
    labels = rng.integers(0, N_CLASSES, size=n).astype(np.int64)
    images = np.empty((n, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
    shifts_y = rng.integers(-max_shift, max_shift + 1, size=n)
    shifts_x = rng.integers(-max_shift, max_shift + 1, size=n)
    bases = {digit: _base_glyph(digit) for digit in range(N_CLASSES)}
    # Group identical (class, dy, dx) triples: each group is one np.roll.
    span = 2 * max_shift + 1
    keys = (labels * span + (shifts_y + max_shift)) * span + (shifts_x + max_shift)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    for group in np.split(order, boundaries):
        i = group[0]
        rolled = np.roll(
            bases[int(labels[i])], (int(shifts_y[i]), int(shifts_x[i])), axis=(0, 1)
        )
        images[group] = rolled
    # Per-sample intensity scaling and pixel noise.
    intensity = rng.uniform(0.7, 1.0, size=(n, 1, 1)).astype(np.float32)
    images *= intensity
    if noise_std > 0:
        images += rng.normal(0.0, noise_std, size=images.shape).astype(np.float32)
    np.clip(images, 0.0, 1.0, out=images)
    # The corpus is immutable from here on: consumers only ever sample
    # from it, and a read-only buffer is safe to alias into a zero-copy
    # shared-memory broadcast (repro.harness.pool) without a defensive
    # copy.
    images.flags.writeable = False
    labels.flags.writeable = False
    return Dataset(images=images, labels=labels)


def generate_synthetic_mnist(
    *,
    n_train: int = 60_000,
    n_eval: int = 2_048,
    seed: int = 0,
    max_shift: int = 3,
    noise_std: float = 0.15,
) -> SyntheticMNIST:
    """Generate the synthetic corpus.

    Parameters
    ----------
    n_train, n_eval:
        Split sizes (paper: 60,000 training images).
    seed:
        Root seed; train and eval use independent child streams.
    max_shift:
        Maximum absolute translation in pixels (class-preserving
        nuisance variation).
    noise_std:
        Additive Gaussian pixel-noise standard deviation.
    """
    if n_train <= 0 or n_eval <= 0:
        raise ConfigurationError(f"split sizes must be > 0, got {n_train}, {n_eval}")
    if not (0 <= max_shift < IMAGE_SIZE // 2):
        raise ConfigurationError(f"max_shift must be in [0, {IMAGE_SIZE // 2}), got {max_shift}")
    ss = np.random.SeedSequence(seed)
    train_rng, eval_rng = (np.random.Generator(np.random.PCG64(c)) for c in ss.spawn(2))
    train = _generate_split(n_train, train_rng, max_shift=max_shift, noise_std=noise_std)
    eval_split = _generate_split(n_eval, eval_rng, max_shift=max_shift, noise_std=noise_std)
    return SyntheticMNIST(train=train, eval=eval_split)


# ----------------------------------------------------------------------
# Real-MNIST IDX readers (usable when the files exist locally).
# ----------------------------------------------------------------------
def _open_maybe_gzip(path: Path):
    if str(path).endswith(".gz"):
        return gzip.open(path, "rb")
    return open(path, "rb")


def load_idx_images(path: str | Path) -> np.ndarray:
    """Read an IDX3 image file (optionally .gz) into ``(n, H, W)`` floats
    scaled to [0, 1]."""
    path = Path(path)
    with _open_maybe_gzip(path) as fh:
        magic, n, rows, cols = struct.unpack(">IIII", fh.read(16))
        if magic != 0x00000803:
            raise ConfigurationError(f"{path} is not an IDX3 image file (magic={magic:#x})")
        raw = np.frombuffer(fh.read(n * rows * cols), dtype=np.uint8)
    return (raw.reshape(n, rows, cols).astype(np.float32)) / 255.0


def load_idx_labels(path: str | Path) -> np.ndarray:
    """Read an IDX1 label file (optionally .gz) into ``(n,)`` int64."""
    path = Path(path)
    with _open_maybe_gzip(path) as fh:
        magic, n = struct.unpack(">II", fh.read(8))
        if magic != 0x00000801:
            raise ConfigurationError(f"{path} is not an IDX1 label file (magic={magic:#x})")
        raw = np.frombuffer(fh.read(n), dtype=np.uint8)
    return raw.astype(np.int64)
