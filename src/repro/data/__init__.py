"""Datasets and batching.

The paper trains on MNIST; this environment has no network access, so
:mod:`repro.data.synthetic_mnist` generates a procedural 10-class
28x28 digit-glyph dataset with the same shapes, class count and batching
(see DESIGN.md section 2 for the substitution argument). The real-MNIST
loading path (:func:`repro.data.synthetic_mnist.load_idx_images`) is
kept so the same experiments run unchanged on the genuine files when
they are available on disk.
"""

from repro.data.synthetic_mnist import (
    SyntheticMNIST,
    generate_synthetic_mnist,
    load_idx_images,
    load_idx_labels,
)
from repro.data.batcher import MiniBatcher, Dataset

__all__ = [
    "SyntheticMNIST",
    "generate_synthetic_mnist",
    "load_idx_images",
    "load_idx_labels",
    "MiniBatcher",
    "Dataset",
]
