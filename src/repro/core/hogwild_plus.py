"""HOGWILD!++ — the decentralized cluster-based variant of Zhang,
Hsieh & Akella [41], cited in the paper's related work.

The original targets NUMA machines: threads are partitioned into
clusters (one per NUMA node), each cluster runs HOGWILD! on its *own*
model replica (so cross-socket write-sharing disappears), and a token
circulates around the cluster ring carrying model state; when the token
visits a cluster it exchanges updates — the cluster folds the delta it
accumulated since the last visit into the token, and pulls the token's
state into its replica with a mixing weight.

This implementation follows that structure on the simulator:

* ``n_clusters`` replicas, workers round-robin assigned;
* within a cluster, plain HOGWILD! (chunked, tearable, coherence-priced
  against the *cluster's own* accessor count only);
* one token thread hopping clusters every ``sync_period`` virtual
  seconds, performing ``token += (replica - snapshot)`` (fold local
  progress) then ``replica = (1-mix)*replica + mix*token`` and
  re-snapshotting — atomic in the simulator, as the original's brief
  per-visit synchronization is.

The monitor observes the token's model (the object that has seen every
cluster), matching how [41] evaluates the mixed model.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle, register_algorithm
from repro.core.hogwild import chunk_slices
from repro.core.parameter_vector import ParameterVector
from repro.errors import ConfigurationError
from repro.sim.grad import GradCompute
from repro.sim.sync import AtomicCounter
from repro.sim.thread import SimThread


class HogwildPlusPlus(Algorithm):
    """Cluster-decentralized HOGWILD! with a circulating mixing token."""

    def __init__(self, n_clusters: int = 2, *, mix: float = 0.5, sync_period: float | None = None) -> None:
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if not (0.0 < mix <= 1.0):
            raise ConfigurationError(f"mix must be in (0, 1], got {mix}")
        if sync_period is not None and sync_period <= 0:
            raise ConfigurationError(f"sync_period must be > 0, got {sync_period}")
        self.n_clusters = int(n_clusters)
        self.mix = float(mix)
        self.sync_period = sync_period
        self.name = f"HOGPP_c{n_clusters}"
        self.replicas: list[ParameterVector] = []
        self.snapshots: list[np.ndarray] = []
        self.token: ParameterVector | None = None
        self._accessors: list[AtomicCounter] = []

    # ------------------------------------------------------------------
    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        self.replicas = []
        self.snapshots = []
        self._accessors = []
        for c in range(self.n_clusters):
            replica = ParameterVector(
                ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
                arena=ctx.arena,
            )
            replica.theta[...] = theta0
            self.replicas.append(replica)
            self.snapshots.append(np.array(theta0, dtype=ctx.dtype))
            self._accessors.append(AtomicCounter(0))
        self.token = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        self.token.theta[...] = theta0

    def spawn_workers(self, ctx: SGDContext, m: int) -> list[SimThread]:
        threads = super().spawn_workers(ctx, m)
        period = self.sync_period
        if period is None:
            # Default: roughly one visit per cluster per couple of
            # local updates.
            period = 2.0 * (ctx.cost.tc + ctx.cost.tu) / max(m // self.n_clusters, 1)
        ctx.scheduler.spawn(
            f"{self.name}-token", lambda thread: self._token_body(ctx, thread, period)
        )
        return threads

    # ------------------------------------------------------------------
    def _token_body(self, ctx: SGDContext, thread: SimThread, period: float) -> Generator:
        token = self.token
        cluster = 0
        with np.errstate(over="ignore", invalid="ignore"):
            while True:
                yield period  # travel + wait between visits
                replica = self.replicas[cluster]
                snapshot = self.snapshots[cluster]
                # Fold the cluster's progress since the last visit into
                # the token, then mix the token back into the replica.
                delta = replica.theta - snapshot
                token.theta += delta
                replica.theta += self.mix * (token.theta - replica.theta)
                np.copyto(snapshot, replica.theta)
                yield 2.0 * ctx.cost.tu  # two bulk passes over d
                cluster = (cluster + 1) % self.n_clusters

    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        cluster = handle.index % self.n_clusters
        replica = self.replicas[cluster]
        accessors = self._accessors[cluster]
        local_param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="local_param", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        handle.local_pvs.append(local_param)
        grad = handle.grad_pv.theta
        scratch = handle.step_scratch
        slices = chunk_slices(ctx.problem.d, ctx.cost.n_chunks)
        copy_chunk = ctx.cost.t_copy / len(slices)
        update_chunk = ctx.cost.tu / len(slices)
        eta = ctx.eta
        probes = ctx.probes
        while True:
            view_seq = ctx.global_seq.load()
            accessors.fetch_add(1)
            for sl in slices:
                np.copyto(local_param.theta[sl], replica.theta[sl])
                yield ctx.cost.contended(copy_chunk, accessors.load() - 1)
            accessors.fetch_add(-1)
            probes.read_pinned(ctx.scheduler.now, thread.tid, view_seq)

            yield GradCompute(
                handle.grad_fn, local_param.theta, grad, ctx.cost.tc, handle.grad_task
            )
            probes.grad_done(ctx.scheduler.now, thread.tid, ctx.global_seq.load())

            shared = replica.theta
            accessors.fetch_add(1)
            with np.errstate(over="ignore", invalid="ignore"):
                for sl in slices:
                    if scratch is None:
                        shared[sl] -= eta * grad[sl]
                    else:
                        np.multiply(grad[sl], eta, out=scratch[sl])
                        shared[sl] -= scratch[sl]
                    yield ctx.cost.contended(update_chunk, accessors.load() - 1)
            accessors.fetch_add(-1)
            replica.t += 1
            seq = ctx.global_seq.fetch_add(1)
            probes.publish(ctx.scheduler.now, thread.tid, seq, seq - view_seq)

    # ------------------------------------------------------------------
    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.token.theta

    def __repr__(self) -> str:  # pragma: no cover
        return f"HogwildPlusPlus(n_clusters={self.n_clusters}, mix={self.mix})"


register_algorithm("HOGPP_c2", lambda: HogwildPlusPlus(2))
register_algorithm("HOGPP_c4", lambda: HogwildPlusPlus(4))
