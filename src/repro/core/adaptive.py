"""Staleness-adaptive Leashed-SGD — the extension direction the paper
points to.

Section VI notes that staleness-adaptive step sizes ([4] MindTheStep-
AsyncPSGD, [33], [38], [43]) are "orthogonal to this work and can be
applied in conjunction with the algorithms and synchronization
mechanisms considered here". This class does exactly that: Algorithm 3
runs unchanged, except that the step applied at publication time is
scaled by a function of the update's *measured* staleness,

    eta_eff = eta / (1 + damping * tau),

the standard inverse-staleness damping (tau = 0 recovers plain eta).
Because Leashed-SGD knows tau exactly at the moment of its CAS-publish
(the difference of vector sequence numbers), the adaptation needs no
extra synchronization — a concrete payoff of the consistent design. The
implementation is therefore a single overridden hook
(:meth:`repro.core.leashed.LeashedSGD.effective_eta`).

Registered as ``LSH_ADAPT`` / ``LSH_ADAPT_psinf``; build other
persistence/damping combinations with :func:`make_adaptive`.
"""

from __future__ import annotations

from repro.core.base import register_algorithm
from repro.core.leashed import LeashedSGD
from repro.errors import ConfigurationError


class AdaptiveLeashedSGD(LeashedSGD):
    """Leashed-SGD with inverse-staleness step damping."""

    def __init__(self, persistence: float = float("inf"), *, damping: float = 0.5) -> None:
        super().__init__(persistence=persistence)
        if not (damping >= 0):
            raise ConfigurationError(f"damping must be >= 0, got {damping!r}")
        self.damping = float(damping)
        suffix = "inf" if persistence == float("inf") else str(int(persistence))
        self.name = f"LSH_ADAPT_ps{suffix}"

    def effective_eta(self, eta: float, staleness: int) -> float:
        """The damped step size for an update of staleness ``tau``."""
        return eta / (1.0 + self.damping * max(staleness, 0))

    def __repr__(self) -> str:  # pragma: no cover
        return f"AdaptiveLeashedSGD(persistence={self.persistence}, damping={self.damping})"


def make_adaptive(persistence: float = float("inf"), damping: float = 0.5) -> AdaptiveLeashedSGD:
    """Factory for parameterized adaptive variants."""
    return AdaptiveLeashedSGD(persistence=persistence, damping=damping)


register_algorithm("LSH_ADAPT_psinf", AdaptiveLeashedSGD)
register_algorithm("LSH_ADAPT", AdaptiveLeashedSGD)
