"""Synchronous SGD (SyncSGD) — the lock-step comparator of Section I.

Each round, all m workers compute a gradient on the *same* parameter
snapshot, meet at a barrier, and a designated aggregator averages the m
gradients and applies one global step — statistically equivalent to
sequential SGD with an m-fold larger batch [Zinkevich et al.; Gupta et
al.]. Zero staleness and perfect consistency, but every round is paced
by the slowest worker, which is exactly the scalability ceiling the
paper's asynchronous algorithms remove (and which the scheduler's
per-thread speed spread makes visible here).

Not part of the paper's evaluated set; provided as the natural extra
baseline for the sync-vs-async ablation (`benchmarks/test_ablation_sync.py`).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle, register_algorithm
from repro.core.parameter_vector import ParameterVector
from repro.sim.grad import GradCompute
from repro.sim.sync import SimBarrier
from repro.sim.thread import SimThread


class SyncSGD(Algorithm):
    """Barrier-synchronized data-parallel SGD with gradient averaging."""

    def __init__(self) -> None:
        self.name = "SYNC"
        self.param: ParameterVector | None = None
        self.barrier: SimBarrier | None = None
        self._grad_sum: np.ndarray | None = None
        self._m: int = 0

    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        self.param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        self.param.theta[...] = theta0
        self._grad_sum = np.zeros(ctx.problem.d, dtype=ctx.dtype)

    def spawn_workers(self, ctx: SGDContext, m: int) -> list[SimThread]:
        # The barrier needs the cohort size before bodies start.
        self._m = m
        self.barrier = SimBarrier("sync.barrier", m, release_cost=ctx.cost.t_atomic)
        return super().spawn_workers(ctx, m)

    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        param, barrier = self.param, self.barrier
        grad = handle.grad_pv.theta
        grad_sum = self._grad_sum
        m = self._m
        probes = ctx.probes
        while True:
            probes.read_pinned(ctx.scheduler.now, thread.tid, ctx.global_seq.load())
            yield GradCompute(handle.grad_fn, param.theta, grad, ctx.cost.tc, handle.grad_task)
            probes.grad_done(ctx.scheduler.now, thread.tid, ctx.global_seq.load())
            # Contribute to the shared accumulator (atomic between yields).
            grad_sum += grad
            yield ctx.cost.tu / m  # each worker adds its share of traffic
            released_cohort = barrier.arrive()
            yield released_cohort
            # The last arriver (the one whose arrival released the
            # cohort) is the aggregator for this round: barrier.arrive
            # resumes everyone, and exactly one thread observes the
            # generation it completed.
            if self._take_aggregator_token(thread):
                # average of m gradients
                param.update(grad_sum, ctx.eta / m, scratch=handle.step_scratch)
                grad_sum[...] = 0.0
                yield ctx.cost.tu
                seq = ctx.global_seq.fetch_add(1)
                probes.publish(ctx.scheduler.now, thread.tid, seq, 0)
            # Second barrier: nobody starts the next round until the
            # aggregated step has been applied.
            yield barrier.arrive()

    # ------------------------------------------------------------------
    def _take_aggregator_token(self, thread: SimThread) -> bool:
        """Exactly one thread per round aggregates; elect tid 0."""
        return thread.tid == 0

    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.param.theta

    def __repr__(self) -> str:  # pragma: no cover
        return "SyncSGD()"


register_algorithm("SYNC", SyncSGD)
