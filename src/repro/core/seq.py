"""Sequential SGD (the paper's SEQ baseline).

One thread, no synchronization: the reference point for statistical
efficiency (zero staleness, perfect consistency) and the yardstick that
parallel speedup is measured against.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle, register_algorithm
from repro.core.parameter_vector import ParameterVector
from repro.errors import ConfigurationError
from repro.sim.grad import GradCompute
from repro.sim.thread import SimThread


class SequentialSGD(Algorithm):
    """Plain sequential SGD over a single shared ParameterVector."""

    def __init__(self) -> None:
        self.name = "SEQ"
        self.param: ParameterVector | None = None

    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        self.param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        self.param.theta[...] = theta0

    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        if handle.index != 0:
            raise ConfigurationError("SEQ admits exactly one worker (m=1)")
        param = self.param
        grad = handle.grad_pv.theta
        scratch = handle.step_scratch
        probes = ctx.probes
        while True:
            probes.read_pinned(ctx.scheduler.now, thread.tid, ctx.global_seq.load())
            yield GradCompute(handle.grad_fn, param.theta, grad, ctx.cost.tc, handle.grad_task)
            probes.grad_done(ctx.scheduler.now, thread.tid, ctx.global_seq.load())
            param.update(grad, ctx.eta, scratch=scratch)
            yield ctx.cost.tu
            seq = ctx.global_seq.fetch_add(1)
            probes.publish(ctx.scheduler.now, thread.tid, seq, 0)

    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.param.theta

    def __repr__(self) -> str:  # pragma: no cover
        return "SequentialSGD()"


register_algorithm("SEQ", SequentialSGD)
