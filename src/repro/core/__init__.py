"""The paper's contribution: ParameterVector and the parallel SGD
algorithm family (SEQ, lock-based AsyncSGD, HOGWILD!, Leashed-SGD).

All algorithms are expressed as simulated-thread bodies over the
shared-memory machine model of :mod:`repro.sim`; see each module's
docstring for the mapping to the paper's pseudocode (Algorithms 1-4).
"""

from repro.core.parameter_vector import ParameterVector
from repro.core.problem import Problem, DLProblem, QuadraticProblem
from repro.core.base import SGDContext, WorkerHandle, ALGORITHMS, make_algorithm
from repro.core.seq import SequentialSGD
from repro.core.async_lock import AsyncLockSGD
from repro.core.hogwild import HogwildSGD
from repro.core.leashed import LeashedSGD
from repro.core.sync_sgd import SyncSGD
from repro.core.hogwild_plus import HogwildPlusPlus
from repro.core.adaptive import AdaptiveLeashedSGD, make_adaptive
from repro.core.convergence import (
    ConvergenceMonitor,
    RunStatus,
    ConvergenceReport,
)

__all__ = [
    "ParameterVector",
    "Problem",
    "DLProblem",
    "QuadraticProblem",
    "SGDContext",
    "WorkerHandle",
    "ALGORITHMS",
    "make_algorithm",
    "SequentialSGD",
    "AsyncLockSGD",
    "HogwildSGD",
    "LeashedSGD",
    "SyncSGD",
    "HogwildPlusPlus",
    "AdaptiveLeashedSGD",
    "make_adaptive",
    "ConvergenceMonitor",
    "RunStatus",
    "ConvergenceReport",
]
