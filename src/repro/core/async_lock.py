"""Lock-based AsyncSGD — Algorithm 2 of the paper.

Consistency through mutual exclusion: both the read (copying the shared
``PARAM.theta`` into a thread-local buffer) and the bulk update are
performed under one global mutex. Reads and updates are therefore
atomic, but the lock serializes all shared-vector access, creating the
convoy/contention behaviour the paper measures at high thread counts
(irregular staleness, Fig. 6).

Memory shape: one shared ParameterVector plus two thread-local ones per
worker (``local_param``, ``local_grad``) — the constant ``2m + 1``
instances the paper contrasts with Leashed-SGD's dynamic ``<= 3m``.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle, register_algorithm
from repro.core.parameter_vector import ParameterVector
from repro.sim.grad import GradCompute
from repro.sim.sync import SimLock
from repro.sim.thread import SimThread


class AsyncLockSGD(Algorithm):
    """Algorithm 2: lock-protected reads and updates of shared PARAM."""

    def __init__(self) -> None:
        self.name = "ASYNC"
        self.param: ParameterVector | None = None
        self.lock: SimLock | None = None

    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        self.param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        self.param.theta[...] = theta0
        self.lock = SimLock("PARAM.mtx", acquire_cost=ctx.cost.t_lock)

    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        param, lock = self.param, self.lock
        local_param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="local_param", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        handle.local_pvs.append(local_param)
        grad = handle.grad_pv.theta
        scratch = handle.step_scratch
        probes = ctx.probes
        while True:
            # --- read phase: local_param.theta = copy(PARAM.theta) under mtx
            requested = ctx.scheduler.now
            yield lock.acquire()
            probes.lock_wait(requested, ctx.scheduler.now, thread.tid)
            np.copyto(local_param.theta, param.theta)
            view_seq = ctx.global_seq.load()
            yield ctx.cost.t_copy  # copy happens inside the critical section
            lock.release(thread)
            probes.read_pinned(ctx.scheduler.now, thread.tid, view_seq)

            # --- compute phase (no lock held)
            yield GradCompute(
                handle.grad_fn, local_param.theta, grad, ctx.cost.tc, handle.grad_task
            )
            probes.grad_done(ctx.scheduler.now, thread.tid, ctx.global_seq.load())

            # --- update phase: PARAM.update(...) under mtx
            requested = ctx.scheduler.now
            yield lock.acquire()
            probes.lock_wait(requested, ctx.scheduler.now, thread.tid)
            if ctx.measure_view_divergence:
                probes.view_divergence(
                    ctx.scheduler.now, thread.tid,
                    float(np.linalg.norm(local_param.theta - param.theta)),
                )
            param.update(grad, ctx.eta, scratch=scratch)
            yield ctx.cost.tu  # bulk write inside the critical section
            seq = ctx.global_seq.fetch_add(1)
            lock.release(thread)
            probes.publish(ctx.scheduler.now, thread.tid, seq, seq - view_seq)

    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.param.theta

    def __repr__(self) -> str:  # pragma: no cover
        return "AsyncLockSGD()"


register_algorithm("ASYNC", AsyncLockSGD)
