"""Optimization problems the parallel SGD algorithms minimize.

Two implementations:

* :class:`DLProblem` — the paper's setting: a :class:`repro.nn.Network`
  trained by mini-batch cross-entropy on a dataset. Each simulated
  worker gets an independent batch stream.
* :class:`QuadraticProblem` — a strongly convex diagnostic target with a
  closed-form optimum and analytically known gradients; cheap enough for
  thousands of unit-test iterations and the setting in which classical
  AsyncSGD theory (and HOGWILD!'s assumptions) actually hold.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.data.batcher import MiniBatcher
from repro.errors import ConfigurationError
from repro.nn.network import Network
from repro.sim.grad import GradTask
from repro.utils.validation import check_positive

#: A worker's gradient function: fills ``out`` with the stochastic
#: gradient at ``theta`` (reading ``theta`` exactly once, so torn views
#: propagate faithfully into the gradient).
GradFn = Callable[[np.ndarray, np.ndarray], None]


class Problem(abc.ABC):
    """Interface between SGD algorithms and the target function."""

    @property
    @abc.abstractmethod
    def d(self) -> int:
        """Dimension of the parameter vector."""

    @abc.abstractmethod
    def init_theta(self, rng: np.random.Generator) -> np.ndarray:
        """A fresh initial parameter vector."""

    @abc.abstractmethod
    def make_grad_fn(self, rng: np.random.Generator) -> GradFn:
        """A per-worker stochastic-gradient closure with its own stream."""

    @abc.abstractmethod
    def eval_loss(self, theta: np.ndarray) -> float:
        """The monitored target ``f(theta)`` (held-out loss for DL)."""

    def eval_accuracy(self, theta: np.ndarray) -> float:
        """Optional held-out accuracy (NaN when meaningless)."""
        return float("nan")

    def make_grad_task(self, rng: np.random.Generator) -> GradTask | None:
        """A batchable gradient task, or None if this problem only
        offers the plain closure (the default).

        When a problem returns a task, the worker uses ``task.run`` as
        its gradient function — one sampling stream serves both the
        serial and the replica-stacked execution paths, keeping them
        bitwise interchangeable (see :mod:`repro.sim.grad`).
        """
        return None


class DLProblem(Problem):
    """Deep-learning training problem (the paper's MLP / CNN settings).

    Parameters
    ----------
    network:
        Flat-parameter network from :mod:`repro.nn`.
    train_x, train_y:
        Training inputs in the network's expected layout, and labels.
    eval_x, eval_y:
        Held-out split on which ``f(theta)`` is monitored.
    batch_size:
        Mini-batch size (paper: 512).
    init_std:
        Std of the N(0, std^2) initialization (paper: 0.1).
    init_scheme:
        ``"normal"`` (paper) or ``"he"`` / ``"xavier"`` extensions.
    dtype:
        Parameter dtype.
    use_workspace:
        Give each worker's gradient closure a preallocated
        :class:`repro.nn.workspace.StepWorkspace` so the steady-state
        forward/backward pass allocates nothing (on by default; results
        are bitwise identical either way).
    """

    def __init__(
        self,
        network: Network,
        train_x: np.ndarray,
        train_y: np.ndarray,
        eval_x: np.ndarray,
        eval_y: np.ndarray,
        *,
        batch_size: int = 512,
        init_std: float = 0.1,
        init_scheme: str = "normal",
        dtype: np.dtype | type = np.float32,
        use_workspace: bool = True,
    ) -> None:
        if train_x.shape[0] != train_y.shape[0]:
            raise ConfigurationError("train_x / train_y sample counts disagree")
        if eval_x.shape[0] != eval_y.shape[0]:
            raise ConfigurationError("eval_x / eval_y sample counts disagree")
        check_positive("batch_size", batch_size)
        check_positive("init_std", init_std)
        self.network = network
        self.train_x = train_x
        self.train_y = train_y
        self.eval_x = eval_x
        self.eval_y = eval_y
        self.batch_size = int(batch_size)
        self.init_std = float(init_std)
        self.init_scheme = init_scheme
        self.dtype = dtype
        self.use_workspace = bool(use_workspace)

    @property
    def d(self) -> int:
        return self.network.n_params

    def init_theta(self, rng: np.random.Generator) -> np.ndarray:
        return self.network.init_theta(
            rng, scheme=self.init_scheme, std=self.init_std, dtype=self.dtype
        )

    def make_grad_fn(self, rng: np.random.Generator) -> GradFn:
        batcher = MiniBatcher(self.train_x, self.train_y, self.batch_size, rng)
        network = self.network
        # Per-worker scratch: the batcher's (possibly clipped) batch size
        # is fixed for its lifetime, so one workspace covers every call.
        workspace = (
            network.make_workspace(batcher.batch_size, dtype=self.dtype)
            if self.use_workspace
            else None
        )

        if workspace is not None:
            # Completing the zero-allocation step: the batch gather also
            # lands in worker-owned buffers (same samples, same bits —
            # see MiniBatcher.next_batch_into). Safe to reuse per call:
            # forward caches only outlive the buffers' contents within a
            # single loss_and_grad invocation.
            x_buf = np.empty(
                (batcher.batch_size,) + self.train_x.shape[1:], dtype=self.train_x.dtype
            )
            y_buf = np.empty(batcher.batch_size, dtype=self.train_y.dtype)

            def grad_fn(theta: np.ndarray, out: np.ndarray) -> None:
                x, y = batcher.next_batch_into(x_buf, y_buf)
                with np.errstate(over="ignore", invalid="ignore"):
                    network.loss_and_grad(x, y, theta, grad_out=out, workspace=workspace)

        else:

            def grad_fn(theta: np.ndarray, out: np.ndarray) -> None:
                x, y = batcher.next_batch()
                with np.errstate(over="ignore", invalid="ignore"):
                    network.loss_and_grad(x, y, theta, grad_out=out, workspace=workspace)

        return grad_fn

    def make_grad_task(self, rng: np.random.Generator) -> "DLGradTask | None":
        """The batchable counterpart of :meth:`make_grad_fn`.

        Only the workspace path batches: without a workspace the closure
        uses the unbuffered ``next_batch`` RNG pattern, which has no
        staging seam. A None return simply means "serial closure only".
        """
        if not self.use_workspace:
            return None
        return DLGradTask(self, rng)

    def eval_loss(self, theta: np.ndarray) -> float:
        if not np.all(np.isfinite(theta)):
            return float("nan")
        with np.errstate(over="ignore", invalid="ignore"):
            return self.network.loss(self.eval_x, self.eval_y, theta)

    def eval_accuracy(self, theta: np.ndarray) -> float:
        if not np.all(np.isfinite(theta)):
            return float("nan")
        return self.network.accuracy(self.eval_x, self.eval_y, theta)


class DLGradTask(GradTask):
    """One worker's gradient stream over a :class:`DLProblem`, split
    into a stageable sampling half and a compute half.

    :meth:`run` performs exactly the work of the workspace-path closure
    from :meth:`DLProblem.make_grad_fn` (same blocked index RNG, same
    ``take`` gather, same in-place forward/backward), so a worker built
    on a task is bitwise identical to one built on the closure.
    :meth:`stage` draws only the indices, letting a
    :class:`repro.nn.replica.ReplicaKernel` gather and compute many
    replicas' batches in stacked kernel calls.
    """

    __slots__ = (
        "problem", "network", "batcher", "workspace", "x_buf", "y_buf",
        "stack_key", "probes",
    )

    def __init__(self, problem: DLProblem, rng: np.random.Generator) -> None:
        self.problem = problem
        self.network = problem.network
        self.batcher = MiniBatcher(problem.train_x, problem.train_y, problem.batch_size, rng)
        self.workspace = problem.network.make_workspace(
            self.batcher.batch_size, dtype=problem.dtype
        )
        self.x_buf = np.empty(
            (self.batcher.batch_size,) + problem.train_x.shape[1:],
            dtype=problem.train_x.dtype,
        )
        self.y_buf = np.empty(self.batcher.batch_size, dtype=problem.train_y.dtype)
        # Tasks sharing a key draw same-shape batches from the same
        # corpus against the same network — the precondition for fusing
        # their forward/backward passes into one stacked call.
        self.stack_key = (id(problem), self.batcher.batch_size, np.dtype(problem.dtype))
        self.probes = None

    def run(self, theta: np.ndarray, out: np.ndarray) -> None:
        idx = self.batcher.next_batch_indices()
        self.problem.train_x.take(idx, axis=0, out=self.x_buf)
        self.problem.train_y.take(idx, axis=0, out=self.y_buf)
        with np.errstate(over="ignore", invalid="ignore"):
            self.network.loss_and_grad(
                self.x_buf, self.y_buf, theta, grad_out=out, workspace=self.workspace
            )

    def stage(self) -> np.ndarray:
        return self.batcher.next_batch_indices()

    def make_kernel(self, kmax: int, arena=None):
        from repro.nn.replica import ReplicaKernel  # local import avoids a cycle

        return ReplicaKernel.build(self, kmax, arena=arena)

    def kernel_fallback_kind(self) -> str:
        from repro.nn.replica import ReplicaKernel  # local import avoids a cycle

        return ReplicaKernel.reject_reason(self) or "unstackable"


class SparseLogisticProblem(Problem):
    """L2-regularized logistic regression on sparse data — HOGWILD!'s
    original setting [36].

    Each sample touches only ``nnz_per_sample`` of the d features, so a
    mini-batch gradient is supported on a small subset of coordinates.
    This is the regime where HOGWILD!'s component-wise inconsistency is
    provably near-harmless (concurrent updates rarely collide on a
    coordinate) — the counterpoint to the paper's dense DL workloads,
    exercised by ``benchmarks/test_ablation_sparsity.py``.

    Data model: ``n_samples`` sparse feature vectors with values ~
    N(0,1) on a random support, labels from a planted weight vector
    passed through a logistic link (so the problem is realizable).
    """

    def __init__(
        self,
        d: int = 1024,
        *,
        n_samples: int = 4096,
        nnz_per_sample: int = 8,
        batch_size: int = 16,
        l2: float = 1e-4,
        seed: int = 0,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        check_positive("d", d)
        check_positive("n_samples", n_samples)
        check_positive("batch_size", batch_size)
        if not (0 < nnz_per_sample <= d):
            raise ConfigurationError(f"nnz_per_sample must be in (0, {d}], got {nnz_per_sample}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        self._d = int(d)
        self.nnz = int(nnz_per_sample)
        self.batch_size = int(batch_size)
        self.l2 = float(l2)
        self.dtype = dtype
        rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
        self.indices = np.stack(
            [rng.choice(d, size=self.nnz, replace=False) for _ in range(n_samples)]
        )
        self.values = rng.normal(size=(n_samples, self.nnz)).astype(dtype)
        planted = rng.normal(size=d).astype(dtype)
        margins = np.einsum("ij,ij->i", self.values, planted[self.indices])
        prob = 1.0 / (1.0 + np.exp(-margins))
        self.labels = (rng.random(n_samples) < prob).astype(dtype)  # in {0,1}

    @property
    def d(self) -> int:
        return self._d

    def init_theta(self, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(self._d, dtype=self.dtype)

    def make_grad_fn(self, rng: np.random.Generator) -> GradFn:
        indices, values, labels = self.indices, self.values, self.labels
        n, batch, l2 = labels.shape[0], self.batch_size, self.l2

        def grad_fn(theta: np.ndarray, out: np.ndarray) -> None:
            rows = rng.integers(0, n, size=batch)
            idx = indices[rows]  # (batch, nnz)
            val = values[rows]
            with np.errstate(over="ignore", invalid="ignore"):
                margins = np.einsum("ij,ij->i", val, theta[idx])
                p = 1.0 / (1.0 + np.exp(-margins))
                coeff = (p - labels[rows]) / batch
                out[...] = l2 * theta  # dense regularizer term
                np.add.at(out, idx.ravel(), (coeff[:, None] * val).ravel())

        return grad_fn

    def eval_loss(self, theta: np.ndarray) -> float:
        if not np.all(np.isfinite(theta)):
            return float("nan")
        with np.errstate(over="ignore", invalid="ignore"):
            margins = np.einsum("ij,ij->i", self.values, theta[self.indices])
            # stable log(1 + exp(x)) formulations per label
            loss = np.logaddexp(0.0, margins) - self.labels * margins
            reg = 0.5 * self.l2 * float(theta @ theta)
        return float(loss.mean() + reg)

    def eval_accuracy(self, theta: np.ndarray) -> float:
        if not np.all(np.isfinite(theta)):
            return float("nan")
        margins = np.einsum("ij,ij->i", self.values, theta[self.indices])
        return float(np.mean((margins > 0) == (self.labels > 0.5)))


class QuadraticProblem(Problem):
    """``f(theta) = 0.5 * sum_i h_i * (theta_i - b_i)^2`` with gradient
    noise ``N(0, sigma^2)`` — a separable strongly convex target.

    The optimum is ``theta* = b`` with ``f(theta*) = 0``; curvatures
    ``h`` control the conditioning, ``sigma`` the stochasticity.
    """

    def __init__(
        self,
        d: int,
        *,
        h: np.ndarray | float = 1.0,
        b: np.ndarray | float = 0.0,
        noise_sigma: float = 0.1,
        init_radius: float = 5.0,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        check_positive("d", d)
        self._d = int(d)
        self.h = np.broadcast_to(np.asarray(h, dtype=dtype), (self._d,)).copy()
        if np.any(self.h <= 0):
            raise ConfigurationError("all curvatures h must be > 0")
        self.b = np.broadcast_to(np.asarray(b, dtype=dtype), (self._d,)).copy()
        self.noise_sigma = float(noise_sigma)
        if self.noise_sigma < 0:
            raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.init_radius = float(init_radius)
        self.dtype = dtype

    @property
    def d(self) -> int:
        return self._d

    @property
    def theta_star(self) -> np.ndarray:
        """The unique minimizer."""
        return self.b.copy()

    def init_theta(self, rng: np.random.Generator) -> np.ndarray:
        direction = rng.normal(size=self._d)
        direction *= self.init_radius / max(np.linalg.norm(direction), 1e-12)
        return (self.b + direction).astype(self.dtype)

    def make_grad_fn(self, rng: np.random.Generator) -> GradFn:
        h, b, sigma = self.h, self.b, self.noise_sigma

        def grad_fn(theta: np.ndarray, out: np.ndarray) -> None:
            with np.errstate(over="ignore", invalid="ignore"):
                np.multiply(h, theta - b, out=out)
                if sigma > 0:
                    out += rng.normal(0.0, sigma, size=out.shape)

        return grad_fn

    def eval_loss(self, theta: np.ndarray) -> float:
        if not np.all(np.isfinite(theta)):
            return float("nan")
        diff = np.asarray(theta, dtype=self.dtype) - self.b
        return float(0.5 * np.sum(self.h * diff * diff))
