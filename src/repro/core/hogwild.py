"""HOGWILD! — Algorithm 4 of the paper.

Synchronization-free: Algorithm 2 with the locks deleted. Reads copy the
shared vector and updates write it in place with *no* coordination, so
concurrent accesses interleave mid-vector. We model component-wise
atomicity at a configurable granularity: bulk reads and writes execute
as ``cost.n_chunks`` atomic slices with preemption points between them.
A reader overlapping a writer therefore assembles a *torn* view — part
pre-update, part post-update — which is precisely the inconsistency
whose statistical penalty (the sqrt(d) factor of Alistarh et al. [3])
the paper contrasts against consistent algorithms.

Staleness uses the completion-order definition (Section II.2): updates
are ordered by the completion of their last write, counted by the run's
global sequence counter.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle, register_algorithm
from repro.core.parameter_vector import ParameterVector
from repro.sim.grad import GradCompute
from repro.sim.thread import SimThread


def chunk_slices(d: int, n_chunks: int) -> list[slice]:
    """Split ``range(d)`` into ``n_chunks`` near-equal contiguous slices."""
    n_chunks = max(1, min(n_chunks, d))
    bounds = np.linspace(0, d, n_chunks + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


class HogwildSGD(Algorithm):
    """Algorithm 4: uncoordinated chunk-wise reads and in-place updates."""

    def __init__(self) -> None:
        self.name = "HOG"
        self.param: ParameterVector | None = None
        # Threads currently inside an unsynchronized bulk access to the
        # shared buffer; drives the cache-coherence cost (CostModel
        # ``coherence_penalty``).
        self._accessors = None

    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        from repro.sim.sync import AtomicCounter

        self.param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="shared", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        self.param.theta[...] = theta0
        self._accessors = AtomicCounter(0)

    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        param = self.param
        local_param = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="local_param", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        handle.local_pvs.append(local_param)
        grad = handle.grad_pv.theta
        scratch = handle.step_scratch
        slices = chunk_slices(ctx.problem.d, ctx.cost.n_chunks)
        copy_chunk_cost = ctx.cost.t_copy / len(slices)
        update_chunk_cost = ctx.cost.tu / len(slices)
        eta = ctx.eta
        accessors = self._accessors
        probes = ctx.probes
        while True:
            # --- unsynchronized chunk-wise read: the view may be torn,
            # and concurrent accessors inflate each chunk's cost
            # (coherence traffic on the write-shared buffer).
            view_seq = ctx.global_seq.load()
            accessors.fetch_add(1)
            for sl in slices:
                np.copyto(local_param.theta[sl], param.theta[sl])
                yield ctx.cost.contended(copy_chunk_cost, accessors.load() - 1)
            accessors.fetch_add(-1)
            probes.read_pinned(ctx.scheduler.now, thread.tid, view_seq)

            # --- compute phase
            yield GradCompute(
                handle.grad_fn, local_param.theta, grad, ctx.cost.tc, handle.grad_task
            )
            probes.grad_done(ctx.scheduler.now, thread.tid, ctx.global_seq.load())

            # --- unsynchronized chunk-wise in-place update.
            shared = param.theta
            if ctx.measure_view_divergence:
                probes.view_divergence(
                    ctx.scheduler.now, thread.tid,
                    float(np.linalg.norm(local_param.theta - shared)),
                )
            accessors.fetch_add(1)
            with np.errstate(over="ignore", invalid="ignore"):
                for sl in slices:
                    if scratch is None:
                        shared[sl] -= eta * grad[sl]
                    else:
                        # eta * grad[sl] lands in the worker's scratch slice
                        # instead of a per-chunk temporary (same bits).
                        np.multiply(grad[sl], eta, out=scratch[sl])
                        shared[sl] -= scratch[sl]
                    yield ctx.cost.contended(update_chunk_cost, accessors.load() - 1)
            accessors.fetch_add(-1)
            param.t += 1  # measurement-only sequence bump (no sync in HOGWILD!)
            seq = ctx.global_seq.fetch_add(1)
            probes.publish(ctx.scheduler.now, thread.tid, seq, seq - view_seq)

    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.param.theta

    def __repr__(self) -> str:  # pragma: no cover
        return "HogwildSGD()"


register_algorithm("HOG", HogwildSGD)
