"""Leashed-SGD — Algorithm 3, the paper's contribution.

Lock-free *consistent* AsyncSGD. Each worker:

1. acquires the latest published ParameterVector through the
   ``latest_pointer()`` retry loop (load global pointer, pin with
   ``start_reading``, re-check ``stale_flag``; P3 of the paper),
2. computes its gradient **directly on the published payload, without
   copying** — safe because published instances are immutable (P1),
3. allocates a fresh private ParameterVector and enters the **LAU-SPC
   loop** (Load-And-Update, Store-Persistence-Conditional; P5): re-fetch
   the latest pointer, copy its payload into the private instance, apply
   the gradient there, and attempt to publish with a single CAS on the
   global pointer. On CAS failure the loop retries against the newer
   vector, up to the *persistence bound* ``T_p`` failures, after which
   the (now very stale) gradient is dropped and the worker returns to
   step 1 — the contention-regulating mechanism analyzed in Section IV.2.

Publication totally orders updates by the per-vector sequence number
``t``; the staleness of an update is the number of publications between
the gradient's view and its application, ``tau = new.t - 1 - view.t``.

Replaced vectors are marked stale and reclaimed by the *last* reader via
the reader-count scheme of Algorithm 1 (P2/P4), bounding live instances
to ~3m (Lemma 2); the MemoryAccountant verifies this at run time.
"""

from __future__ import annotations

import functools
from typing import Generator

import numpy as np

from repro.core.base import Algorithm, SGDContext, WorkerHandle
from repro.core.parameter_vector import ParameterVector
from repro.errors import ConfigurationError
from repro.sim.grad import GradCompute
from repro.sim.sync import AtomicRef
from repro.sim.thread import SimThread


class LeashedSGD(Algorithm):
    """Algorithm 3 with persistence bound ``T_p`` (``math.inf`` = retry
    until success, the paper's LSH_psinf; 0 = LL/SC-like single attempt,
    LSH_ps0)."""

    def __init__(self, persistence: float = float("inf")) -> None:
        if not (persistence >= 0):
            raise ConfigurationError(f"persistence bound must be >= 0, got {persistence!r}")
        self.persistence = persistence
        suffix = "inf" if persistence == float("inf") else str(int(persistence))
        self.name = f"LSH_ps{suffix}"
        self.pointer: AtomicRef | None = None

    # ------------------------------------------------------------------
    def setup(self, ctx: SGDContext, theta0: np.ndarray) -> None:
        init_pv = ParameterVector(
            ctx.problem.d, memory=ctx.memory, tag="published", dtype=ctx.dtype,
            arena=ctx.arena,
        )
        init_pv.theta[...] = theta0
        self.pointer = AtomicRef(init_pv)

    # ------------------------------------------------------------------
    def _latest_pointer(self, ctx: SGDContext) -> Generator:
        """The paper's ``latest_pointer()``: returns a pinned, non-stale
        ParameterVector. The yields between the pointer load, the pin,
        and the staleness re-check expose exactly the race window P4
        tolerates (pinning a vector that just went stale, then retrying).
        """
        pointer = self.pointer
        while True:
            latest = pointer.load()
            yield ctx.cost.t_atomic
            latest.start_reading()
            yield ctx.cost.t_atomic
            if not latest.stale_flag:
                return latest
            latest.stop_reading()  # let it be recycled; retry for a fresher one
            yield ctx.cost.t_atomic

    # ------------------------------------------------------------------
    def worker_body(
        self, ctx: SGDContext, thread: SimThread, handle: WorkerHandle
    ) -> Generator:
        pointer = self.pointer
        grad = handle.grad_pv.theta
        scratch = handle.step_scratch
        eta = ctx.eta
        view_copy = (
            np.empty(ctx.problem.d, dtype=ctx.dtype)
            if ctx.measure_view_divergence
            else None
        )
        probes = ctx.probes
        while True:
            # --- read phase: pin latest, compute gradient on it in place.
            latest = yield from self._latest_pointer(ctx)
            view_t = latest.t
            probes.read_pinned(ctx.scheduler.now, thread.tid, view_t)
            # Measurement hook (view-divergence mode) must snapshot the
            # pinned payload right after the gradient reads it — bound
            # per iteration because ``latest`` rebinds.
            post = (
                functools.partial(np.copyto, view_copy, latest.theta)
                if view_copy is not None
                else None
            )
            yield GradCompute(
                handle.grad_fn, latest.theta, grad, ctx.cost.tc, handle.grad_task, post
            )
            probes.grad_done(ctx.scheduler.now, thread.tid, pointer.load().t)
            latest.stop_reading()
            yield ctx.cost.t_atomic

            # --- allocate the private candidate (dynamic allocation: P2).
            # zero_init=False (np.empty / recycled-arena semantics) is
            # sound here: the LAU-SPC loop below unconditionally
            # overwrites the whole payload — copyto or step_from against
            # the latest published vector — before its first read.
            new_pv = ParameterVector(
                ctx.problem.d, memory=ctx.memory, tag="published", dtype=ctx.dtype,
                arena=ctx.arena, zero_init=False,
            )
            yield ctx.cost.t_alloc

            # --- LAU-SPC loop.
            num_tries = 0
            enter_time = ctx.scheduler.now
            probes.lau_enter(enter_time, thread.tid)
            while True:
                target = yield from self._latest_pointer(ctx)
                eta_eff = self.effective_eta(eta, target.t - view_t)
                if view_copy is None and scratch is not None:
                    # Fused Load-And-Update: two 2-operand passes write
                    # target - eta*grad straight into the candidate
                    # (bitwise-identical to copy-then-update, one full
                    # d-vector write/re-read cheaper). ``scratch`` acting
                    # as the arena-on marker keeps the scratch-less mode
                    # on the exact pre-arena instruction sequence below.
                    new_pv.step_from(target, grad, eta_eff)
                    yield ctx.cost.t_copy
                    target.stop_reading()
                    yield ctx.cost.t_atomic
                else:
                    # Two-phase path: measurement mode needs the
                    # candidate's pre-update state, and the no-arena
                    # (scratch-less) mode reproduces the pre-arena
                    # copy-then-update step.
                    np.copyto(new_pv.theta, target.theta)
                    new_pv.t = target.t
                    yield ctx.cost.t_copy
                    target.stop_reading()
                    yield ctx.cost.t_atomic
                    if view_copy is not None:
                        probes.view_divergence(
                            ctx.scheduler.now, thread.tid,
                            float(np.linalg.norm(view_copy - new_pv.theta)),
                        )
                    new_pv.update(grad, eta_eff, scratch=scratch)
                yield ctx.cost.tu
                succ = pointer.compare_and_swap(target, new_pv)
                yield ctx.cost.t_atomic
                probes.cas_attempt(ctx.scheduler.now, thread.tid, succ, num_tries)
                if succ:
                    target.stale_flag = True
                    probes.reclaim(ctx.scheduler.now, thread.tid, target.t)
                    target.safe_delete()
                    ctx.global_seq.fetch_add(1)
                    probes.publish(
                        ctx.scheduler.now, thread.tid, new_pv.t,
                        new_pv.t - 1 - view_t, num_tries, enter_time,
                    )
                    break
                num_tries += 1
                if num_tries > self.persistence:
                    # Persistence bound exceeded: drop this gradient and
                    # return to computing a fresh one (contention relief).
                    new_pv.force_delete()
                    probes.drop(ctx.scheduler.now, thread.tid, num_tries, enter_time)
                    break

    # ------------------------------------------------------------------
    def effective_eta(self, eta: float, staleness: int) -> float:
        """The step size applied at publication time.

        ``staleness`` is the number of publications between the
        gradient's view and the vector the update is applied to — known
        exactly at this point thanks to the consistent design. The base
        algorithm ignores it; the staleness-adaptive extension
        (:class:`repro.core.adaptive.AdaptiveLeashedSGD`) overrides this
        hook.
        """
        return eta

    def snapshot_theta(self, ctx: SGDContext) -> np.ndarray:
        return self.pointer.load().theta

    def __repr__(self) -> str:  # pragma: no cover
        return f"LeashedSGD(persistence={self.persistence})"
